"""Argument-validation helpers.

Simulator configuration errors (a negative load, a probability of 1.3)
are far cheaper to catch at construction time than three layers deep in
an event loop; these helpers make the checks one-liners with uniform
error messages.
"""

from __future__ import annotations

import math
from typing import TypeVar

_Num = TypeVar("_Num", int, float)


def check_positive(value: _Num, name: str) -> _Num:
    """Raise ``ValueError`` unless ``value`` > 0; return the value."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_non_negative(value: _Num, name: str) -> _Num:
    """Raise ``ValueError`` unless ``value`` >= 0; return the value."""
    if not value >= 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` lies in [0, 1]; return it."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")
    return value


def check_in_range(value: _Num, low: float, high: float, name: str) -> _Num:
    """Raise ``ValueError`` unless ``low <= value <= high``; return it."""
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value


def check_finite(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` is a finite number; return it."""
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return value
