"""Shared utilities: time units, seeded random streams, validation.

These helpers are deliberately small and dependency-free; every other
subpackage builds on them.
"""

from repro.util.rng import RngStream, derive_seed, spawn_streams
from repro.util.units import (
    MICROSECONDS_PER_SECOND,
    Duration,
    microseconds_to_slots,
    seconds_to_slots,
    slots_to_microseconds,
    slots_to_seconds,
)
from repro.util.validation import (
    check_finite,
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)

__all__ = [
    "MICROSECONDS_PER_SECOND",
    "Duration",
    "RngStream",
    "check_finite",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_probability",
    "derive_seed",
    "microseconds_to_slots",
    "seconds_to_slots",
    "slots_to_microseconds",
    "slots_to_seconds",
    "spawn_streams",
]
