"""Time-unit conversions for the slotted simulator.

The simulator's fundamental unit is the IEEE 802.11 (DSSS PHY) slot of
20 microseconds.  All MAC timing (DIFS, SIFS, frame durations) is rounded
to integer numbers of slots; the helpers here centralize the conversions
so experiments can be written in seconds while the engine runs in slots.

Unit types
----------

:data:`Slots`, :data:`Microseconds`, :data:`Seconds` and :data:`Meters`
are ``typing.NewType`` aliases used to annotate every API that carries a
dimensioned quantity.  They exist for the *unit-flow* static pass
(``python -m repro.checks --deep``, rules RPR5xx), which reads the
annotations and propagates units through assignments, calls and
arithmetic to flag mixed-unit expressions before they corrupt slot
timing.

Under mypy they deliberately degrade to plain ``int``/``float``
aliases: nominal NewType checking would force a ``Slots(...)`` wrap
around every piece of slot arithmetic (``NewType`` operations return
the base type), which is exactly the noise that makes unit wrappers rot.
The structural enforcement lives in ``repro.checks.unitflow`` instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, NewType

if TYPE_CHECKING:
    # Plain aliases for mypy: unit discipline is enforced by the
    # repro.checks unit-flow pass, not nominally (see module docstring).
    Slots = int
    Microseconds = float
    Seconds = float
    Meters = float
else:
    #: An integer count of MAC slots (timestamps and durations alike).
    Slots = NewType("Slots", int)
    #: A duration in microseconds.
    Microseconds = NewType("Microseconds", float)
    #: A duration in seconds.
    Seconds = NewType("Seconds", float)
    #: A distance in meters.
    Meters = NewType("Meters", float)

MICROSECONDS_PER_SECOND = 1_000_000

#: IEEE 802.11 DSSS slot time in microseconds (the paper uses 20 us slots).
DEFAULT_SLOT_TIME_US = 20.0


def microseconds_to_slots(
    us: Microseconds, slot_time_us: Microseconds = DEFAULT_SLOT_TIME_US
) -> Slots:
    """Convert a duration in microseconds to a whole number of slots.

    Durations are rounded *up* so that a frame never occupies less air
    time in the simulator than it would on a real channel.
    """
    if us < 0:
        raise ValueError(f"duration must be non-negative, got {us}")
    if slot_time_us <= 0:
        raise ValueError(f"slot time must be positive, got {slot_time_us}")
    slots = int(-(-us // slot_time_us))  # ceiling division for floats
    return max(slots, 0)


def slots_to_microseconds(
    slots: Slots, slot_time_us: Microseconds = DEFAULT_SLOT_TIME_US
) -> Microseconds:
    """Convert a slot count to microseconds."""
    if slots < 0:
        raise ValueError(f"slot count must be non-negative, got {slots}")
    return slots * slot_time_us


def seconds_to_slots(
    seconds: Seconds, slot_time_us: Microseconds = DEFAULT_SLOT_TIME_US
) -> Slots:
    """Convert seconds to a whole number of slots (rounded up)."""
    return microseconds_to_slots(seconds * MICROSECONDS_PER_SECOND, slot_time_us)


def slots_to_seconds(
    slots: Slots, slot_time_us: Microseconds = DEFAULT_SLOT_TIME_US
) -> Seconds:
    """Convert a slot count to seconds."""
    return slots_to_microseconds(slots, slot_time_us) / MICROSECONDS_PER_SECOND


@dataclass(frozen=True)
class Duration:
    """A duration expressed in slots, convertible to wall-clock units.

    Keeping durations as explicit slot counts avoids the classic
    unit-confusion bugs between "slots", "microseconds" and "seconds"
    in simulator code.
    """

    slots: Slots
    slot_time_us: Microseconds = DEFAULT_SLOT_TIME_US

    def __post_init__(self) -> None:
        if self.slots < 0:
            raise ValueError(f"slots must be non-negative, got {self.slots}")
        if self.slot_time_us <= 0:
            raise ValueError(
                f"slot_time_us must be positive, got {self.slot_time_us}"
            )

    @classmethod
    def from_microseconds(
        cls, us: Microseconds, slot_time_us: Microseconds = DEFAULT_SLOT_TIME_US
    ) -> "Duration":
        return cls(microseconds_to_slots(us, slot_time_us), slot_time_us)

    @classmethod
    def from_seconds(
        cls, seconds: Seconds, slot_time_us: Microseconds = DEFAULT_SLOT_TIME_US
    ) -> "Duration":
        return cls(seconds_to_slots(seconds, slot_time_us), slot_time_us)

    @property
    def microseconds(self) -> Microseconds:
        return slots_to_microseconds(self.slots, self.slot_time_us)

    @property
    def seconds(self) -> Seconds:
        return slots_to_seconds(self.slots, self.slot_time_us)

    def __add__(self, other: object) -> "Duration":
        if isinstance(other, Duration):
            # A slot count is only meaningful relative to its slot time:
            # summing counts taken at different slot times would silently
            # adopt the left operand's slot time and misstate the total.
            if other.slot_time_us != self.slot_time_us:
                raise ValueError(
                    "cannot add Durations with different slot times "
                    f"({self.slot_time_us} us vs {other.slot_time_us} us); "
                    "convert one side explicitly via from_microseconds()"
                )
            return Duration(self.slots + other.slots, self.slot_time_us)
        return NotImplemented

    def __int__(self) -> int:
        return self.slots
