"""Seeded random streams for reproducible simulations.

Every stochastic component of the simulator (traffic generators, channel
shadowing, mobility, back-off PRNGs, misbehavior decisions) draws from its
own named stream derived from a single experiment seed.  Runs with the
same seed are bit-for-bit reproducible, and adding a new consumer of
randomness does not perturb existing streams.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Sequence, Tuple

import numpy as np


def derive_seed(root_seed: int, *names: object) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a name path.

    Uses SHA-256 over the root seed and the path components so that
    distinct names yield statistically independent seeds regardless of
    how "close" the names are.
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(root_seed)).encode("utf-8"))
    for name in names:
        hasher.update(b"/")
        hasher.update(str(name).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "big")


class RngStream:
    """A named, seeded random stream backed by ``numpy.random.Generator``.

    Thin wrapper that records its name and seed (for debugging and for
    result provenance) and exposes the handful of draw types the
    simulator needs.
    """

    def __init__(self, root_seed: int, *names: object) -> None:
        self.name = "/".join(str(n) for n in names) if names else "root"
        self.seed = derive_seed(root_seed, *names)
        self._gen = np.random.Generator(np.random.PCG64(self.seed))

    @property
    def generator(self) -> np.random.Generator:
        """The underlying :class:`numpy.random.Generator`."""
        return self._gen

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return float(self._gen.uniform(low, high))

    def integers(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high)``."""
        return int(self._gen.integers(low, high))

    def exponential(self, mean: float) -> float:
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        return float(self._gen.exponential(mean))

    def normal(self, loc: float = 0.0, scale: float = 1.0) -> float:
        return float(self._gen.normal(loc, scale))

    def choice(self, seq: Sequence[Any]) -> Any:
        if len(seq) == 0:
            raise ValueError("cannot choose from an empty sequence")
        return seq[int(self._gen.integers(0, len(seq)))]

    def shuffle(self, seq: Any) -> None:
        self._gen.shuffle(seq)

    def random_point(self, width: float, height: float) -> Tuple[float, float]:
        """Uniform point in the ``[0, width] x [0, height]`` rectangle."""
        return (float(self._gen.uniform(0, width)), float(self._gen.uniform(0, height)))

    def __repr__(self) -> str:
        return f"RngStream(name={self.name!r}, seed={self.seed})"


def spawn_streams(root_seed: int, *names: str) -> Dict[str, "RngStream"]:
    """Create one :class:`RngStream` per name, all derived from one seed."""
    return {name: RngStream(root_seed, name) for name in names}
