"""Deterministic fork-based process-pool mapping (the pool substrate).

This is the layer-0 core of the repo's parallelism story: a single
``fork_map`` primitive that maps a function over a work list with a
``fork`` process pool while keeping every observable output *identical*
to the serial loop:

* results come back in item order, regardless of completion order;
* the worker count never feeds into the work items themselves, so a
  caller whose items are pure functions of their inputs gets
  byte-identical results for any ``jobs`` value;
* whenever the parallel path cannot be set up faithfully — one job, one
  item, no ``fork`` start method, unpicklable items or results, or a
  nested call from inside a worker — execution silently falls back to a
  serial loop, which is always correct, just slower.

Higher layers build policy on top of this mechanism:
:mod:`repro.experiments.parallel` adds per-trial metrics-snapshot
merging for experiment sweeps, and :mod:`repro.sim.partition` uses it to
prewarm per-tile sensing adjacency at mobility epochs.  Keeping the
substrate in ``util`` (rank 0 in the layering DAG) lets both of those —
one above and one below ``experiments`` — share the same machinery.

Worker-count resolution (first match wins): the ``jobs=`` argument,
:func:`set_default_jobs` (the CLI's ``--jobs`` flag), the ``REPRO_JOBS``
environment variable, else 1 (serial).  A value of 0 means "all CPU
cores".

The function handed to ``fork_map`` is *inherited by the forked
workers* rather than pickled, so closures and locally-composed wrappers
work; only the items and the results cross the process boundary and
must pickle.  Callers that need different parent-side behaviour on the
serial path (e.g. not resetting a metrics registry that workers reset
freely in their forked copies) pass ``serial_fn``.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.pool
import os
import pickle
from typing import Any, Callable, List, Optional, Sequence

#: Environment variable holding the default worker count.
JOBS_ENV = "REPRO_JOBS"

_default_jobs: Optional[int] = None

#: The work function of the in-flight pool, inherited by forked workers
#: (set immediately before the fork, cleared after).  Doubles as a
#: re-entrancy latch: a work item that itself calls ``fork_map`` —
#: including inside a worker, where pools cannot nest — runs serially.
_WORK_FN: Optional[Callable[[Any], Any]] = None


def set_default_jobs(jobs: Optional[int]) -> None:
    """Install a process-wide default worker count (the ``--jobs`` flag).

    ``None`` clears the default, falling back to ``REPRO_JOBS``.
    """
    global _default_jobs
    _default_jobs = None if jobs is None else int(jobs)


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """The effective worker count: argument, default, env var, or 1.

    0 (from any source) means "all CPU cores"; the result is always
    >= 1.
    """
    if jobs is None:
        jobs = _default_jobs
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        if raw:
            try:
                jobs = int(raw)
            except ValueError as exc:
                raise ValueError(
                    f"{JOBS_ENV} must be an integer, got {raw!r}"
                ) from exc
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs == 0:
        jobs = os.cpu_count() or 1
    return max(jobs, 1)


def pool_active() -> bool:
    """True inside a ``fork_map`` worker (or while a pool is being set up).

    Callers can use this to skip work that is redundant in a forked
    child, but ``fork_map`` itself already degrades to serial when
    nested, so most code never needs to check.
    """
    return _WORK_FN is not None


def _invoke(item: Any) -> Any:
    """Worker-side trampoline: run the fork-inherited function."""
    fn = _WORK_FN
    assert fn is not None, "_invoke outside a fork_map pool"
    return fn(item)


def fork_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    jobs: Optional[int] = None,
    serial_fn: Optional[Callable[[Any], Any]] = None,
) -> List[Any]:
    """``[fn(item) for item in items]``, possibly across forked processes.

    ``fn`` runs in the workers (inherited through ``fork``, so it need
    not pickle — items and results must).  ``serial_fn`` (default:
    ``fn``) runs in the parent whenever the serial path is taken; pass a
    distinct function when worker-side ``fn`` performs process-local
    setup that must not happen in the parent.  Both must compute the
    same results for the output to be path-independent.  The returned
    list is in item order.
    """
    global _WORK_FN
    if serial_fn is None:
        serial_fn = fn
    items = list(items)
    jobs = min(resolve_jobs(jobs), len(items))
    if jobs <= 1 or _WORK_FN is not None:
        return [serial_fn(item) for item in items]
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # platform without fork (Windows): stay correct
        return [serial_fn(item) for item in items]
    _WORK_FN = fn
    try:
        with ctx.Pool(processes=jobs) as pool:
            # chunksize=1: item costs are uneven (detection trials stop
            # on a sample-count condition; boundary tiles are denser
            # than interior ones), so fine-grained dispatch keeps the
            # pool busy.
            return pool.map(_invoke, items, chunksize=1)
    except (
        pickle.PicklingError,            # unpicklable work item
        multiprocessing.pool.MaybeEncodingError,  # unpicklable result
        AttributeError,
        TypeError,
        OSError,                         # fork/pipe failure
    ):
        # Work items are pure, so re-running serially is safe.
        return [serial_fn(item) for item in items]
    finally:
        _WORK_FN = None
