"""Process-wide registry of module-level cache reset hooks.

Module-level caches (the memoized region model, the parsed
``REPRO_SCALE`` fidelity multiplier, the active fault schedule, ...)
make a test's observable behavior depend on which tests ran before it
unless something rewinds them.  Every module that keeps such a cache
registers its reset function here; the root conftest's autouse fixture
calls :func:`reset_all_caches` before each test, and lint rule RPR401
flags module-level caches in modules that never register a hook.

``register_cache_reset`` doubles as a decorator so the idiom stays
one line at the definition site::

    _thing_cache: Optional[Thing] = None

    @register_cache_reset
    def reset_thing_cache() -> None:
        global _thing_cache
        _thing_cache = None
"""

from __future__ import annotations

from typing import Callable, List, Tuple

ResetHook = Callable[[], None]

_RESET_HOOKS: List[ResetHook] = []


def register_cache_reset(reset: ResetHook) -> ResetHook:
    """Register ``reset`` to run on :func:`reset_all_caches`.

    Returns ``reset`` unchanged, so it can wrap a ``def`` as a
    decorator.  Registering the same function twice is a no-op.
    """
    if reset not in _RESET_HOOKS:
        _RESET_HOOKS.append(reset)
    return reset


def registered_resets() -> Tuple[ResetHook, ...]:
    """The currently registered hooks, in registration order."""
    return tuple(_RESET_HOOKS)


def reset_all_caches() -> None:
    """Run every registered reset hook (registration order)."""
    for hook in tuple(_RESET_HOOKS):
        hook()
