"""The ``REPRO_SCALE`` fidelity multiplier.

The paper averages over 20 runs (probability curves) and 10,000 runs
(detection probabilities).  The default bench fidelity is far lower so
the whole suite completes in minutes; set ``REPRO_SCALE`` (a float
multiplier, default 1.0) to raise trial counts and durations toward the
paper's, e.g. ``REPRO_SCALE=10 pytest benchmarks/``.

This lives in ``util`` (not ``experiments``) because consumers span
layers: experiment sweeps scale their trial counts, and the manifest
writers in ``repro.obs`` record the active scale — ``obs`` sits below
``experiments`` in the layering DAG and must not import it.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

from repro.util.caches import register_cache_reset

#: (raw env string, parsed value) of the last fidelity_scale() call.
#: scaled() runs inside trial loops, so the env re-parse is cached;
#: keying on the raw string keeps monkeypatched REPRO_SCALE working
#: without an explicit reset.
_fidelity_cache: Optional[Tuple[str, float]] = None


def fidelity_scale() -> float:
    """The REPRO_SCALE multiplier (>= 0.1)."""
    global _fidelity_cache
    raw = os.environ.get("REPRO_SCALE", "1.0")
    cached = _fidelity_cache
    if cached is not None and cached[0] == raw:
        return cached[1]
    try:
        scale = float(raw)
    except ValueError as exc:
        raise ValueError(f"REPRO_SCALE must be a float, got {raw!r}") from exc
    value = max(scale, 0.1)
    _fidelity_cache = (raw, value)
    return value


@register_cache_reset
def reset_fidelity_cache() -> None:
    """Forget the cached REPRO_SCALE parse (test isolation)."""
    global _fidelity_cache
    _fidelity_cache = None


def scaled(value: float, minimum: int = 1) -> int:
    """``value`` scaled by REPRO_SCALE, floored at ``minimum``."""
    return max(int(round(value * fidelity_scale())), minimum)
