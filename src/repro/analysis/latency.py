"""Detection latency: how quickly a cheater is flagged.

The paper discusses the trade-off between "quickness" and accuracy
(larger windows detect subtler cheats but take longer to fill,
especially at low load).  This module quantifies it from a finished
run: the slot and sample index of the first malicious verdict, split by
which layer fired (deterministic vs statistical).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import slots_to_seconds


@dataclass(frozen=True)
class DetectionLatency:
    """When the tagged node was first flagged."""

    first_flag_slot: int            # None-like sentinel: -1 when never
    first_flag_seconds: float
    samples_at_flag: int
    deterministic_first: bool       # True if a verifier beat the test
    flagged: bool

    @classmethod
    def never(cls):
        return cls(
            first_flag_slot=-1,
            first_flag_seconds=float("inf"),
            samples_at_flag=-1,
            deterministic_first=False,
            flagged=False,
        )


def detection_latency(detector, slot_time_us=20.0):
    """Latency of the first malicious verdict for a finished detector.

    Accepts anything exposing ``verdicts`` and ``observations`` (a
    :class:`~repro.core.detector.BackoffMisbehaviorDetector` or a
    :class:`~repro.core.handoff.MonitorHandoff`).
    """
    malicious = [v for v in detector.verdicts if v.is_malicious]
    if not malicious:
        return DetectionLatency.never()
    first = min(malicious, key=lambda v: v.slot)
    samples_before = sum(
        1 for o in detector.observations if o.slot <= first.slot
    )
    return DetectionLatency(
        first_flag_slot=first.slot,
        first_flag_seconds=slots_to_seconds(first.slot, slot_time_us),
        samples_at_flag=samples_before,
        deterministic_first=first.deterministic,
        flagged=True,
    )
