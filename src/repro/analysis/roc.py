"""ROC analysis: detection vs false-alarm trade-off over alpha.

The paper fixes one significance level; sweeping it shows the whole
receiver-operating curve of the windowed rank-sum detector.  Feed one
honest run and one misbehaving run of the same scenario, and get
(false-alarm rate, detection rate) pairs per alpha.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ranksum import rank_sum_test
from repro.mac.backoff import contention_window

DEFAULT_ALPHAS = (0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.2)


@dataclass(frozen=True)
class RocPoint:
    alpha: float
    false_alarm_rate: float
    detection_rate: float
    honest_windows: int
    cheat_windows: int


def _window_p_values(detector, sample_size, alternative="less"):
    """One rank-sum p-value per non-overlapping window."""
    cfg = detector.config
    observations = [
        o for o in detector.observations if o.attempt <= cfg.max_test_attempt
    ]
    p_values = []
    for start in range(0, len(observations) - sample_size + 1, sample_size):
        window = observations[start : start + sample_size]
        x, y = [], []
        for o in window:
            norm = contention_window(min(o.attempt, 7), 31, 1023) + 1.0
            x.append(o.dictated / norm)
            y.append(o.estimated / norm + cfg.guard_band)
        p_values.append(rank_sum_test(x, y, alternative).p_value)
    return p_values


def roc_sweep(honest_detector, cheat_detector, sample_size,
              alphas=DEFAULT_ALPHAS):
    """ROC points from one honest and one misbehaving run."""
    honest_p = _window_p_values(honest_detector, sample_size)
    cheat_p = _window_p_values(cheat_detector, sample_size)
    if not honest_p or not cheat_p:
        raise ValueError("both runs need at least one full window")
    points = []
    for alpha in sorted(alphas):
        far = sum(p < alpha for p in honest_p) / len(honest_p)
        det = sum(p < alpha for p in cheat_p) / len(cheat_p)
        points.append(
            RocPoint(
                alpha=alpha,
                false_alarm_rate=far,
                detection_rate=det,
                honest_windows=len(honest_p),
                cheat_windows=len(cheat_p),
            )
        )
    return points
