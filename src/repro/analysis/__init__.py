"""Offline analysis of detection runs.

Post-processes a detector's sample/verdict stream into the quantities a
deployment (or a reviewer) asks about: how *fast* a cheater is caught,
the ROC trade-off as the significance level sweeps, and summary
statistics of the estimation error.
"""

from repro.analysis.latency import DetectionLatency, detection_latency
from repro.analysis.roc import RocPoint, roc_sweep
from repro.analysis.summary import EstimationSummary, summarize_estimation

__all__ = [
    "DetectionLatency",
    "EstimationSummary",
    "RocPoint",
    "detection_latency",
    "roc_sweep",
    "summarize_estimation",
]
