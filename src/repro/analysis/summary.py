"""Summary statistics of the monitor's back-off estimation."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.mac.backoff import contention_window


@dataclass(frozen=True)
class EstimationSummary:
    """How well estimated back-offs tracked the dictated ones."""

    samples: int
    mean_dictated: float
    mean_estimated: float
    mean_error: float               # estimated - dictated, slots
    mean_normalized_error: float    # in CW-relative units
    rmse: float
    unambiguous_fraction: float     # monitor idle through the interval

    @property
    def relative_shift(self):
        """estimated / dictated mean ratio (1.0 = unbiased; PM = m%
        cheats pull this toward (100 - m)/100)."""
        if self.mean_dictated == 0:
            return float("nan")
        return self.mean_estimated / self.mean_dictated


def summarize_estimation(detector):
    """An :class:`EstimationSummary` over a detector's samples."""
    observations = detector.observations
    n = len(observations)
    if n == 0:
        return EstimationSummary(
            samples=0,
            mean_dictated=float("nan"),
            mean_estimated=float("nan"),
            mean_error=float("nan"),
            mean_normalized_error=float("nan"),
            rmse=float("nan"),
            unambiguous_fraction=float("nan"),
        )
    errors = [o.estimated - o.dictated for o in observations]
    normalized = [
        (o.estimated - o.dictated)
        / (contention_window(min(o.attempt, 7), 31, 1023) + 1.0)
        for o in observations
    ]
    return EstimationSummary(
        samples=n,
        mean_dictated=sum(o.dictated for o in observations) / n,
        mean_estimated=sum(o.estimated for o in observations) / n,
        mean_error=sum(errors) / n,
        mean_normalized_error=sum(normalized) / n,
        rmse=math.sqrt(sum(e * e for e in errors) / n),
        unambiguous_fraction=sum(o.unambiguous for o in observations) / n,
    )
