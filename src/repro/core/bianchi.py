"""Bianchi's DCF model and the competing-terminals estimator.

Bianchi (2000) models saturated DCF with two coupled equations over the
per-slot transmission probability ``tau`` and the conditional collision
probability ``p`` for ``n`` competing stations:

    tau = 2(1-2p) / [ (1-2p)(W+1) + p W (1 - (2p)^m) ]
    p   = 1 - (1 - tau)^(n-1)

Bianchi & Tinnirello (2003) invert this at run time: a station measures
``p`` (the fraction of its transmission attempts that fail) and solves
for the number of competing terminals

    n = 1 + ln(1 - p) / ln(1 - tau(p)).

The paper uses that estimate to approximate the local node density that
feeds the region node counts of eqs. 3-4.  We implement the fixed-point
model (for tests and the forward direction) and the closed-form
inversion (for the monitor).
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from repro.util.validation import check_in_range, check_positive


class BianchiModel:
    """The saturated-DCF fixed point for a given contention configuration.

    ``cw_min`` is the initial contention window CWmin (back-off drawn
    from [0, cw_min]); ``stages`` the number of doublings m, so
    CWmax = 2^m (CWmin+1) - 1.
    """

    def __init__(self, cw_min: int = 31, stages: int = 5) -> None:
        self.w = int(check_positive(cw_min, "cw_min")) + 1
        self.stages = int(check_positive(stages, "stages"))

    def tau_of_p(self, p: float) -> float:
        """Per-slot transmission probability given collision prob ``p``.

        Uses the series form ``tau = 2 / (1 + W + p W sum_{i<m} (2p)^i)``,
        which equals Bianchi's closed form but has no removable
        singularity at p = 1/2.
        """
        check_in_range(p, 0.0, 1.0, "p")
        w, m = self.w, self.stages
        series = sum((2.0 * p) ** i for i in range(m))
        return 2.0 / (1.0 + w + p * w * series)

    def p_of_tau(self, tau: float, n: float) -> float:
        """Collision probability seen by one of ``n`` stations."""
        check_in_range(tau, 0.0, 1.0, "tau")
        check_positive(n, "n")
        return 1.0 - (1.0 - tau) ** (n - 1)

    def solve(
        self,
        n: float,
        tolerance: float = 1e-10,
        max_iterations: int = 10_000,
    ) -> Tuple[float, float]:
        """Fixed point (tau, p) for ``n`` saturated stations.

        Solved by damped iteration; the map is a contraction for the
        practical parameter range, and the damping guards the rest.
        """
        check_positive(n, "n")
        p = 0.1
        for _ in range(max_iterations):
            tau = self.tau_of_p(p)
            p_next = self.p_of_tau(tau, n)
            if abs(p_next - p) < tolerance:
                return tau, p_next
            p = 0.5 * p + 0.5 * p_next
        return self.tau_of_p(p), p


class CompetingTerminalEstimator:
    """Run-time estimate of the number of competing terminals.

    Feed measured transmission outcomes (or an externally smoothed
    collision probability); read ``estimate`` for n-hat.  Outcome
    smoothing uses the same exponential filter family as the ARMA
    traffic estimator.
    """

    def __init__(
        self, model: Optional[BianchiModel] = None, alpha: float = 0.995
    ) -> None:
        self.model = model if model is not None else BianchiModel()
        self.alpha = check_in_range(alpha, 0.0, 1.0, "alpha")
        self._p_hat: Optional[float] = None
        self.samples = 0

    def record_attempt(self, collided: bool) -> None:
        """Record one observed transmission attempt and its outcome."""
        value = 1.0 if collided else 0.0
        if self._p_hat is None:
            self._p_hat = value
        else:
            self._p_hat = self.alpha * self._p_hat + (1.0 - self.alpha) * value
        self.samples += 1

    @property
    def collision_probability(self) -> float:
        return self._p_hat if self._p_hat is not None else 0.0

    def terminals_for(self, p: float) -> float:
        """Closed-form n-hat for a given collision probability.

        ``p`` is clamped just below 1: a transient all-collisions
        measurement (e.g. the filter seeded by an early failure) would
        otherwise put ``log(1 - p)`` out of domain.
        """
        check_in_range(p, 0.0, 1.0, "p")
        if p <= 0.0:
            return 1.0
        p = min(p, 1.0 - 1e-9)
        tau = self.model.tau_of_p(p)
        if tau <= 0.0 or tau >= 1.0:
            return 1.0
        return 1.0 + math.log(1.0 - p) / math.log(1.0 - tau)

    @property
    def estimate(self) -> float:
        """Current n-hat (1.0 before any data)."""
        return self.terminals_for(self.collision_probability)
