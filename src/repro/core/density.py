"""Local node-density estimation (paper Section 4).

Having estimated the number of competing terminals ``n_R`` within its
transmission range ``R`` (via the Bianchi inversion), a monitor
approximates the network as uniformly dense and computes

    density = n_R / (pi R^2),
    nodes in region A_x = density * area(A_x),

which supplies the n, k (and m, j) counts of eqs. 3-4.  The paper notes
this is valid only for uniform node distributions; non-uniform densities
would need explicit degree reports (out of scope there and here).
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.geometry.regions import RegionModel
from repro.util.validation import check_positive


class NodeDensityEstimator:
    """Turns a competing-terminal count into per-region node counts."""

    def __init__(
        self,
        transmission_range: float = 250.0,
        region_model: Optional[RegionModel] = None,
    ) -> None:
        self.transmission_range = check_positive(
            transmission_range, "transmission_range"
        )
        self.region_model = (
            region_model if region_model is not None else RegionModel()
        )

    def density_from_terminals(self, n_terminals: float) -> float:
        """Nodes per square meter implied by ``n_terminals`` in range R."""
        if n_terminals < 0:
            raise ValueError(f"n_terminals must be >= 0, got {n_terminals}")
        area = math.pi * self.transmission_range**2
        return n_terminals / area

    def region_counts(self, n_terminals: float) -> Dict[str, float]:
        """Expected node counts for A1..A5 given ``n_terminals``.

        Returns the dict of real-valued expected counts; eqs. 3-4 use
        them directly as the exponents n + k (they need not be
        integers).
        """
        density = self.density_from_terminals(n_terminals)
        if density <= 0:
            return {label: 0.0 for label in ("A1", "A2", "A3", "A4", "A5")}
        return self.region_model.expected_counts(density)

    def contention_exponent(self, n_terminals: float) -> float:
        """The n + k of eqs. 3-4 (nodes in A1 plus nodes in A2)."""
        counts = self.region_counts(n_terminals)
        return counts["A1"] + counts["A2"]
