"""A shared observation plane for many-monitor detection runs.

The paper's framework is cooperative: *every* neighbor of a sender is a
potential monitor.  The original wiring gave each
:class:`~repro.core.detector.BackoffMisbehaviorDetector` its own private
:class:`~repro.core.observation.ChannelObserver` registered as a full
engine listener, so a run with D detectors paid O(D) per transmission —
D ``senses()`` lookups, D copies of the *same monitor node's*
busy-interval timeline, D identical ARMA ingests.

:class:`SharedChannelObservatory` is a single engine listener that
ingests each transmission **once** and fans the result out cheaply:

* sensed/decodable status is resolved per *monitor node* once, from the
  medium's cached :meth:`~repro.phy.medium.Medium.sensors_of`
  frozensets;
* one :class:`MonitorChannel` (busy timeline + own-tx ledger) exists per
  monitor node, shared by every detector observing from that node;
* per-channel *feeds* advance the ARMA traffic estimator and the
  Bianchi competing-terminal estimator once per event and are shared by
  every same-configuration detector on the channel;
* detectors subscribe via :class:`ObservatorySubscription` — a
  read-only, ``ChannelObserver``-compatible view plus a private
  ``ObservedTransmission`` demux of their tagged node.

Equivalence contract: for detectors attached *before* the run starts
(or on a fresh private channel mid-run, as the mobility hand-off does),
same-seed observations, verdicts, audit logs and metrics snapshots are
byte-identical to the per-detector-observer path; the suite in
``tests/test_observatory.py`` pins this.  A detector attached mid-run to
an already-populated shared channel would inherit busy history its own
observer could never have seen — use ``fresh_channel=True`` there.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.batch import (
    IntervalLedger,
    LazyArmaFeed,
    OccupancyFeed,
    rank_sum_many,
)
from repro.core.detector import BackoffMisbehaviorDetector, DetectorConfig
from repro.core.observation import ChannelViewBase, ObservedTransmission
from repro.core.ranksum import rank_sum_test
from repro.obs.trace import PID_ENGINE, active_tracer
from repro.sim.listeners import SimulationListener
from repro.util.units import Slots

if TYPE_CHECKING:  # pragma: no cover - import-time only
    from repro.core.arma import ArmaTrafficEstimator
    from repro.core.bianchi import CompetingTerminalEstimator
    from repro.faults.schedule import FaultSchedule
    from repro.mac.constants import MacTiming
    from repro.obs.audit import DecisionAuditLog
    from repro.obs.provenance import ProvenanceLog
    from repro.obs.registry import MetricsRegistry
    from repro.phy.medium import Medium, Transmission

Position = Tuple[float, float]

#: Feed key: (attach epoch, arma alpha, arma interval, exchange slots).
_ArmaKey = Tuple[int, float, int, int]


class _ArmaFeed:
    """One shared ARMA ingest stream on a :class:`MonitorChannel`.

    Mirrors ``BackoffMisbehaviorDetector._advance_arma`` exactly: the
    cursor starts at the first event's start slot (which also fixes the
    subscribed detectors' birth slot) and only slots older than one full
    exchange are ingested.  Every detector whose (arma_alpha,
    arma_interval_slots, exchange_slots, attach epoch) matches shares
    this feed's estimator instance.
    """

    __slots__ = ("arma", "exchange_slots", "cursor", "birth_slot", "detectors")

    def __init__(self, arma: "ArmaTrafficEstimator", exchange_slots: int) -> None:
        self.arma = arma
        self.exchange_slots = exchange_slots
        self.cursor = 0
        self.birth_slot: Optional[int] = None
        self.detectors: List[BackoffMisbehaviorDetector] = []

    def advance(
        self, slot: Slots, tx_start_slot: Slots, channel: "MonitorChannel"
    ) -> None:
        """Ingest finalized slots up to ``slot - exchange_slots``."""
        if self.birth_slot is None:
            birth = tx_start_slot
            self.birth_slot = birth
            self.cursor = birth
            for detector in self.detectors:
                detector._birth_slot = birth
                detector._arma_cursor = birth
        target = slot - self.exchange_slots
        if target <= self.cursor:
            return
        idle, busy = channel.idle_busy_counts(self.cursor, target)
        self.arma.ingest(busy, idle + busy)
        self.cursor = target

    def replay(
        self,
        log: "List[Tuple[Slots, Slots, Slots]]",
        start: int,
        channel: "MonitorChannel",
    ) -> None:
        """Advance through deferred end events, fold-for-fold identical
        to :meth:`advance` having been called at each one.

        ``log`` holds one entry per *distinct* dispatch slot — exactly
        the granularity :meth:`advance` folds at, since repeat calls at
        an unchanged slot hit the ``target <= cursor`` early return.
        Chunking matters in exactly two places, and both are honored:
        busy slots are apportioned by the fraction pending when an
        interval completes, so (a) entries are folded one at a time
        while busy intervals remain past the cursor, and (b) once the
        remaining stretch is pure idle, entries merge freely *between*
        interval boundaries (accumulating into the pending buffer is
        associative) while each boundary-crossing entry folds alone.
        With nothing busy pending at all the fraction is identically
        ``0.0`` under any chunking and the whole tail merges into one
        ingest.  Every branch is bit-identical to the per-event
        sequence.
        """
        i = start
        n = len(log)
        if self.birth_slot is None and i < n:
            # Birth comes from the first event after feed creation,
            # exactly as the eager per-event advance fixes it.
            slot, tx_start, _end = log[i]
            self.advance(slot, tx_start, channel)
            i += 1
        arma = self.arma
        exchange = self.exchange_slots
        while i < n and channel.busy_after(self.cursor):
            target = log[i][0] - exchange
            i += 1
            if target <= self.cursor:
                continue
            idle, busy = channel.idle_busy_counts(self.cursor, target)
            arma.ingest(busy, idle + busy)
            self.cursor = target
        if i >= n:
            return
        last_target = log[n - 1][0] - exchange
        if last_target <= self.cursor:
            return
        if arma.pending_busy == 0.0:
            arma.ingest(0, last_target - self.cursor)
            self.cursor = last_target
            return
        s = arma.sample_interval_slots
        while i < n:
            # Entries below `bound` cannot complete an interval even
            # merged; the first at or past it must fold alone so the
            # apportioning fraction sees its exact chunk.
            bound = self.cursor + exchange + (s - arma.pending_total)
            j = bisect.bisect_left(log, (bound,), i, n)
            if j > i:
                merged = log[j - 1][0] - exchange
                if merged > self.cursor:
                    arma.ingest(0, merged - self.cursor)
                    self.cursor = merged
                i = j
                if i >= n:
                    return
            target = log[i][0] - exchange
            i += 1
            if target > self.cursor:
                arma.ingest(0, target - self.cursor)
                self.cursor = target


class MonitorChannel(ChannelViewBase):
    """One monitor node's shared busy timeline and estimator feeds."""

    def __init__(self, monitor_id: int) -> None:
        ChannelViewBase.__init__(self)
        self.monitor_id = monitor_id
        #: id(transmission) of in-flight transmissions sensed at start
        self._sensed_keys: Set[int] = set()
        #: end events ingested since this channel was created; feeds are
        #: keyed by the value at attach time so only detectors that
        #: joined at the same point in the stream share state.
        self.events_ingested = 0
        self._arma_by_key: Dict[_ArmaKey, _ArmaFeed] = {}
        self.arma_feeds: List[_ArmaFeed] = []
        self._terminal_by_epoch: Dict[int, "CompetingTerminalEstimator"] = {}
        self.terminal_feeds: List["CompetingTerminalEstimator"] = []
        #: lazy-ingest bookkeeping: position in the observatory's
        #: end-event log / raw event count this channel has absorbed
        #: (see SharedChannelObservatory.enable_lazy_ingest)
        self._lazy_log_index = 0
        self._lazy_events = 0
        #: detectors with occupancy correction enabled (per-tagged EWMA)
        self.occupancy_detectors: List[BackoffMisbehaviorDetector] = []
        #: live subscriptions reading this channel
        self.subscribers = 0

    def ingest_end(
        self,
        slot: Slots,
        key: int,
        sender: int,
        sensors: "FrozenSet[int]",
        start_slot: Slots,
        end_slot: Slots,
        collided: bool,
    ) -> None:
        """Absorb one end event: timeline, estimator feeds, bookkeeping."""
        monitor = self.monitor_id
        if end_slot > self.last_slot:
            self.last_slot = end_slot
        if key in self._sensed_keys:
            self._sensed_keys.remove(key)
            self._add_busy_interval(start_slot, end_slot)
            if sender == monitor:
                self._add_own_interval(start_slot, end_slot)
        self.events_ingested += 1
        if sender != monitor and monitor in sensors:
            # Every sensed attempt feeds the shared collision-
            # probability estimate behind the density inversion.
            for terminal in self.terminal_feeds:
                terminal.record_attempt(collided=collided)
            for detector in self.occupancy_detectors:
                if sender != detector.tagged_id:
                    detector._record_occupancy(
                        invisible=detector.tagged_id not in sensors
                    )
        for feed in self.arma_feeds:
            feed.advance(slot, start_slot, self)

    def replay_deferred(
        self, log: "List[Tuple[Slots, Slots, Slots]]", start: int
    ) -> None:
        """Catch up on end events this channel was not involved in.

        Reproduces exactly what per-event :meth:`ingest_end` calls with
        no sensed key, no own traffic, and a foreign non-sensing sender
        would have done: bump ``last_slot`` and advance the ARMA feeds.
        (``events_ingested`` is settled by the observatory, which knows
        the raw event count behind the distinct-slot log.)
        """
        last_end = log[-1][2]
        if last_end > self.last_slot:
            self.last_slot = last_end
        for feed in self.arma_feeds:
            feed.replay(log, start, self)


class BatchMonitorChannel(MonitorChannel):
    """The ``stats_backend="batched"`` monitor channel.

    Same canonical timeline semantics as :class:`MonitorChannel`, but
    intervals live in numpy :class:`~repro.core.batch.IntervalLedger`
    instances and the per-event estimator folds are *logged* instead of
    run: :meth:`ingest_end` appends to the end-slot and occupancy logs,
    and the :class:`~repro.core.batch.LazyArmaFeed` /
    :class:`~repro.core.batch.OccupancyFeed` readers replay the exact
    scalar fold sequence on demand.
    """

    def __init__(self, monitor_id: int) -> None:
        MonitorChannel.__init__(self, monitor_id)
        self._busy = IntervalLedger()
        self._own = IntervalLedger()
        #: dispatch slot of every end event this channel ingested (the
        #: lazy ARMA feeds' replay script)
        self._end_slot_log: List[int] = []
        #: (sender, sensors-at-event-time) of every sensed foreign event
        #: while occupancy detectors are subscribed
        self._occ_log: List[Tuple[int, FrozenSet[int]]] = []
        self._lazy_arma_by_key: Dict[_ArmaKey, LazyArmaFeed] = {}
        self.lazy_arma_feeds: List[LazyArmaFeed] = []
        #: feeds created before this channel's next event (their birth
        #: slot — and their detectors' — is fixed by that event)
        self._unborn_feeds: List[LazyArmaFeed] = []

    # -- timeline mutators (ledger-backed) ---------------------------------

    def _add_busy_interval(self, start: Slots, end: Slots) -> None:
        self._busy.add(start, end)

    def _add_own_interval(self, start: Slots, end: Slots) -> None:
        self.monitor_tx_slots += end - start
        self._own.add(start, end)

    # -- queries (identical results, O(log n) on prefix sums) --------------

    def busy_slots_in(self, start: Slots, end: Slots) -> Slots:
        return self._busy.overlap(start, end)

    def busy_intervals_in(self, start: Slots, end: Slots) -> List[Tuple[int, int]]:
        return self._busy.intervals_in(start, end)

    def own_tx_slots_in(self, start: Slots, end: Slots) -> Slots:
        return self._own.overlap(start, end)

    def ingest_end(
        self,
        slot: Slots,
        key: int,
        sender: int,
        sensors: "FrozenSet[int]",
        start_slot: Slots,
        end_slot: Slots,
        collided: bool,
    ) -> None:
        """The lean batched ingest: log now, fold on demand."""
        monitor = self.monitor_id
        if end_slot > self.last_slot:
            self.last_slot = end_slot
        if key in self._sensed_keys:
            self._sensed_keys.remove(key)
            self._busy.add(start_slot, end_slot)
            if sender == monitor:
                self.monitor_tx_slots += end_slot - start_slot
                self._own.add(start_slot, end_slot)
        self.events_ingested += 1
        if sender != monitor and monitor in sensors:
            # The terminal estimator is one cheap EWMA shared by every
            # subscriber; fold it eagerly (tests read it mid-run).
            for terminal in self.terminal_feeds:
                terminal.record_attempt(collided=collided)
            if self.occupancy_detectors:
                self._occ_log.append((sender, sensors))
        if self._unborn_feeds:
            for feed in self._unborn_feeds:
                feed.start(start_slot)
            self._unborn_feeds.clear()
        self._end_slot_log.append(slot)


class ObservatorySubscription:
    """A detector's read-only, ``ChannelObserver``-compatible view.

    Queries delegate to the shared :class:`MonitorChannel`; the
    ``observed`` demux (and the decodable flags captured at transmission
    start) are private to this (monitor, tagged) subscription.
    """

    __slots__ = (
        "channel",
        "monitor_id",
        "tagged_id",
        "observed",
        "_observatory",
        "_decodable_keys",
        "_detector",
    )

    def __init__(
        self,
        observatory: "SharedChannelObservatory",
        channel: MonitorChannel,
        monitor_id: int,
        tagged_id: int,
    ) -> None:
        self._observatory = observatory
        self.channel = channel
        self.monitor_id = monitor_id
        self.tagged_id = tagged_id
        #: ObservedTransmission of the tagged node (this sub's demux)
        self.observed: List[ObservedTransmission] = []
        #: id(transmission) of in-flight tagged tx decodable at start
        self._decodable_keys: Set[int] = set()
        self._detector: Optional[BackoffMisbehaviorDetector] = None

    # -- ChannelObserver-compatible query surface --------------------------

    def busy_slots_in(self, start: Slots, end: Slots) -> int:
        return self.channel.busy_slots_in(start, end)

    def busy_intervals_in(self, start: Slots, end: Slots) -> List[Tuple[int, int]]:
        return self.channel.busy_intervals_in(start, end)

    def idle_busy_counts(self, start: Slots, end: Slots) -> Tuple[int, int]:
        return self.channel.idle_busy_counts(start, end)

    def idle_stretches_in(self, start: Slots, end: Slots) -> int:
        return self.channel.idle_stretches_in(start, end)

    def own_tx_slots_in(self, start: Slots, end: Slots) -> int:
        return self.channel.own_tx_slots_in(start, end)

    def traffic_intensity(self, start: Slots, end: Slots) -> float:
        return self.channel.traffic_intensity(start, end)

    @property
    def faults(self) -> "Optional[FaultSchedule]":
        """The observatory's injected fault schedule (None = clean)."""
        return self._observatory.faults

    @property
    def monitor_tx_slots(self) -> int:
        return self.channel.monitor_tx_slots

    @property
    def last_slot(self) -> int:
        return self.channel.last_slot

    @property
    def _busy_starts(self) -> List[int]:
        return self.channel._busy_starts

    @property
    def _busy_ends(self) -> List[int]:
        return self.channel._busy_ends

    def retag(self, new_tagged_id: int, drop_history: bool = True) -> None:
        """Re-point this subscription's demux at another tagged node."""
        self._observatory._retag_subscription(self, new_tagged_id)
        if drop_history:
            self.observed.clear()
            self._decodable_keys.clear()

    def on_positions_updated(
        self, slot: Slots, positions: Dict[int, Position], medium: "Medium"
    ) -> None:
        """No-op: the shared channel needs no per-epoch work."""


@dataclass
class _PendingWindow:
    """One rank-sum-ready window, snapshotted at deferral time.

    The log indices were reserved when the window became ready, so the
    dispatch-end fill lands every record exactly where an eager scalar
    evaluation would have written it; the (x, y) copies protect the
    window contents from later ``add_sample`` calls in the same flush
    cycle.  The rho/quarantine/skip counters are likewise frozen at
    deferral — provenance must describe the detector state *when the
    window became ready*, not whatever it drifted to by flush time
    (coarse flush cadences, as the streaming service runs, would
    otherwise leak later ingests into earlier records).
    """

    detector: BackoffMisbehaviorDetector
    slot: int
    alternative: str
    x: List[float]
    y: List[float]
    window_meta: List[Tuple[int, int, float, float]]
    audit_index: Optional[int]
    provenance_index: Optional[int]
    #: reserved ``detector.verdicts`` slot and ``_verdict_seq`` value —
    #: deterministic violations published between deferral and flush
    #: must not overtake this verdict's list position or id numbering
    verdict_index: int
    verdict_seq: Optional[int]
    rho: float
    quarantine_drops: Dict[str, int]
    skipped_samples: int


class BatchScheduler:
    """Coalesces ready rank-sum windows across all detectors.

    The scalar path tests each window at ingest, one scalar rank-sum
    per detector per event.  Under the batched backend, detectors
    *defer* ready windows here instead; at the end of the same
    transmission-end dispatch the observatory flushes them through
    :func:`repro.core.batch.rank_sum_many` in one vectorized call per
    alternative.  Verdict slots, per-detector ordering, and the shared
    audit/provenance interleaving are all preserved: the verdict slot
    is captured at deferral, and the log positions were reserved then.
    """

    def __init__(self) -> None:
        self._pending: List[_PendingWindow] = []

    def __len__(self) -> int:
        return len(self._pending)

    def defer(self, detector: BackoffMisbehaviorDetector, slot: Slots) -> None:
        """Snapshot one ready window and reserve its log positions."""
        x, y = detector.test.window_snapshot()
        audit_index = None if detector.audit is None else detector.audit.reserve()
        provenance_index = (
            None if detector.provenance is None else detector.provenance.reserve()
        )
        verdict_index = detector._reserve_verdict()
        verdict_seq: Optional[int] = None
        if detector.provenance is not None or detector._tracer is not None:
            # Mirror _publish's id numbering at deferral time, so a
            # deterministic verdict published before the flush cannot
            # steal this verdict's sequence number.
            verdict_seq = detector._verdict_seq
            detector._verdict_seq += 1
        self._pending.append(
            _PendingWindow(
                detector=detector,
                slot=slot,
                alternative=detector.test.alternative,
                x=x,
                y=y,
                window_meta=list(detector._window_meta),
                audit_index=audit_index,
                provenance_index=provenance_index,
                verdict_index=verdict_index,
                verdict_seq=verdict_seq,
                rho=detector.rho,
                quarantine_drops=dict(detector.quarantine_counts),
                skipped_samples=detector.skipped_samples,
            )
        )

    def flush(self) -> None:
        """Evaluate every deferred window and publish its verdict."""
        pending = self._pending
        if not pending:
            return
        self._pending = []
        groups: Dict[str, List[_PendingWindow]] = {}
        for entry in pending:
            groups.setdefault(entry.alternative, []).append(entry)
        for alternative, group in groups.items():
            if len(group) <= 2:
                # Below the kernel's numpy fixed cost; the scalar test
                # is bit-identical by contract, so the fallback never
                # moves a verdict.
                results = [
                    rank_sum_test(entry.x, entry.y, alternative)
                    for entry in group
                ]
            else:
                results = rank_sum_many(
                    [entry.x for entry in group],
                    [entry.y for entry in group],
                    alternative,
                )
            for entry, result in zip(group, results):
                entry.detector._finish_deferred_evaluation(entry, result)


class SharedChannelObservatory(SimulationListener):
    """The single engine listener behind every subscribed detector."""

    def __init__(self, faults: "Optional[FaultSchedule]" = None) -> None:
        if faults is None:
            from repro.faults.runtime import active_schedule

            faults = active_schedule()
        #: injected link faults (None = clean channel, the default);
        #: applied per monitor *node*, identically to a private
        #: ChannelObserver on that node (the draws are pure hashes of
        #: (monitor, sender, start slot), so the equivalence contract
        #: holds under faults too).
        self.faults = faults
        #: monitor id -> shared channel (fresh channels live only in the list)
        self._channels: Dict[int, MonitorChannel] = {}
        #: every live channel, shared and fresh, in creation order
        self._channel_list: List[MonitorChannel] = []
        #: monitor id -> every live channel on that node, shared and
        #: fresh (the lazy ingest plane's dispatch index)
        self._monitor_index: Dict[int, List[MonitorChannel]] = {}
        #: lazy mode (serve): defer uninvolved channels' idle accounting
        self._lazy = False
        #: channels holding each in-flight sensed key (lazy mode only;
        #: lets ingest_end find start-time sensors without a scan)
        self._sensed_by_key: Dict[int, List[MonitorChannel]] = {}
        #: one entry per distinct end-event dispatch slot:
        #: (slot, first event's tx start slot, cumulative max end slot)
        self._end_log: List[Tuple[Slots, Slots, Slots]] = []
        #: absolute index of _end_log[0] (entries before it were trimmed)
        self._end_log_base = 0
        #: raw end events absorbed by the lazy plane
        self._end_events = 0
        #: tagged id -> subscriptions, in attach order (= audit order)
        self._subs_by_tagged: Dict[int, List[ObservatorySubscription]] = {}
        #: units receiving position epochs (detectors, hand-off managers)
        self._position_units: List[SimulationListener] = []
        #: live detectors in attach order
        self.detectors: List[BackoffMisbehaviorDetector] = []
        #: the process tracer when tracing is on (ingest/demux instants)
        self._tracer = active_tracer()
        #: statistical backend, fixed by the first attach ("scalar" or
        #: "batched"); mixing backends on one observatory is an error.
        self._backend: Optional[str] = None
        #: dispatch-end window coalescing (batched backend only)
        self._scheduler = BatchScheduler()

    # -- subscription management -------------------------------------------

    def attach(
        self,
        monitor_id: int,
        tagged_id: int,
        config: Optional[DetectorConfig] = None,
        timing: "Optional[MacTiming]" = None,
        separation: Optional[float] = None,
        audit: "Optional[DecisionAuditLog]" = None,
        metrics: "Optional[MetricsRegistry]" = None,
        provenance: "Optional[ProvenanceLog]" = None,
        fresh_channel: bool = False,
        position_unit: bool = True,
    ) -> BackoffMisbehaviorDetector:
        """Create a detector subscribed to this observatory.

        ``fresh_channel=True`` gives the detector a private, empty
        channel instead of the monitor node's shared one — required for
        byte-identity when attaching mid-run (a hand-off replacement
        must not inherit busy history its own observer never saw).
        ``position_unit=False`` skips mobility-epoch forwarding (the
        hand-off manager forwards positions itself).
        """
        cfg = config if config is not None else DetectorConfig()
        if self._backend is None:
            self._backend = cfg.stats_backend
        elif cfg.stats_backend != self._backend:
            raise ValueError(
                f"observatory already runs stats_backend={self._backend!r}; "
                f"cannot attach a {cfg.stats_backend!r} detector"
            )
        if self._lazy and cfg.stats_backend != "scalar":
            raise ValueError(
                "lazy ingest supports only the scalar backend (batched "
                "channels log every raw event themselves)"
            )
        channel = self._channels.get(monitor_id) if not fresh_channel else None
        if channel is None:
            if self._backend == "batched":
                channel = BatchMonitorChannel(monitor_id)
            else:
                channel = MonitorChannel(monitor_id)
            self._channel_list.append(channel)
            self._monitor_index.setdefault(monitor_id, []).append(channel)
            channel._lazy_log_index = self._end_log_base + len(self._end_log)
            channel._lazy_events = self._end_events
            if not fresh_channel:
                self._channels[monitor_id] = channel
        elif self._lazy:
            # Feed epochs key on events_ingested: settle it first.
            self._sync_channel(channel)
        subscription = ObservatorySubscription(
            self, channel, monitor_id, tagged_id
        )
        detector = BackoffMisbehaviorDetector(
            monitor_id,
            tagged_id,
            config=cfg,
            timing=timing,
            separation=separation,
            audit=audit,
            metrics=metrics,
            observer=subscription,
            provenance=provenance,
        )
        subscription._detector = detector
        channel.subscribers += 1
        self._share_feeds(channel, detector)
        self._subs_by_tagged.setdefault(tagged_id, []).append(subscription)
        self.detectors.append(detector)
        if position_unit:
            self._position_units.append(detector)
        return detector

    def _share_feeds(
        self, channel: MonitorChannel, detector: BackoffMisbehaviorDetector
    ) -> None:
        """Point the detector at the channel's shared estimator feeds."""
        epoch = channel.events_ingested
        cfg = detector.config
        key: _ArmaKey = (
            epoch,
            cfg.arma_alpha,
            cfg.arma_interval_slots,
            detector.timing.exchange_slots,
        )
        if isinstance(channel, BatchMonitorChannel):
            lazy = channel._lazy_arma_by_key.get(key)
            if lazy is None:
                lazy = LazyArmaFeed(
                    detector.arma, detector.timing.exchange_slots, channel
                )
                channel._lazy_arma_by_key[key] = lazy
                channel.lazy_arma_feeds.append(lazy)
                channel._unborn_feeds.append(lazy)
            else:
                # Late joiners share the estimator but (like the eager
                # feed) do not inherit the feed's birth slot.
                detector.arma = lazy.arma
            lazy.detectors.append(detector)
            detector._lazy_arma_feed = lazy
            detector._batch_scheduler = self._scheduler
            if cfg.occupancy_correction:
                detector._occupancy_feed = OccupancyFeed(
                    channel._occ_log, detector
                )
        else:
            feed = channel._arma_by_key.get(key)
            if feed is None:
                feed = _ArmaFeed(detector.arma, detector.timing.exchange_slots)
                channel._arma_by_key[key] = feed
                channel.arma_feeds.append(feed)
            else:
                detector.arma = feed.arma
            feed.detectors.append(detector)
        terminal = channel._terminal_by_epoch.get(epoch)
        if terminal is None:
            channel._terminal_by_epoch[epoch] = detector.terminal_estimator
            channel.terminal_feeds.append(detector.terminal_estimator)
        else:
            detector.terminal_estimator = terminal
        if cfg.occupancy_correction:
            channel.occupancy_detectors.append(detector)

    def detach(self, detector: BackoffMisbehaviorDetector) -> None:
        """Unsubscribe a detector; its recorded state freezes.

        Drops the demux, feed and position registrations; if the channel
        has no remaining subscribers it stops updating entirely (like a
        retired private observer).
        """
        subscription = detector.observer
        if not isinstance(subscription, ObservatorySubscription):
            raise ValueError("detector is not observatory-subscribed")
        channel = subscription.channel
        subs = self._subs_by_tagged.get(subscription.tagged_id, [])
        if subscription in subs:
            subs.remove(subscription)
        if detector in self.detectors:
            self.detectors.remove(detector)
        if detector in self._position_units:
            self._position_units.remove(detector)
        if detector in channel.occupancy_detectors:
            channel.occupancy_detectors.remove(detector)
        for feed in channel.arma_feeds:
            if detector in feed.detectors:
                feed.detectors.remove(detector)
        # Batched backend: the lazy ARMA feed stays connected — in
        # scalar mode the shared estimator keeps advancing while the
        # channel lives, and sync-on-read reproduces exactly that (the
        # log stops growing once the channel dies).  The occupancy EWMA
        # is per-detector and freezes at detach in scalar mode, so fold
        # it up to now and disconnect.
        lazy = detector._lazy_arma_feed
        if lazy is not None and detector in lazy.detectors:
            lazy.detectors.remove(detector)
        occupancy = detector._occupancy_feed
        if occupancy is not None:
            occupancy.sync()
            detector._occupancy_feed = None
        detector._batch_scheduler = None
        channel.subscribers -= 1
        if channel.subscribers <= 0:
            self._channel_list.remove(channel)
            siblings = self._monitor_index.get(channel.monitor_id)
            if siblings is not None and channel in siblings:
                siblings.remove(channel)
                if not siblings:
                    del self._monitor_index[channel.monitor_id]
            if self._channels.get(channel.monitor_id) is channel:
                del self._channels[channel.monitor_id]

    def _retag_subscription(
        self, subscription: ObservatorySubscription, new_tagged_id: int
    ) -> None:
        """Move a subscription's demux registration to a new tagged node."""
        subs = self._subs_by_tagged.get(subscription.tagged_id, [])
        if subscription in subs:
            subs.remove(subscription)
        subscription.tagged_id = new_tagged_id
        self._subs_by_tagged.setdefault(new_tagged_id, []).append(subscription)

    def add_position_listener(self, unit: SimulationListener) -> None:
        """Forward mobility epochs to ``unit`` (e.g. a MonitorHandoff)."""
        self._position_units.append(unit)

    # -- lazy ingest plane (serve) -----------------------------------------

    def enable_lazy_ingest(self) -> None:
        """Defer uninvolved channels' per-event idle accounting.

        The eager ingest plane touches every live channel on every end
        event — an uninvolved channel still folds the event's slots
        into its ARMA feeds as idle — which is O(channels) per event
        and fatal when one session tracks 10^5 links.  In lazy mode
        ``ingest_end`` touches only the channels the event can affect
        (sensing monitors, the sender's own node, the demux targets)
        and records the event in a shared distinct-slot log; every
        other channel replays the log on its next involvement.  The
        replay is fold-for-fold identical to the eager plane (see
        :meth:`_ArmaFeed.replay`), so observations, verdicts and logs
        stay byte-identical; only the *timing* of the idle folds moves.

        Serve sessions enable this; the engine listener path never does
        (tests and analyses there inspect feed state mid-run and expect
        it eagerly current).  Call :meth:`sync_ingest` before reading
        feed state from outside an ingest callback.  Scalar backend
        only.
        """
        if self._backend == "batched":
            raise ValueError(
                "lazy ingest supports only the scalar backend (batched "
                "channels log every raw event themselves)"
            )
        self._lazy = True
        tip = self._end_log_base + len(self._end_log)
        for channel in self._channel_list:
            channel._lazy_log_index = tip
            channel._lazy_events = self._end_events

    def sync_ingest(self) -> None:
        """Catch every lazy channel up and trim the shared event log."""
        if not self._lazy:
            return
        for channel in self._channel_list:
            self._sync_channel(channel)
        self._end_log_base += len(self._end_log)
        self._end_log.clear()

    def _sync_channel(self, channel: MonitorChannel) -> None:
        """Replay whatever end events a lazy channel has deferred."""
        start = channel._lazy_log_index - self._end_log_base
        if start < len(self._end_log):
            channel.replay_deferred(self._end_log, start)
            channel._lazy_log_index = self._end_log_base + len(self._end_log)
        behind = self._end_events - channel._lazy_events
        if behind:
            channel.events_ingested += behind
            channel._lazy_events = self._end_events

    def _log_end_event(
        self, slot: Slots, start_slot: Slots, end_slot: Slots
    ) -> None:
        """Append one end event to the distinct-slot log."""
        self._end_events += 1
        log = self._end_log
        if log and log[-1][0] == slot:
            # Same dispatch slot: feed folds are idempotent (the target
            # is unchanged), so only the cumulative end max can move.
            prev = log[-1]
            if end_slot > prev[2]:
                log[-1] = (slot, prev[1], end_slot)
        else:
            if log and log[-1][2] > end_slot:
                end_slot = log[-1][2]
            log.append((slot, start_slot, end_slot))

    # -- medium-free ingest plane ------------------------------------------
    #
    # The engine hooks below resolve physics (``sensors_of``,
    # ``clean_decode``) from the live medium and delegate here.  The
    # streaming service (``repro.serve``) calls these methods directly
    # with sensed/decodable sets read off the wire — same code path,
    # byte-identical demux, no simulator required.

    def ingest_start(
        self,
        slot: Slots,
        key: int,
        sender: int,
        sensors: "FrozenSet[int]",
        decodable_monitors: "FrozenSet[int]",
    ) -> None:
        """Mark one transmission start: sensed keys and decode flags."""
        if self._lazy:
            index = self._monitor_index
            sensed: List[MonitorChannel] = []
            for node in sensors:
                for channel in index.get(node, ()):
                    channel._sensed_keys.add(key)
                    sensed.append(channel)
            if sender not in sensors:
                for channel in index.get(sender, ()):
                    channel._sensed_keys.add(key)
                    sensed.append(channel)
            if sensed:
                self._sensed_by_key[key] = sensed
        else:
            for channel in self._channel_list:
                monitor = channel.monitor_id
                if monitor == sender or monitor in sensors:
                    channel._sensed_keys.add(key)
        subs = self._subs_by_tagged.get(sender)
        if not subs:
            return
        for subscription in subs:
            if subscription.monitor_id in decodable_monitors:
                subscription._decodable_keys.add(key)

    def ingest_end(
        self,
        slot: Slots,
        key: int,
        sender: int,
        receiver: int,
        start_slot: Slots,
        end_slot: Slots,
        success: bool,
        frame: object,
        sensors: "FrozenSet[int]",
        medium: "Optional[Medium]" = None,
    ) -> None:
        """Absorb one transmission end: timelines, demux, evaluation."""
        collided = not success
        if self._lazy:
            index = self._monitor_index
            involved: Dict[int, MonitorChannel] = {}
            for node in sensors:
                for channel in index.get(node, ()):
                    involved[id(channel)] = channel
            for channel in index.get(sender, ()):
                involved[id(channel)] = channel
            # Sensed at start but outside the end-time sensor set
            # (mobility): the in-flight key still closes a busy
            # interval on those channels.  A channel detached while the
            # transmission was in flight is dead (subscribers == 0) and
            # must be skipped, exactly as the eager channel-list loop
            # no longer visits it.
            for channel in self._sensed_by_key.pop(key, ()):
                if channel.subscribers > 0:
                    involved[id(channel)] = channel
            demux_subs = self._subs_by_tagged.get(sender)
            if demux_subs:
                for subscription in demux_subs:
                    involved[id(subscription.channel)] = subscription.channel
            for channel in involved.values():
                self._sync_channel(channel)
            self._log_end_event(slot, start_slot, end_slot)
            tip = self._end_log_base + len(self._end_log)
            for channel in involved.values():
                channel.ingest_end(
                    slot, key, sender, sensors, start_slot, end_slot, collided
                )
                channel._lazy_log_index = tip
                channel._lazy_events = self._end_events
        else:
            for channel in self._channel_list:
                channel.ingest_end(
                    slot,
                    key,
                    sender,
                    sensors,
                    start_slot,
                    end_slot,
                    collided,
                )
        subs = self._subs_by_tagged.get(sender)
        if self._tracer is not None:
            self._tracer.instant(
                "observatory.ingest",
                slot=slot,
                pid=PID_ENGINE,
                category="observatory",
                args={
                    "sender": sender,
                    "channels": len(self._channel_list),
                    "subscriptions": len(subs) if subs else 0,
                },
            )
        if not subs:
            return
        #: per-monitor-node fault resolution memo: (rts, impairment)
        delivered: Dict[int, Tuple[object, Optional[str]]] = {}
        for subscription in subs:
            decodable = key in subscription._decodable_keys
            if decodable:
                subscription._decodable_keys.remove(key)
            rts = frame if decodable else None
            impairment = None
            if decodable and self.faults is not None:
                monitor = subscription.monitor_id
                outcome = delivered.get(monitor)
                if outcome is None:
                    outcome = delivered[monitor] = self.faults.deliver_rts(
                        monitor, sender, start_slot, frame
                    )
                rts, impairment = outcome
            subscription.observed.append(
                ObservedTransmission(
                    start_slot=start_slot,
                    end_slot=end_slot,
                    rts=rts,
                    success=success,
                    receiver=receiver,
                    impairment=impairment,
                )
            )
        # Run the sample pipelines only after every demux appended, in
        # attach order (which fixes the audit-record order exactly as
        # the per-listener dispatch did).
        for subscription in subs:
            detector = subscription._detector
            if detector is not None:
                detector._process_new_observations(medium)
        # Batched backend: evaluate every window deferred during this
        # dispatch in one vectorized shot (no-op otherwise).
        self._scheduler.flush()

    def ingest_positions(
        self,
        slot: Slots,
        positions: Dict[int, Position],
        medium: "Optional[Medium]" = None,
    ) -> None:
        """Forward a mobility epoch to every registered position unit."""
        for unit in self._position_units:
            unit.on_positions_updated(slot, positions, medium)

    # -- engine listener callbacks -----------------------------------------

    def on_transmission_start(
        self, slot: Slots, transmission: "Transmission", medium: "Medium"
    ) -> None:
        key = id(transmission)
        sender = transmission.sender
        sensors = medium.sensors_of(sender)
        # Decodable iff in decode range, the monitor itself silent, and
        # no other sensed transmission garbling the preamble — resolved
        # once per monitor node, not once per detector.
        decodable_monitors: Set[int] = set()
        subs = self._subs_by_tagged.get(sender)
        if subs:
            flags: Dict[int, bool] = {}
            for subscription in subs:
                monitor = subscription.monitor_id
                decodable = flags.get(monitor)
                if decodable is None:
                    decodable = flags[monitor] = medium.clean_decode(
                        sender, monitor
                    )
                if decodable:
                    decodable_monitors.add(monitor)
        self.ingest_start(slot, key, sender, sensors, decodable_monitors)

    def on_transmission_end(
        self,
        slot: Slots,
        transmission: "Transmission",
        success: bool,
        medium: "Medium",
    ) -> None:
        self.ingest_end(
            slot,
            id(transmission),
            transmission.sender,
            transmission.receiver,
            transmission.start_slot,
            transmission.end_slot,
            success,
            transmission.frame,
            medium.sensors_of(transmission.sender),
            medium,
        )

    def on_positions_updated(
        self, slot: Slots, positions: Dict[int, Position], medium: "Medium"
    ) -> None:
        self.ingest_positions(slot, positions, medium)
