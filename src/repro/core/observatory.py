"""A shared observation plane for many-monitor detection runs.

The paper's framework is cooperative: *every* neighbor of a sender is a
potential monitor.  The original wiring gave each
:class:`~repro.core.detector.BackoffMisbehaviorDetector` its own private
:class:`~repro.core.observation.ChannelObserver` registered as a full
engine listener, so a run with D detectors paid O(D) per transmission —
D ``senses()`` lookups, D copies of the *same monitor node's*
busy-interval timeline, D identical ARMA ingests.

:class:`SharedChannelObservatory` is a single engine listener that
ingests each transmission **once** and fans the result out cheaply:

* sensed/decodable status is resolved per *monitor node* once, from the
  medium's cached :meth:`~repro.phy.medium.Medium.sensors_of`
  frozensets;
* one :class:`MonitorChannel` (busy timeline + own-tx ledger) exists per
  monitor node, shared by every detector observing from that node;
* per-channel *feeds* advance the ARMA traffic estimator and the
  Bianchi competing-terminal estimator once per event and are shared by
  every same-configuration detector on the channel;
* detectors subscribe via :class:`ObservatorySubscription` — a
  read-only, ``ChannelObserver``-compatible view plus a private
  ``ObservedTransmission`` demux of their tagged node.

Equivalence contract: for detectors attached *before* the run starts
(or on a fresh private channel mid-run, as the mobility hand-off does),
same-seed observations, verdicts, audit logs and metrics snapshots are
byte-identical to the per-detector-observer path; the suite in
``tests/test_observatory.py`` pins this.  A detector attached mid-run to
an already-populated shared channel would inherit busy history its own
observer could never have seen — use ``fresh_channel=True`` there.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.core.detector import BackoffMisbehaviorDetector, DetectorConfig
from repro.core.observation import ChannelViewBase, ObservedTransmission
from repro.obs.trace import PID_ENGINE, active_tracer
from repro.sim.listeners import SimulationListener
from repro.util.units import Slots

if TYPE_CHECKING:  # pragma: no cover - import-time only
    from repro.core.arma import ArmaTrafficEstimator
    from repro.core.bianchi import CompetingTerminalEstimator
    from repro.faults.schedule import FaultSchedule
    from repro.mac.constants import MacTiming
    from repro.obs.audit import DecisionAuditLog
    from repro.obs.provenance import ProvenanceLog
    from repro.obs.registry import MetricsRegistry
    from repro.phy.medium import Medium, Transmission

Position = Tuple[float, float]

#: Feed key: (attach epoch, arma alpha, arma interval, exchange slots).
_ArmaKey = Tuple[int, float, int, int]


class _ArmaFeed:
    """One shared ARMA ingest stream on a :class:`MonitorChannel`.

    Mirrors ``BackoffMisbehaviorDetector._advance_arma`` exactly: the
    cursor starts at the first event's start slot (which also fixes the
    subscribed detectors' birth slot) and only slots older than one full
    exchange are ingested.  Every detector whose (arma_alpha,
    arma_interval_slots, exchange_slots, attach epoch) matches shares
    this feed's estimator instance.
    """

    __slots__ = ("arma", "exchange_slots", "cursor", "birth_slot", "detectors")

    def __init__(self, arma: "ArmaTrafficEstimator", exchange_slots: int) -> None:
        self.arma = arma
        self.exchange_slots = exchange_slots
        self.cursor = 0
        self.birth_slot: Optional[int] = None
        self.detectors: List[BackoffMisbehaviorDetector] = []

    def advance(
        self, slot: Slots, transmission: "Transmission", channel: "MonitorChannel"
    ) -> None:
        """Ingest finalized slots up to ``slot - exchange_slots``."""
        if self.birth_slot is None:
            birth = transmission.start_slot
            self.birth_slot = birth
            self.cursor = birth
            for detector in self.detectors:
                detector._birth_slot = birth
                detector._arma_cursor = birth
        target = slot - self.exchange_slots
        if target <= self.cursor:
            return
        idle, busy = channel.idle_busy_counts(self.cursor, target)
        self.arma.ingest(busy, idle + busy)
        self.cursor = target


class MonitorChannel(ChannelViewBase):
    """One monitor node's shared busy timeline and estimator feeds."""

    def __init__(self, monitor_id: int) -> None:
        ChannelViewBase.__init__(self)
        self.monitor_id = monitor_id
        #: id(transmission) of in-flight transmissions sensed at start
        self._sensed_keys: Set[int] = set()
        #: end events ingested since this channel was created; feeds are
        #: keyed by the value at attach time so only detectors that
        #: joined at the same point in the stream share state.
        self.events_ingested = 0
        self._arma_by_key: Dict[_ArmaKey, _ArmaFeed] = {}
        self.arma_feeds: List[_ArmaFeed] = []
        self._terminal_by_epoch: Dict[int, "CompetingTerminalEstimator"] = {}
        self.terminal_feeds: List["CompetingTerminalEstimator"] = []
        #: detectors with occupancy correction enabled (per-tagged EWMA)
        self.occupancy_detectors: List[BackoffMisbehaviorDetector] = []
        #: live subscriptions reading this channel
        self.subscribers = 0


class ObservatorySubscription:
    """A detector's read-only, ``ChannelObserver``-compatible view.

    Queries delegate to the shared :class:`MonitorChannel`; the
    ``observed`` demux (and the decodable flags captured at transmission
    start) are private to this (monitor, tagged) subscription.
    """

    __slots__ = (
        "channel",
        "monitor_id",
        "tagged_id",
        "observed",
        "_observatory",
        "_decodable_keys",
        "_detector",
    )

    def __init__(
        self,
        observatory: "SharedChannelObservatory",
        channel: MonitorChannel,
        monitor_id: int,
        tagged_id: int,
    ) -> None:
        self._observatory = observatory
        self.channel = channel
        self.monitor_id = monitor_id
        self.tagged_id = tagged_id
        #: ObservedTransmission of the tagged node (this sub's demux)
        self.observed: List[ObservedTransmission] = []
        #: id(transmission) of in-flight tagged tx decodable at start
        self._decodable_keys: Set[int] = set()
        self._detector: Optional[BackoffMisbehaviorDetector] = None

    # -- ChannelObserver-compatible query surface --------------------------

    def busy_slots_in(self, start: Slots, end: Slots) -> int:
        return self.channel.busy_slots_in(start, end)

    def busy_intervals_in(self, start: Slots, end: Slots) -> List[Tuple[int, int]]:
        return self.channel.busy_intervals_in(start, end)

    def idle_busy_counts(self, start: Slots, end: Slots) -> Tuple[int, int]:
        return self.channel.idle_busy_counts(start, end)

    def idle_stretches_in(self, start: Slots, end: Slots) -> int:
        return self.channel.idle_stretches_in(start, end)

    def own_tx_slots_in(self, start: Slots, end: Slots) -> int:
        return self.channel.own_tx_slots_in(start, end)

    def traffic_intensity(self, start: Slots, end: Slots) -> float:
        return self.channel.traffic_intensity(start, end)

    @property
    def faults(self) -> "Optional[FaultSchedule]":
        """The observatory's injected fault schedule (None = clean)."""
        return self._observatory.faults

    @property
    def monitor_tx_slots(self) -> int:
        return self.channel.monitor_tx_slots

    @property
    def last_slot(self) -> int:
        return self.channel.last_slot

    @property
    def _busy_starts(self) -> List[int]:
        return self.channel._busy_starts

    @property
    def _busy_ends(self) -> List[int]:
        return self.channel._busy_ends

    def retag(self, new_tagged_id: int, drop_history: bool = True) -> None:
        """Re-point this subscription's demux at another tagged node."""
        self._observatory._retag_subscription(self, new_tagged_id)
        if drop_history:
            self.observed.clear()
            self._decodable_keys.clear()

    def on_positions_updated(
        self, slot: Slots, positions: Dict[int, Position], medium: "Medium"
    ) -> None:
        """No-op: the shared channel needs no per-epoch work."""


class SharedChannelObservatory(SimulationListener):
    """The single engine listener behind every subscribed detector."""

    def __init__(self, faults: "Optional[FaultSchedule]" = None) -> None:
        if faults is None:
            from repro.faults.runtime import active_schedule

            faults = active_schedule()
        #: injected link faults (None = clean channel, the default);
        #: applied per monitor *node*, identically to a private
        #: ChannelObserver on that node (the draws are pure hashes of
        #: (monitor, sender, start slot), so the equivalence contract
        #: holds under faults too).
        self.faults = faults
        #: monitor id -> shared channel (fresh channels live only in the list)
        self._channels: Dict[int, MonitorChannel] = {}
        #: every live channel, shared and fresh, in creation order
        self._channel_list: List[MonitorChannel] = []
        #: tagged id -> subscriptions, in attach order (= audit order)
        self._subs_by_tagged: Dict[int, List[ObservatorySubscription]] = {}
        #: units receiving position epochs (detectors, hand-off managers)
        self._position_units: List[SimulationListener] = []
        #: live detectors in attach order
        self.detectors: List[BackoffMisbehaviorDetector] = []
        #: the process tracer when tracing is on (ingest/demux instants)
        self._tracer = active_tracer()

    # -- subscription management -------------------------------------------

    def attach(
        self,
        monitor_id: int,
        tagged_id: int,
        config: Optional[DetectorConfig] = None,
        timing: "Optional[MacTiming]" = None,
        separation: Optional[float] = None,
        audit: "Optional[DecisionAuditLog]" = None,
        metrics: "Optional[MetricsRegistry]" = None,
        provenance: "Optional[ProvenanceLog]" = None,
        fresh_channel: bool = False,
        position_unit: bool = True,
    ) -> BackoffMisbehaviorDetector:
        """Create a detector subscribed to this observatory.

        ``fresh_channel=True`` gives the detector a private, empty
        channel instead of the monitor node's shared one — required for
        byte-identity when attaching mid-run (a hand-off replacement
        must not inherit busy history its own observer never saw).
        ``position_unit=False`` skips mobility-epoch forwarding (the
        hand-off manager forwards positions itself).
        """
        channel = self._channels.get(monitor_id) if not fresh_channel else None
        if channel is None:
            channel = MonitorChannel(monitor_id)
            self._channel_list.append(channel)
            if not fresh_channel:
                self._channels[monitor_id] = channel
        subscription = ObservatorySubscription(
            self, channel, monitor_id, tagged_id
        )
        detector = BackoffMisbehaviorDetector(
            monitor_id,
            tagged_id,
            config=config,
            timing=timing,
            separation=separation,
            audit=audit,
            metrics=metrics,
            observer=subscription,
            provenance=provenance,
        )
        subscription._detector = detector
        channel.subscribers += 1
        self._share_feeds(channel, detector)
        self._subs_by_tagged.setdefault(tagged_id, []).append(subscription)
        self.detectors.append(detector)
        if position_unit:
            self._position_units.append(detector)
        return detector

    def _share_feeds(
        self, channel: MonitorChannel, detector: BackoffMisbehaviorDetector
    ) -> None:
        """Point the detector at the channel's shared estimator feeds."""
        epoch = channel.events_ingested
        cfg = detector.config
        key: _ArmaKey = (
            epoch,
            cfg.arma_alpha,
            cfg.arma_interval_slots,
            detector.timing.exchange_slots,
        )
        feed = channel._arma_by_key.get(key)
        if feed is None:
            feed = _ArmaFeed(detector.arma, detector.timing.exchange_slots)
            channel._arma_by_key[key] = feed
            channel.arma_feeds.append(feed)
        else:
            detector.arma = feed.arma
        feed.detectors.append(detector)
        terminal = channel._terminal_by_epoch.get(epoch)
        if terminal is None:
            channel._terminal_by_epoch[epoch] = detector.terminal_estimator
            channel.terminal_feeds.append(detector.terminal_estimator)
        else:
            detector.terminal_estimator = terminal
        if cfg.occupancy_correction:
            channel.occupancy_detectors.append(detector)

    def detach(self, detector: BackoffMisbehaviorDetector) -> None:
        """Unsubscribe a detector; its recorded state freezes.

        Drops the demux, feed and position registrations; if the channel
        has no remaining subscribers it stops updating entirely (like a
        retired private observer).
        """
        subscription = detector.observer
        if not isinstance(subscription, ObservatorySubscription):
            raise ValueError("detector is not observatory-subscribed")
        channel = subscription.channel
        subs = self._subs_by_tagged.get(subscription.tagged_id, [])
        if subscription in subs:
            subs.remove(subscription)
        if detector in self.detectors:
            self.detectors.remove(detector)
        if detector in self._position_units:
            self._position_units.remove(detector)
        if detector in channel.occupancy_detectors:
            channel.occupancy_detectors.remove(detector)
        for feed in channel.arma_feeds:
            if detector in feed.detectors:
                feed.detectors.remove(detector)
        channel.subscribers -= 1
        if channel.subscribers <= 0:
            self._channel_list.remove(channel)
            if self._channels.get(channel.monitor_id) is channel:
                del self._channels[channel.monitor_id]

    def _retag_subscription(
        self, subscription: ObservatorySubscription, new_tagged_id: int
    ) -> None:
        """Move a subscription's demux registration to a new tagged node."""
        subs = self._subs_by_tagged.get(subscription.tagged_id, [])
        if subscription in subs:
            subs.remove(subscription)
        subscription.tagged_id = new_tagged_id
        self._subs_by_tagged.setdefault(new_tagged_id, []).append(subscription)

    def add_position_listener(self, unit: SimulationListener) -> None:
        """Forward mobility epochs to ``unit`` (e.g. a MonitorHandoff)."""
        self._position_units.append(unit)

    # -- engine listener callbacks -----------------------------------------

    def on_transmission_start(
        self, slot: Slots, transmission: "Transmission", medium: "Medium"
    ) -> None:
        key = id(transmission)
        sender = transmission.sender
        sensors = medium.sensors_of(sender)
        for channel in self._channel_list:
            monitor = channel.monitor_id
            if monitor == sender or monitor in sensors:
                channel._sensed_keys.add(key)
        subs = self._subs_by_tagged.get(sender)
        if not subs:
            return
        # Decodable iff in decode range, the monitor itself silent, and
        # no other sensed transmission garbling the preamble — resolved
        # once per monitor node, not once per detector.
        flags: Dict[int, bool] = {}
        for subscription in subs:
            monitor = subscription.monitor_id
            decodable = flags.get(monitor)
            if decodable is None:
                decodable = flags[monitor] = medium.clean_decode(
                    sender, monitor
                )
            if decodable:
                subscription._decodable_keys.add(key)

    def on_transmission_end(
        self,
        slot: Slots,
        transmission: "Transmission",
        success: bool,
        medium: "Medium",
    ) -> None:
        key = id(transmission)
        sender = transmission.sender
        sensors = medium.sensors_of(sender)
        start_slot = transmission.start_slot
        end_slot = transmission.end_slot
        collided = not success
        for channel in self._channel_list:
            monitor = channel.monitor_id
            if end_slot > channel.last_slot:
                channel.last_slot = end_slot
            if key in channel._sensed_keys:
                channel._sensed_keys.remove(key)
                channel._add_busy_interval(start_slot, end_slot)
                if sender == monitor:
                    channel._add_own_interval(start_slot, end_slot)
            channel.events_ingested += 1
            if sender != monitor and monitor in sensors:
                # Every sensed attempt feeds the shared collision-
                # probability estimate behind the density inversion.
                for terminal in channel.terminal_feeds:
                    terminal.record_attempt(collided=collided)
                for detector in channel.occupancy_detectors:
                    if sender != detector.tagged_id:
                        detector._record_occupancy(
                            invisible=detector.tagged_id not in sensors
                        )
            for feed in channel.arma_feeds:
                feed.advance(slot, transmission, channel)
        subs = self._subs_by_tagged.get(sender)
        if self._tracer is not None:
            self._tracer.instant(
                "observatory.ingest",
                slot=slot,
                pid=PID_ENGINE,
                category="observatory",
                args={
                    "sender": sender,
                    "channels": len(self._channel_list),
                    "subscriptions": len(subs) if subs else 0,
                },
            )
        if not subs:
            return
        frame = transmission.frame
        receiver = transmission.receiver
        #: per-monitor-node fault resolution memo: (rts, impairment)
        delivered: Dict[int, Tuple[object, Optional[str]]] = {}
        for subscription in subs:
            decodable = key in subscription._decodable_keys
            if decodable:
                subscription._decodable_keys.remove(key)
            rts = frame if decodable else None
            impairment = None
            if decodable and self.faults is not None:
                monitor = subscription.monitor_id
                outcome = delivered.get(monitor)
                if outcome is None:
                    outcome = delivered[monitor] = self.faults.deliver_rts(
                        monitor, sender, start_slot, frame
                    )
                rts, impairment = outcome
            subscription.observed.append(
                ObservedTransmission(
                    start_slot=start_slot,
                    end_slot=end_slot,
                    rts=rts,
                    success=success,
                    receiver=receiver,
                    impairment=impairment,
                )
            )
        # Run the sample pipelines only after every demux appended, in
        # attach order (which fixes the audit-record order exactly as
        # the per-listener dispatch did).
        for subscription in subs:
            detector = subscription._detector
            if detector is not None:
                detector._process_new_observations(medium)

    def on_positions_updated(
        self, slot: Slots, positions: Dict[int, Position], medium: "Medium"
    ) -> None:
        for unit in self._position_units:
            unit.on_positions_updated(slot, positions, medium)
