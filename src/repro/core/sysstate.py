"""The analytical system-state model: paper equations 1-5.

A monitor R that observed I idle and B busy slots estimates the number
of slots its tagged neighbor S could have counted down:

    Iest = p(I|I) * I + p(I|B) * B          (eq. 1)
    Best = N - Iest                          (eq. 2)

with the conditional channel-view probabilities

    p(B|I) = [A2/(A1+A2)] * [1 - (1-rho)^(n+k)]                      (eq. 3)
    p(I|B) = [A4/(A4+A5)] *
             ([A1/(A1+A2)] * (1-(1-rho)^(k+n)) + (1-rho)^(k+n))      (eq. 4)
    p(I|I) = 1 - p(B|I)                                              (eq. 5)

where rho is the traffic intensity, A1..A5 the Figure-1 region areas,
n the node count in A2 and k the count in A1.  The derivation assumes
(i) at most one transmitter in (A1 u A2) at a time, (ii) independent
M/M/1-style queues with empty-queue probability (1 - rho), and (iii) no
effects from beyond A1..A5 — the approximations the paper validates by
simulation in Figures 3-4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.geometry.regions import RegionModel
from repro.util.validation import check_non_negative, check_probability


@dataclass(frozen=True)
class SystemStateProbabilities:
    """The conditional probabilities of eqs. 3-5 for one system state."""

    p_busy_given_idle: float    # p(S busy | R idle)   — eq. 3
    p_idle_given_busy: float    # p(S idle | R busy)   — eq. 4
    p_idle_given_idle: float    # p(S idle | R idle)   — eq. 5

    def __post_init__(self) -> None:
        check_probability(self.p_busy_given_idle, "p_busy_given_idle")
        check_probability(self.p_idle_given_busy, "p_idle_given_busy")
        check_probability(self.p_idle_given_idle, "p_idle_given_idle")


class SystemStateEstimator:
    """Evaluates eqs. 1-5 for a given region geometry."""

    def __init__(self, region_model: Optional[RegionModel] = None) -> None:
        self.region_model = (
            region_model if region_model is not None else RegionModel()
        )

    def probabilities(
        self, rho: float, n: float, k: float, p_ib_scale: float = 1.0
    ) -> SystemStateProbabilities:
        """The :class:`SystemStateProbabilities` for traffic intensity
        ``rho`` with ``n`` nodes in A2 and ``k`` nodes in A1.

        ``n`` and ``k`` may be expected (non-integer) counts from the
        density estimator.  ``p_ib_scale`` multiplies the eq.-4 result:
        the detector's occupancy correction passes the ratio of the
        *measured* invisible-transmitter fraction to the uniform-density
        baseline, compensating for non-uniform neighborhoods (the
        uniformity assumption the paper flags as a limitation).
        """
        check_probability(rho, "rho")
        check_non_negative(n, "n")
        check_non_negative(k, "k")
        check_non_negative(p_ib_scale, "p_ib_scale")
        regions = self.region_model.regions
        someone_has_traffic = 1.0 - (1.0 - rho) ** (n + k)
        all_queues_empty = (1.0 - rho) ** (n + k)

        p_b_i = regions.left_exclusive_fraction * someone_has_traffic
        p_i_b = p_ib_scale * regions.right_exclusive_fraction * (
            regions.left_hidden_fraction * someone_has_traffic + all_queues_empty
        )
        return SystemStateProbabilities(
            p_busy_given_idle=min(max(p_b_i, 0.0), 1.0),
            p_idle_given_busy=min(max(p_i_b, 0.0), 1.0),
            p_idle_given_idle=min(max(1.0 - p_b_i, 0.0), 1.0),
        )

    def estimate_sender_slots(
        self,
        idle: int,
        busy: int,
        rho: float,
        n: float,
        k: float,
        p_ib_scale: float = 1.0,
    ) -> Tuple[float, float]:
        """Eqs. 1-2: (Iest, Best) for observed (I, B) at the monitor."""
        check_non_negative(idle, "idle")
        check_non_negative(busy, "busy")
        probs = self.probabilities(rho, n, k, p_ib_scale=p_ib_scale)
        i_est = probs.p_idle_given_idle * idle + probs.p_idle_given_busy * busy
        total = idle + busy
        i_est = min(max(i_est, 0.0), float(total))
        return i_est, total - i_est
