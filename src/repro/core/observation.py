"""What a monitoring node can actually see of the channel.

The monitor's raw material is (a) its own per-slot busy/idle view of the
medium and (b) the transmissions of the tagged node it can sense, with
the modified-RTS fields of those it can also *decode*.  Everything the
detector does — ARMA traffic intensity, the Iest/Best estimates, the
rank-sum samples — is computed from this observer, never from simulator
ground truth the node could not know.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.sim.listeners import SimulationListener

if TYPE_CHECKING:  # pragma: no cover - import-time only
    from repro.mac.frames import RtsFrame
    from repro.phy.medium import Medium, Transmission


@dataclass
class ObservedTransmission:
    """One transmission of the tagged node, as seen by the monitor."""

    start_slot: int
    end_slot: int
    rts: "Optional[RtsFrame]"    # the decoded RtsFrame, or None if not decodable
    success: bool
    receiver: int


def joint_state_counts(
    observer_r: "ChannelObserver",
    observer_s: "ChannelObserver",
    start: int,
    end: int,
) -> Dict[str, int]:
    """Slot counts of the joint (R state, S state) channel view.

    Returns a dict with keys ``"II"``, ``"IB"``, ``"BI"``, ``"BB"`` —
    first letter R's state, second S's — over ``[start, end)``.  This is
    the ground-truth measurement behind the paper's Figures 3-4: e.g.
    p(S busy | R idle) = IB / (II + IB).
    """
    if end <= start:
        return {"II": 0, "IB": 0, "BI": 0, "BB": 0}

    def edges(observer: "ChannelObserver") -> List[Tuple[int, int]]:
        points = []
        for lo, hi in zip(observer._busy_starts, observer._busy_ends):
            lo, hi = max(lo, start), min(hi, end)
            if hi > lo:
                points.append((lo, hi))
        return points

    r_busy = edges(observer_r)
    s_busy = edges(observer_s)
    boundaries = sorted(
        {start, end}
        | {p for lo, hi in r_busy for p in (lo, hi)}
        | {p for lo, hi in s_busy for p in (lo, hi)}
    )

    def busy_at(intervals: List[Tuple[int, int]], t: int) -> bool:
        # Intervals are sorted and disjoint; binary search the candidate.
        import bisect as _bisect

        i = _bisect.bisect_right(intervals, (t, float("inf"))) - 1
        return i >= 0 and intervals[i][0] <= t < intervals[i][1]

    counts = {"II": 0, "IB": 0, "BI": 0, "BB": 0}
    for lo, hi in zip(boundaries, boundaries[1:]):
        if hi <= lo:
            continue
        key = ("B" if busy_at(r_busy, lo) else "I") + (
            "B" if busy_at(s_busy, lo) else "I"
        )
        counts[key] += hi - lo
    return counts


class ChannelObserver(SimulationListener):
    """Records one monitor's channel view and its view of a tagged node.

    Parameters
    ----------
    monitor_id:
        The observing node.
    tagged_id:
        The neighbor being monitored (the paper's "tagged node").  May
        be changed later with :meth:`retag` (used under mobility when
        the monitor hands off).
    """

    def __init__(self, monitor_id: int, tagged_id: int) -> None:
        self.monitor_id = monitor_id
        self.tagged_id = tagged_id
        # Busy intervals [start, end) at the monitor, kept sorted by
        # start and non-overlapping (merged on insert).
        self._busy_starts: List[int] = []
        self._busy_ends: List[int] = []
        # In-flight transmissions we flagged as sensed at their start.
        self._sensed_active: Dict[int, bool] = {}
        self._decodable_active: Dict[int, bool] = {}
        #: ObservedTransmission of the tagged node
        self.observed: List[ObservedTransmission] = []
        self.monitor_tx_slots = 0    # air time of the monitor's own frames
        #: the monitor's own (start, end) tx periods
        self._own_intervals: List[Tuple[int, int]] = []
        self.last_slot = 0

    # -- listener callbacks ----------------------------------------------------

    def on_transmission_start(
        self, slot: int, transmission: "Transmission", medium: "Medium"
    ) -> None:
        key = id(transmission)
        sender = transmission.sender
        if sender == self.monitor_id:
            self._sensed_active[key] = True
        elif medium.senses(sender, self.monitor_id):
            self._sensed_active[key] = True
        if sender == self.tagged_id:
            # Decodable iff in decode range, the monitor itself silent,
            # and no other sensed transmission garbling the preamble.
            decodable = (
                medium.can_decode(sender, self.monitor_id)
                and not medium.is_transmitting(self.monitor_id)
                and not medium.interferers_at(self.monitor_id, exclude_sender=sender)
            )
            self._decodable_active[key] = decodable

    def on_transmission_end(
        self,
        slot: int,
        transmission: "Transmission",
        success: bool,
        medium: "Medium",
    ) -> None:
        key = id(transmission)
        self.last_slot = max(self.last_slot, transmission.end_slot)
        if self._sensed_active.pop(key, False):
            self._add_busy_interval(transmission.start_slot, transmission.end_slot)
            if transmission.sender == self.monitor_id:
                self.monitor_tx_slots += transmission.duration
                self._own_intervals.append(
                    (transmission.start_slot, transmission.end_slot)
                )
        if transmission.sender == self.tagged_id:
            decodable = self._decodable_active.pop(key, False)
            self.observed.append(
                ObservedTransmission(
                    start_slot=transmission.start_slot,
                    end_slot=transmission.end_slot,
                    rts=transmission.frame if decodable else None,
                    success=success,
                    receiver=transmission.receiver,
                )
            )

    def retag(self, new_tagged_id: int, drop_history: bool = True) -> None:
        """Switch the tagged node (monitor hand-off under mobility)."""
        self.tagged_id = new_tagged_id
        if drop_history:
            self.observed.clear()
            self._decodable_active.clear()

    # -- busy/idle accounting ----------------------------------------------------

    def _add_busy_interval(self, start: int, end: int) -> None:
        """Insert [start, end) and merge with overlapping neighbors."""
        if end <= start:
            return
        i = bisect.bisect_left(self._busy_starts, start)
        # Merge backwards into a predecessor that overlaps us.
        if i > 0 and self._busy_ends[i - 1] >= start:
            i -= 1
            start = self._busy_starts[i]
            end = max(end, self._busy_ends[i])
            del self._busy_starts[i], self._busy_ends[i]
        # Merge forward over any successors we swallow.
        while i < len(self._busy_starts) and self._busy_starts[i] <= end:
            end = max(end, self._busy_ends[i])
            del self._busy_starts[i], self._busy_ends[i]
        self._busy_starts.insert(i, start)
        self._busy_ends.insert(i, end)

    def busy_slots_in(self, start: int, end: int) -> int:
        """Number of busy slots the monitor saw in [start, end)."""
        if end <= start:
            return 0
        total = 0
        i = bisect.bisect_right(self._busy_starts, start) - 1
        i = max(i, 0)
        while i < len(self._busy_starts) and self._busy_starts[i] < end:
            lo = max(self._busy_starts[i], start)
            hi = min(self._busy_ends[i], end)
            if hi > lo:
                total += hi - lo
            i += 1
        return total

    def idle_busy_counts(self, start: int, end: int) -> Tuple[int, int]:
        """(idle, busy) slot counts at the monitor over [start, end)."""
        busy = self.busy_slots_in(start, end)
        return (end - start) - busy, busy

    def idle_stretches_in(self, start: int, end: int) -> int:
        """Number of maximal idle stretches within [start, end).

        Each stretch costs the sender a DIFS before it may resume its
        countdown, so the detector subtracts one DIFS per stretch from
        the estimated countdown budget.
        """
        if end <= start:
            return 0
        # Collect busy sub-intervals clipped to [start, end).
        clipped: List[Tuple[int, int]] = []
        i = bisect.bisect_right(self._busy_starts, start) - 1
        i = max(i, 0)
        while i < len(self._busy_starts) and self._busy_starts[i] < end:
            lo = max(self._busy_starts[i], start)
            hi = min(self._busy_ends[i], end)
            if hi > lo:
                clipped.append((lo, hi))
            i += 1
        stretches = 0
        cursor = start
        for lo, hi in clipped:
            if lo > cursor:
                stretches += 1
            cursor = max(cursor, hi)
        if cursor < end:
            stretches += 1
        return stretches

    def own_tx_slots_in(self, start: int, end: int) -> int:
        """Slots in [start, end) spent transmitting by the monitor itself.

        The tagged neighbor certainly freezes during these (it senses
        the monitor), so the deterministic countdown bound excludes
        them.  Own transmissions never overlap each other, so a linear
        clip suffices.
        """
        total = 0
        for lo, hi in self._own_intervals:
            lo, hi = max(lo, start), min(hi, end)
            if hi > lo:
                total += hi - lo
        return total

    def traffic_intensity(self, start: int, end: int) -> float:
        """Fraction of busy slots over [start, end) (the paper's rho)."""
        if end <= start:
            return 0.0
        _idle, busy = self.idle_busy_counts(start, end)
        return busy / (end - start)
