"""What a monitoring node can actually see of the channel.

The monitor's raw material is (a) its own per-slot busy/idle view of the
medium and (b) the transmissions of the tagged node it can sense, with
the modified-RTS fields of those it can also *decode*.  Everything the
detector does — ARMA traffic intensity, the Iest/Best estimates, the
rank-sum samples — is computed from this observer, never from simulator
ground truth the node could not know.

Two implementations share the interval bookkeeping in
:class:`ChannelViewBase`:

* :class:`ChannelObserver` — the standalone engine listener one detector
  owns privately (the original path, still used for baselines and
  single-detector tests);
* :class:`repro.core.observatory.MonitorChannel` — the per-monitor-node
  timeline a :class:`~repro.core.observatory.SharedChannelObservatory`
  maintains once and shares across every detector observing from that
  node.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.sim.listeners import SimulationListener
from repro.util.units import Slots

if TYPE_CHECKING:  # pragma: no cover - import-time only
    from repro.faults.schedule import FaultSchedule
    from repro.mac.frames import RtsFrame
    from repro.phy.medium import Medium, Transmission


@dataclass
class ObservedTransmission:
    """One transmission of the tagged node, as seen by the monitor.

    ``impairment`` names the injected link fault that cost the monitor
    the announcement (``rts`` is then ``None``); it stays ``None`` both
    for clean decodes and for physics-side decode failures (out of
    range, monitor transmitting, garbled preamble) — the detector
    labels those ``"undecodable"`` when it quarantines them.
    """

    start_slot: Slots
    end_slot: Slots
    rts: "Optional[RtsFrame]"    # the decoded RtsFrame, or None if not decodable
    success: bool
    receiver: int
    impairment: Optional[str] = None


# -- stable JSONL codec ---------------------------------------------------
#
# The streaming service (repro.serve) ships ObservedTransmission records
# across process boundaries as JSON objects; these functions define the
# wire schema.  Two invariants matter for byte-identity of replayed
# verdict streams:
#
# * slot fields stay python ints end to end — a slot that came back as
#   a float would poison every downstream Slots computation;
# * ``seq_off`` is the detector-side UNWRAPPED offset, not the 13-bit
#   on-air field: the verifiable PRS is a function of the unwrapped
#   value, so serializing the wrapped one would silently change every
#   dictated back-off once a sender passes 8192 frames.


def _codec_int(value: object, field: str) -> int:
    """``value`` as an exact int (bools and floats are rejected)."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(
            f"field {field!r} must be an integer, got {value!r}"
        )
    return value


def _codec_bool(value: object, field: str) -> bool:
    if not isinstance(value, bool):
        raise ValueError(f"field {field!r} must be a boolean, got {value!r}")
    return value


def rts_to_json(frame: "RtsFrame") -> Dict[str, object]:
    """The wire dict of one modified-RTS announcement."""
    return {
        "sender": frame.sender,
        "receiver": frame.receiver,
        "seq_off": frame.seq_off,
        "attempt": frame.attempt,
        "digest": frame.digest.hex(),
    }


def rts_from_json(data: object) -> "RtsFrame":
    """Parse :func:`rts_to_json` output; raises ValueError on anything off."""
    from repro.mac.frames import RtsFrame

    if not isinstance(data, dict):
        raise ValueError(f"rts must be an object, got {data!r}")
    unknown = sorted(set(data) - {"sender", "receiver", "seq_off", "attempt", "digest"})
    if unknown:
        raise ValueError(f"unknown rts keys: {unknown}")
    digest = data.get("digest")
    if not isinstance(digest, str):
        raise ValueError(f"field 'digest' must be a hex string, got {digest!r}")
    try:
        digest_bytes = bytes.fromhex(digest)
    except ValueError as exc:
        raise ValueError(f"field 'digest' is not valid hex: {digest!r}") from exc
    return RtsFrame(
        sender=_codec_int(data.get("sender"), "sender"),
        receiver=_codec_int(data.get("receiver"), "receiver"),
        seq_off=_codec_int(data.get("seq_off"), "seq_off"),
        attempt=_codec_int(data.get("attempt"), "attempt"),
        digest=digest_bytes,
    )


#: The exact key set of a serialized ObservedTransmission.
OBSERVED_FIELDS: Tuple[str, ...] = (
    "start_slot",
    "end_slot",
    "rts",
    "success",
    "receiver",
    "impairment",
)


def observed_to_json(observed: ObservedTransmission) -> Dict[str, object]:
    """The wire dict of one observed transmission (sorted-key stable)."""
    return {
        "start_slot": observed.start_slot,
        "end_slot": observed.end_slot,
        "rts": None if observed.rts is None else rts_to_json(observed.rts),
        "success": observed.success,
        "receiver": observed.receiver,
        "impairment": observed.impairment,
    }


def observed_from_json(data: object) -> ObservedTransmission:
    """Parse :func:`observed_to_json` output; ValueError on anything off."""
    if not isinstance(data, dict):
        raise ValueError(f"observed record must be an object, got {data!r}")
    unknown = sorted(set(data) - set(OBSERVED_FIELDS))
    if unknown:
        raise ValueError(f"unknown observed record keys: {unknown}")
    impairment = data.get("impairment")
    if impairment is not None and not isinstance(impairment, str):
        raise ValueError(
            f"field 'impairment' must be a string or null, got {impairment!r}"
        )
    rts_data = data.get("rts")
    return ObservedTransmission(
        start_slot=_codec_int(data.get("start_slot"), "start_slot"),
        end_slot=_codec_int(data.get("end_slot"), "end_slot"),
        rts=None if rts_data is None else rts_from_json(rts_data),
        success=_codec_bool(data.get("success"), "success"),
        receiver=_codec_int(data.get("receiver"), "receiver"),
        impairment=impairment,
    )


def joint_state_counts(
    observer_r: "ChannelViewBase",
    observer_s: "ChannelViewBase",
    start: Slots,
    end: Slots,
) -> Dict[str, int]:
    """Slot counts of the joint (R state, S state) channel view.

    Returns a dict with keys ``"II"``, ``"IB"``, ``"BI"``, ``"BB"`` —
    first letter R's state, second S's — over ``[start, end)``.  This is
    the ground-truth measurement behind the paper's Figures 3-4: e.g.
    p(S busy | R idle) = IB / (II + IB).

    Accepts anything exposing ``busy_intervals_in`` (a
    :class:`ChannelObserver`, an observatory channel, or a subscription
    view).  Implemented as one merged sweep over both clipped interval
    lists: O(R + S) after the clip, no per-boundary binary searches.
    """
    counts = {"II": 0, "IB": 0, "BI": 0, "BB": 0}
    if end <= start:
        return counts
    r_busy = observer_r.busy_intervals_in(start, end)
    s_busy = observer_s.busy_intervals_in(start, end)
    n_r, n_s = len(r_busy), len(s_busy)
    ri = si = 0
    cursor = start
    while cursor < end:
        # Drop intervals that ended at or before the cursor; what is
        # left determines each observer's state on the next segment.
        while ri < n_r and r_busy[ri][1] <= cursor:
            ri += 1
        while si < n_s and s_busy[si][1] <= cursor:
            si += 1
        r_state = ri < n_r and r_busy[ri][0] <= cursor
        s_state = si < n_s and s_busy[si][0] <= cursor
        # The state holds until the nearest start/end among the current
        # intervals (or the window end); both lists are sorted, so only
        # the interval at each pointer can bound the segment.
        boundary = end
        if ri < n_r:
            edge = r_busy[ri][1] if r_state else r_busy[ri][0]
            if edge < boundary:
                boundary = edge
        if si < n_s:
            edge = s_busy[si][1] if s_state else s_busy[si][0]
            if edge < boundary:
                boundary = edge
        key = ("B" if r_state else "I") + ("B" if s_state else "I")
        counts[key] += boundary - cursor
        cursor = boundary
    return counts


class ChannelViewBase:
    """Busy-interval timeline + own-transmission ledger of one monitor.

    Holds only the interval bookkeeping and the queries the detector
    runs against it; no listener plumbing, no tagged-node state.  Busy
    intervals are kept sorted by start and non-overlapping (merged on
    insert); the monitor's own transmissions are serial, so the own-tx
    ledger is sorted and disjoint by construction.
    """

    def __init__(self) -> None:
        self._busy_starts: List[int] = []
        self._busy_ends: List[int] = []
        self._own_starts: List[int] = []
        self._own_ends: List[int] = []
        self.monitor_tx_slots = 0    # air time of the monitor's own frames
        self.last_slot = 0

    # -- busy/idle accounting ----------------------------------------------------

    def _add_busy_interval(self, start: Slots, end: Slots) -> None:
        """Insert [start, end) and merge with overlapping neighbors."""
        if end <= start:
            return
        i = bisect.bisect_left(self._busy_starts, start)
        # Merge backwards into a predecessor that overlaps us.
        if i > 0 and self._busy_ends[i - 1] >= start:
            i -= 1
            start = self._busy_starts[i]
            end = max(end, self._busy_ends[i])
            del self._busy_starts[i], self._busy_ends[i]
        # Merge forward over any successors we swallow.
        while i < len(self._busy_starts) and self._busy_starts[i] <= end:
            end = max(end, self._busy_ends[i])
            del self._busy_starts[i], self._busy_ends[i]
        self._busy_starts.insert(i, start)
        self._busy_ends.insert(i, end)

    def _add_own_interval(self, start: Slots, end: Slots) -> None:
        """Record one of the monitor's own tx periods (arrive in order)."""
        self.monitor_tx_slots += end - start
        self._own_starts.append(start)
        self._own_ends.append(end)

    def busy_slots_in(self, start: Slots, end: Slots) -> Slots:
        """Number of busy slots the monitor saw in [start, end)."""
        if end <= start:
            return 0
        total = 0
        i = bisect.bisect_right(self._busy_starts, start) - 1
        i = max(i, 0)
        while i < len(self._busy_starts) and self._busy_starts[i] < end:
            lo = max(self._busy_starts[i], start)
            hi = min(self._busy_ends[i], end)
            if hi > lo:
                total += hi - lo
            i += 1
        return total

    def busy_intervals_in(self, start: Slots, end: Slots) -> List[Tuple[int, int]]:
        """Busy sub-intervals clipped to [start, end), sorted, disjoint."""
        clipped: List[Tuple[int, int]] = []
        if end <= start:
            return clipped
        starts, ends = self._busy_starts, self._busy_ends
        i = bisect.bisect_right(starts, start) - 1
        i = max(i, 0)
        n = len(starts)
        while i < n and starts[i] < end:
            lo = max(starts[i], start)
            hi = min(ends[i], end)
            if hi > lo:
                clipped.append((lo, hi))
            i += 1
        return clipped

    def idle_busy_counts(self, start: Slots, end: Slots) -> Tuple[int, int]:
        """(idle, busy) slot counts at the monitor over [start, end)."""
        busy = self.busy_slots_in(start, end)
        return (end - start) - busy, busy

    def busy_after(self, slot: Slots) -> bool:
        """True if any busy interval extends past ``slot``."""
        ends = self._busy_ends
        return bool(ends) and ends[-1] > slot

    def idle_stretches_in(self, start: Slots, end: Slots) -> int:
        """Number of maximal idle stretches within [start, end).

        Each stretch costs the sender a DIFS before it may resume its
        countdown, so the detector subtracts one DIFS per stretch from
        the estimated countdown budget.
        """
        if end <= start:
            return 0
        stretches = 0
        cursor = start
        for lo, hi in self.busy_intervals_in(start, end):
            if lo > cursor:
                stretches += 1
            cursor = max(cursor, hi)
        if cursor < end:
            stretches += 1
        return stretches

    def own_tx_slots_in(self, start: Slots, end: Slots) -> Slots:
        """Slots in [start, end) spent transmitting by the monitor itself.

        The tagged neighbor certainly freezes during these (it senses
        the monitor), so the deterministic countdown bound excludes
        them.  The ledger is sorted and disjoint, so clip with bisect
        like :meth:`busy_slots_in` instead of scanning from the origin.
        """
        if end <= start:
            return 0
        total = 0
        starts, ends = self._own_starts, self._own_ends
        i = bisect.bisect_right(starts, start) - 1
        i = max(i, 0)
        n = len(starts)
        while i < n and starts[i] < end:
            lo = max(starts[i], start)
            hi = min(ends[i], end)
            if hi > lo:
                total += hi - lo
            i += 1
        return total

    def traffic_intensity(self, start: Slots, end: Slots) -> float:
        """Fraction of busy slots over [start, end) (the paper's rho)."""
        if end <= start:
            return 0.0
        _idle, busy = self.idle_busy_counts(start, end)
        return busy / (end - start)

    def prune_before(self, horizon: Slots) -> int:
        """Drop timeline intervals that end at or before ``horizon``.

        The long-running streaming service calls this with the oldest
        slot any live query can still reach (ARMA cursors, pending
        sample anchors); intervals straddling the horizon are kept
        whole, so every query over ``[horizon, ∞)`` is unchanged.
        Returns the number of intervals dropped.
        """
        dropped = 0
        cut = bisect.bisect_right(self._busy_ends, horizon)
        if cut:
            del self._busy_starts[:cut], self._busy_ends[:cut]
            dropped += cut
        cut = bisect.bisect_right(self._own_ends, horizon)
        if cut:
            del self._own_starts[:cut], self._own_ends[:cut]
            dropped += cut
        return dropped


class ChannelObserver(ChannelViewBase, SimulationListener):
    """Records one monitor's channel view and its view of a tagged node.

    Parameters
    ----------
    monitor_id:
        The observing node.
    tagged_id:
        The neighbor being monitored (the paper's "tagged node").  May
        be changed later with :meth:`retag` (used under mobility when
        the monitor hands off).
    """

    def __init__(
        self,
        monitor_id: int,
        tagged_id: int,
        faults: "Optional[FaultSchedule]" = None,
    ) -> None:
        ChannelViewBase.__init__(self)
        self.monitor_id = monitor_id
        self.tagged_id = tagged_id
        if faults is None:
            from repro.faults.runtime import active_schedule

            faults = active_schedule()
        #: injected link faults (None = clean channel, the default)
        self.faults = faults
        # In-flight transmissions we flagged as sensed at their start.
        self._sensed_active: Dict[int, bool] = {}
        self._decodable_active: Dict[int, bool] = {}
        #: ObservedTransmission of the tagged node
        self.observed: List[ObservedTransmission] = []

    # -- listener callbacks ----------------------------------------------------

    def on_transmission_start(
        self, slot: Slots, transmission: "Transmission", medium: "Medium"
    ) -> None:
        key = id(transmission)
        sender = transmission.sender
        if sender == self.monitor_id:
            self._sensed_active[key] = True
        elif medium.senses(sender, self.monitor_id):
            self._sensed_active[key] = True
        if sender == self.tagged_id:
            # Decodable iff in decode range, the monitor itself silent,
            # and no other sensed transmission garbling the preamble.
            self._decodable_active[key] = medium.clean_decode(
                sender, self.monitor_id
            )

    def on_transmission_end(
        self,
        slot: Slots,
        transmission: "Transmission",
        success: bool,
        medium: "Medium",
    ) -> None:
        key = id(transmission)
        self.last_slot = max(self.last_slot, transmission.end_slot)
        if self._sensed_active.pop(key, False):
            self._add_busy_interval(transmission.start_slot, transmission.end_slot)
            if transmission.sender == self.monitor_id:
                self._add_own_interval(
                    transmission.start_slot, transmission.end_slot
                )
        if transmission.sender == self.tagged_id:
            decodable = self._decodable_active.pop(key, False)
            rts = transmission.frame if decodable else None
            impairment = None
            if decodable and self.faults is not None:
                rts, impairment = self.faults.deliver_rts(
                    self.monitor_id,
                    transmission.sender,
                    transmission.start_slot,
                    rts,
                )
            self.observed.append(
                ObservedTransmission(
                    start_slot=transmission.start_slot,
                    end_slot=transmission.end_slot,
                    rts=rts,
                    success=success,
                    receiver=transmission.receiver,
                    impairment=impairment,
                )
            )

    def retag(self, new_tagged_id: int, drop_history: bool = True) -> None:
        """Switch the tagged node (monitor hand-off under mobility)."""
        self.tagged_id = new_tagged_id
        if drop_history:
            self.observed.clear()
            self._decodable_active.clear()
