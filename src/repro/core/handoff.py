"""Monitor hand-off under mobility.

The paper's mobile experiments "choose a neighbor of the malicious node
to monitor its activity.  If this neighbor moves out of range, another
neighbor is randomly chosen."  :class:`MonitorHandoff` implements that
protocol: it owns the current :class:`BackoffMisbehaviorDetector`, and
at every mobility epoch checks whether the monitor can still decode the
tagged node; if not, it promotes a random current neighbor to monitor
and starts a fresh detector (statistical history does not transfer —
the new monitor has its own channel view).

Verdicts and deterministic violations from all monitors are accumulated
so experiment harnesses see one continuous stream.

With an ``observatory`` the hand-off manager works at the subscription
layer instead of the listener layer: the engine keeps one
:class:`~repro.core.observatory.SharedChannelObservatory` listener
throughout, and a hand-off detaches the old detector's subscription and
attaches the replacement's — no listener churn.  The replacement always
gets a *fresh private channel* (``fresh_channel=True``): a brand-new
monitor's observer starts empty, and inheriting the shared channel's
busy history would diverge from what that node could have recorded
(statistical history does not transfer, per the paper).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.detector import BackoffMisbehaviorDetector, DetectorConfig
from repro.core.deterministic import DeterministicViolation
from repro.core.records import BackoffObservation, Verdict
from repro.geometry.vectors import distance
from repro.sim.listeners import SimulationListener
from repro.util.units import Slots

if TYPE_CHECKING:  # pragma: no cover - import-time only
    from repro.core.observatory import SharedChannelObservatory
    from repro.mac.constants import MacTiming
    from repro.obs.audit import DecisionAuditLog
    from repro.obs.provenance import ProvenanceLog
    from repro.phy.medium import Medium, Transmission
    from repro.util.rng import RngStream


class MonitorHandoff(SimulationListener):
    """Keeps *some* neighbor monitoring the tagged node at all times."""

    def __init__(
        self,
        tagged_id: int,
        initial_monitor: int,
        config: Optional[DetectorConfig] = None,
        timing: "Optional[MacTiming]" = None,
        rng: "Optional[RngStream]" = None,
        separation: Optional[float] = None,
        audit: "Optional[DecisionAuditLog]" = None,
        observatory: "Optional[SharedChannelObservatory]" = None,
        provenance: "Optional[ProvenanceLog]" = None,
    ) -> None:
        if rng is None:
            raise ValueError("MonitorHandoff requires an RngStream")
        self.tagged_id = tagged_id
        self.config = config if config is not None else DetectorConfig()
        self.timing = timing
        self._rng = rng
        #: one audit log spans every monitor of this tagged node
        self.audit = audit
        #: one provenance log spans every monitor of this tagged node
        self.provenance = provenance
        #: shared observation plane, or None for the listener path
        self.observatory = observatory
        if observatory is not None:
            self.detector = observatory.attach(
                initial_monitor,
                tagged_id,
                config=self.config,
                timing=timing,
                separation=separation,
                audit=audit,
                provenance=provenance,
                position_unit=False,
            )
            observatory.add_position_listener(self)
        else:
            self.detector = BackoffMisbehaviorDetector(
                initial_monitor,
                tagged_id,
                config=self.config,
                timing=timing,
                separation=separation,
                audit=audit,
                provenance=provenance,
            )
        self.handoffs = 0
        self.retired_detectors: List[BackoffMisbehaviorDetector] = []

    # -- aggregated views ----------------------------------------------------

    @property
    def monitor_id(self) -> int:
        return self.detector.monitor_id

    @property
    def observations(self) -> List[BackoffObservation]:
        """Samples across all monitors, in order."""
        out: List[BackoffObservation] = []
        for det in self.retired_detectors:
            out.extend(det.observations)
        out.extend(self.detector.observations)
        return out

    @property
    def observation_count(self) -> int:
        """Cheap total sample count (for stop conditions)."""
        return len(self.detector.observations) + sum(
            len(det.observations) for det in self.retired_detectors
        )

    @property
    def verdicts(self) -> List[Verdict]:
        out: List[Verdict] = []
        for det in self.retired_detectors:
            out.extend(det.verdicts)
        out.extend(self.detector.verdicts)
        return out

    @property
    def violations(self) -> List[DeterministicViolation]:
        out: List[DeterministicViolation] = []
        for det in self.retired_detectors:
            out.extend(det.violations)
        out.extend(self.detector.violations)
        return out

    @property
    def flagged_malicious(self) -> bool:
        return any(v.is_malicious for v in self.verdicts)

    # -- listener plumbing ------------------------------------------------------

    def on_transmission_start(
        self, slot: Slots, transmission: "Transmission", medium: "Medium"
    ) -> None:
        # Observatory mode: the subscription receives events directly;
        # this forwarding path only exists for the listener mode (the
        # subscribed detector itself rejects listener calls).
        self.detector.on_transmission_start(slot, transmission, medium)

    def on_transmission_end(
        self,
        slot: Slots,
        transmission: "Transmission",
        success: bool,
        medium: "Medium",
    ) -> None:
        self.detector.on_transmission_end(slot, transmission, success, medium)

    def on_positions_updated(
        self,
        slot: Slots,
        positions: Dict[int, Tuple[float, float]],
        medium: "Medium",
    ) -> None:
        if self.tagged_id in medium.neighbors(self.monitor_id):
            self.detector.on_positions_updated(slot, positions, medium)
            return
        replacement = self._pick_replacement(medium)
        if replacement is None:
            # Tagged node currently has no neighbors at all; keep the old
            # monitor (it will produce no samples until someone is close).
            self.detector.on_positions_updated(slot, positions, medium)
            return
        self._handoff(replacement, positions, medium, slot)

    def _pick_replacement(self, medium: "Medium") -> Optional[int]:
        candidates = sorted(
            n for n in medium.neighbors(self.tagged_id) if n != self.tagged_id
        )
        return self._rng.choice(candidates) if candidates else None

    def _handoff(
        self,
        new_monitor: int,
        positions: Dict[int, Tuple[float, float]],
        medium: "Medium",
        slot: Slots,
    ) -> None:
        self.retired_detectors.append(self.detector)
        self.handoffs += 1
        separation = None
        mon = positions.get(new_monitor)
        tag = positions.get(self.tagged_id)
        if mon is not None and tag is not None:
            separation = max(distance(mon, tag), 1.0)
        if self.observatory is not None:
            self.observatory.detach(self.detector)
            self.detector = self.observatory.attach(
                new_monitor,
                self.tagged_id,
                config=self.config,
                timing=self.timing,
                separation=separation,
                audit=self.audit,
                provenance=self.provenance,
                fresh_channel=True,
                position_unit=False,
            )
        else:
            self.detector = BackoffMisbehaviorDetector(
                new_monitor,
                self.tagged_id,
                config=self.config,
                timing=self.timing,
                separation=separation,
                audit=self.audit,
                provenance=self.provenance,
            )
        self.detector.on_positions_updated(slot, positions, medium)
