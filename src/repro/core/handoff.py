"""Monitor hand-off under mobility.

The paper's mobile experiments "choose a neighbor of the malicious node
to monitor its activity.  If this neighbor moves out of range, another
neighbor is randomly chosen."  :class:`MonitorHandoff` implements that
protocol: it owns the current :class:`BackoffMisbehaviorDetector`, and
at every mobility epoch checks whether the monitor can still decode the
tagged node; if not, it promotes a random current neighbor to monitor
and starts a fresh detector (statistical history does not transfer —
the new monitor has its own channel view).

Verdicts and deterministic violations from all monitors are accumulated
so experiment harnesses see one continuous stream.
"""

from __future__ import annotations

from repro.core.detector import BackoffMisbehaviorDetector, DetectorConfig
from repro.geometry.vectors import distance
from repro.sim.listeners import SimulationListener


class MonitorHandoff(SimulationListener):
    """Keeps *some* neighbor monitoring the tagged node at all times."""

    def __init__(self, tagged_id, initial_monitor, config=None, timing=None,
                 rng=None, separation=None):
        if rng is None:
            raise ValueError("MonitorHandoff requires an RngStream")
        self.tagged_id = tagged_id
        self.config = config if config is not None else DetectorConfig()
        self.timing = timing
        self._rng = rng
        self.detector = BackoffMisbehaviorDetector(
            initial_monitor,
            tagged_id,
            config=self.config,
            timing=timing,
            separation=separation,
        )
        self.handoffs = 0
        self.retired_detectors = []

    # -- aggregated views ----------------------------------------------------

    @property
    def monitor_id(self):
        return self.detector.monitor_id

    @property
    def observations(self):
        """Samples across all monitors, in order."""
        out = []
        for det in self.retired_detectors:
            out.extend(det.observations)
        out.extend(self.detector.observations)
        return out

    @property
    def observation_count(self):
        """Cheap total sample count (for stop conditions)."""
        return len(self.detector.observations) + sum(
            len(det.observations) for det in self.retired_detectors
        )

    @property
    def verdicts(self):
        out = []
        for det in self.retired_detectors:
            out.extend(det.verdicts)
        out.extend(self.detector.verdicts)
        return out

    @property
    def violations(self):
        out = []
        for det in self.retired_detectors:
            out.extend(det.violations)
        out.extend(self.detector.violations)
        return out

    @property
    def flagged_malicious(self):
        return any(v.is_malicious for v in self.verdicts)

    # -- listener plumbing ------------------------------------------------------

    def on_transmission_start(self, slot, transmission, medium):
        self.detector.on_transmission_start(slot, transmission, medium)

    def on_transmission_end(self, slot, transmission, success, medium):
        self.detector.on_transmission_end(slot, transmission, success, medium)

    def on_positions_updated(self, slot, positions, medium):
        if self.tagged_id in medium.neighbors(self.monitor_id):
            self.detector.on_positions_updated(slot, positions, medium)
            return
        replacement = self._pick_replacement(medium)
        if replacement is None:
            # Tagged node currently has no neighbors at all; keep the old
            # monitor (it will produce no samples until someone is close).
            self.detector.on_positions_updated(slot, positions, medium)
            return
        self._handoff(replacement, positions, medium, slot)

    def _pick_replacement(self, medium):
        candidates = sorted(
            n for n in medium.neighbors(self.tagged_id) if n != self.tagged_id
        )
        return self._rng.choice(candidates) if candidates else None

    def _handoff(self, new_monitor, positions, medium, slot):
        self.retired_detectors.append(self.detector)
        self.handoffs += 1
        separation = None
        mon = positions.get(new_monitor)
        tag = positions.get(self.tagged_id)
        if mon is not None and tag is not None:
            separation = max(distance(mon, tag), 1.0)
        self.detector = BackoffMisbehaviorDetector(
            new_monitor,
            self.tagged_id,
            config=self.config,
            timing=self.timing,
            separation=separation,
        )
        self.detector.on_positions_updated(slot, positions, medium)
