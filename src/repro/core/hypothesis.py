"""The hypothesis test wrapping the rank-sum statistic.

    H0: S is well-behaved.
    H1: S is malicious.

The monitor accumulates paired samples — dictated back-offs x (known
exactly from the announced PRS state) and estimated observed back-offs y
— and rejects H0 when the rank-sum test finds y significantly smaller
than x.  The significance level alpha bounds the false-alarm
(misdiagnosis) probability per window; the paper reports misdiagnosis
below 0.01, which corresponds to alpha = 0.01 here.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.core.ranksum import RankSumResult, rank_sum_test
from repro.util.validation import check_positive, check_probability


class TestDecision(enum.Enum):
    __test__ = False  # not a pytest class, despite the name

    REJECT_H0 = "reject"          # deem the tagged node malicious
    RETAIN_H0 = "retain"
    NOT_ENOUGH_SAMPLES = "pending"


class BackoffHypothesisTest:
    """Sliding-window rank-sum test over back-off sample pairs.

    Parameters
    ----------
    sample_size:
        Window length (the paper evaluates 10, 25, 50, 100).
    alpha:
        Significance level for rejecting H0.
    alternative:
        Passed to the rank-sum test; ``"less"`` (default) tests for
        *shorter* observed back-offs, the misbehavior of interest.
        ``"two-sided"`` also catches anomalously long back-offs.
    """

    def __init__(
        self,
        sample_size: int = 50,
        alpha: float = 0.01,
        alternative: str = "less",
    ) -> None:
        self.sample_size = int(check_positive(sample_size, "sample_size"))
        self.alpha = check_probability(alpha, "alpha")
        self.alternative = alternative
        self._x: Deque[float] = deque(maxlen=self.sample_size)
        self._y: Deque[float] = deque(maxlen=self.sample_size)

    def add_sample(self, dictated: float, estimated: float) -> None:
        """Append one (x, y) pair to the window."""
        self._x.append(float(dictated))
        self._y.append(float(estimated))

    @property
    def n_samples(self) -> int:
        return len(self._x)

    @property
    def window_full(self) -> bool:
        return len(self._x) >= self.sample_size

    def reset(self) -> None:
        self._x.clear()
        self._y.clear()

    def window_snapshot(self) -> Tuple[List[float], List[float]]:
        """The current (x, y) window contents as independent lists.

        The batched backend snapshots windows when they become ready and
        evaluates them together at the dispatch-end flush; the copies
        keep later ``add_sample`` calls from mutating a pending window.
        """
        return list(self._x), list(self._y)

    def decide(self, result: RankSumResult) -> TestDecision:
        """Judge one rank-sum result at this window's alpha."""
        if result.p_value < self.alpha:
            return TestDecision.REJECT_H0
        return TestDecision.RETAIN_H0

    def evaluate(self) -> Tuple[TestDecision, Optional[RankSumResult]]:
        """Run the test on the current window.

        Returns ``(decision, result)`` where ``result`` is the
        :class:`~repro.core.ranksum.RankSumResult` (None while the
        window is short).
        """
        if not self.window_full:
            return TestDecision.NOT_ENOUGH_SAMPLES, None
        result = rank_sum_test(list(self._x), list(self._y), self.alternative)
        return self.decide(result), result
