"""Turning verdicts into action: neighborhood reputation.

The paper detects misbehavior; a deployment must also *respond* (the
paper's conclusion points at discouraging/penalizing violators).  This
module aggregates a stream of per-window verdicts into a reputation
score per tagged node and a quarantine decision, with exponential decay
so a node that reforms (or was unluckily flagged) recovers.

Scores live in [0, 1]: 1 = fully trusted.  Each malicious verdict
multiplies the score by ``penalty``; each clean evaluation moves it
back toward 1 at ``recovery`` rate; deterministic violations weigh
heavier than statistical rejections (they carry no error probability
beyond digest collisions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.records import Verdict
from repro.util.validation import check_in_range, check_probability


@dataclass
class ReputationConfig:
    """Tunables for verdict aggregation."""

    statistical_penalty: float = 0.5
    deterministic_penalty: float = 0.1
    recovery: float = 0.05
    quarantine_threshold: float = 0.2
    rehabilitate_threshold: float = 0.6

    def __post_init__(self) -> None:
        check_in_range(self.statistical_penalty, 0.0, 1.0, "statistical_penalty")
        check_in_range(self.deterministic_penalty, 0.0, 1.0, "deterministic_penalty")
        check_probability(self.recovery, "recovery")
        check_probability(self.quarantine_threshold, "quarantine_threshold")
        check_probability(self.rehabilitate_threshold, "rehabilitate_threshold")
        if self.rehabilitate_threshold <= self.quarantine_threshold:
            raise ValueError(
                "rehabilitate_threshold must exceed quarantine_threshold "
                "(hysteresis)"
            )


@dataclass
class _NodeRecord:
    score: float = 1.0
    quarantined: bool = False
    malicious_verdicts: int = 0
    clean_verdicts: int = 0
    last_update_slot: int = 0


class ReputationTracker:
    """Per-neighbor reputation from the detector's verdict stream."""

    def __init__(self, config: Optional[ReputationConfig] = None) -> None:
        self.config = config if config is not None else ReputationConfig()
        self._records: Dict[int, _NodeRecord] = {}

    def _record(self, node_id: int) -> _NodeRecord:
        return self._records.setdefault(node_id, _NodeRecord())

    def ingest(self, node_id: int, verdict: Verdict) -> float:
        """Fold one :class:`~repro.core.records.Verdict` into the score."""
        record = self._record(node_id)
        record.last_update_slot = verdict.slot
        if verdict.is_malicious:
            record.malicious_verdicts += 1
            penalty = (
                self.config.deterministic_penalty
                if verdict.deterministic
                else self.config.statistical_penalty
            )
            record.score *= penalty
        else:
            record.clean_verdicts += 1
            record.score += self.config.recovery * (1.0 - record.score)
        self._update_quarantine(record)
        return record.score

    def ingest_all(self, node_id: int, verdicts: Iterable[Verdict]) -> float:
        for verdict in verdicts:
            self.ingest(node_id, verdict)
        return self.score(node_id)

    def _update_quarantine(self, record: _NodeRecord) -> None:
        if record.quarantined:
            if record.score >= self.config.rehabilitate_threshold:
                record.quarantined = False
        elif record.score <= self.config.quarantine_threshold:
            record.quarantined = True

    # -- queries ---------------------------------------------------------

    def score(self, node_id: int) -> float:
        """Current score (1.0 for nodes never evaluated)."""
        record = self._records.get(node_id)
        return record.score if record is not None else 1.0

    def is_quarantined(self, node_id: int) -> bool:
        record = self._records.get(node_id)
        return record.quarantined if record is not None else False

    def quarantined_nodes(self) -> List[int]:
        return sorted(
            node_id
            for node_id, record in self._records.items()
            if record.quarantined
        )

    def stats(self, node_id: int) -> Tuple[int, int]:
        """(malicious, clean) verdict counts for a node."""
        record = self._records.get(node_id)
        if record is None:
            return (0, 0)
        return (record.malicious_verdicts, record.clean_verdicts)
