"""The back-off misbehavior detector (the paper's full framework).

One detector instance monitors one *tagged* neighbor on behalf of one
*monitor* node.  Attach it to a simulation as a listener; it then:

1. regenerates the tagged node's verifiable PRS from its MAC address,
2. tracks the monitor's own busy/idle channel view (ARMA traffic
   intensity, eq. 6) and — unless the caller supplies known region node
   counts — the Bianchi competing-terminals/density estimate,
3. for every decoded RTS of the tagged node, forms a sample pair:
   the *dictated* back-off x (pure function of the announced SeqOff# and
   Attempt#) and the *estimated observed* back-off y (eqs. 1-5 applied
   to the monitor's idle/busy counts over the contention interval),
4. runs the deterministic verifiers (SeqOff# monotonicity, Attempt#/MD5
   consistency, and the sound countdown upper bound: even if the tagged
   node could count during every slot the monitor did not rule out, it
   could not have finished the dictated countdown),
5. runs the Wilcoxon rank-sum hypothesis test whenever the observation
   window is full, emitting a :class:`Verdict`.

Sample hygiene: a pair is only entered into the statistical window when
the contention interval is trustworthy — the previous transmission of
the tagged node was observed, the announced SeqOff# advanced by exactly
one (no missed frames in between), and the estimate passes a
plausibility bound (an estimate far above the contention window means
the tagged node simply had no traffic queued, which says nothing about
its timers).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

from repro.core.arma import ArmaTrafficEstimator
from repro.core.batch import rank_sum_many
from repro.core.bianchi import CompetingTerminalEstimator
from repro.core.density import NodeDensityEstimator
from repro.core.deterministic import (
    AttemptNumberVerifier,
    SequenceOffsetVerifier,
    UnambiguousCountdownVerifier,
)
from repro.core.hypothesis import BackoffHypothesisTest, TestDecision
from repro.core.observation import ChannelObserver
from repro.core.records import BackoffObservation, Diagnosis, Verdict
from repro.core.sysstate import SystemStateEstimator
from repro.geometry.regions import RegionModel
from repro.mac.backoff import contention_window
from repro.mac.constants import DEFAULT_TIMING
from repro.mac.frames import SEQ_OFF_MODULUS
from repro.mac.prng import VerifiableBackoffPrng
from repro.obs.audit import AuditRecord, DecisionAuditLog
from repro.obs.provenance import ProvenanceLog, ProvenanceRecord
from repro.obs.trace import PID_DETECTION, active_tracer
from repro.sim.listeners import SimulationListener
from repro.util.caches import register_cache_reset
from repro.util.units import Slots

if TYPE_CHECKING:  # pragma: no cover - import-time only
    from repro.core.batch import LazyArmaFeed, OccupancyFeed
    from repro.core.deterministic import DeterministicViolation
    from repro.core.observation import ObservedTransmission
    from repro.core.observatory import BatchScheduler, ObservatorySubscription
    from repro.core.observatory import _PendingWindow
    from repro.core.ranksum import RankSumResult
    from repro.core.records import Verdict as _Verdict
    from repro.mac.constants import MacTiming
    from repro.obs.registry import MetricsRegistry
    from repro.phy.medium import Medium, Transmission


#: Memoized RegionModel instances keyed by their full geometry.  The
#: circle-intersection areas in RegionModel.__post_init__ are the
#: expensive part of a geometry refresh; models are immutable once
#: built, so every detector (and every mobility epoch) with the same
#: quantized separation shares one instance.
_region_cache: Dict[
    Tuple[float, float, float, Optional[float]], RegionModel
] = {}


def cached_region_model(
    sensing_range: float = 550.0,
    separation: float = 240.0,
    interferer_offset: float = 450.0,
    far_interferer_offset: Optional[float] = None,
) -> RegionModel:
    """A shared :class:`RegionModel` for the given geometry (memoized)."""
    key = (sensing_range, separation, interferer_offset, far_interferer_offset)
    model = _region_cache.get(key)
    if model is None:
        model = _region_cache[key] = RegionModel(
            sensing_range=sensing_range,
            separation=separation,
            interferer_offset=interferer_offset,
            far_interferer_offset=far_interferer_offset,
        )
    return model


@register_cache_reset
def reset_region_cache() -> None:
    """Forget all memoized RegionModels (test isolation escape hatch)."""
    _region_cache.clear()


@dataclass
class DetectorConfig:
    """Tunables of the detection framework."""

    sample_size: int = 50
    alpha: float = 0.05
    alternative: str = "less"
    #: Divide each sample pair by its attempt's (CW + 1) before ranking.
    #: Retransmission attempts draw from doubled windows, so raw back-off
    #: populations are heavy-tailed mixtures; normalizing makes every
    #: dictated sample ~ U[0, 1] and restores the rank-sum test's power
    #: under heterogeneous attempt numbers.
    normalize_by_cw: bool = True
    #: Practical-significance margin, in normalized (CW-relative) units,
    #: added to each estimated sample before ranking: H0 is only
    #: rejected when the observed back-offs fall short of the dictated
    #: ones by *more* than this.  Absorbs the residual estimation bias of
    #: non-uniform/mobile neighborhoods (the paper's model assumes
    #: uniform density); a PM = 25 cheat shifts samples by ~0.125,
    #: comfortably past the default band.
    guard_band: float = 0.06
    arma_alpha: float = 0.995
    arma_interval_slots: int = 500
    #: Known node counts in regions A2 / A1 (the paper's grid experiments
    #: fix n = k = 5); None -> estimate from the Bianchi inversion.
    known_n: Optional[float] = None
    known_k: Optional[float] = None
    #: Representative-interferer geometry; None -> RegionModel defaults.
    region_model: Optional[RegionModel] = None
    #: Discard samples whose estimate exceeds slack * (CW + 1) slots.
    plausibility_slack: float = 2.0
    #: Discard samples whose *busy* slot count exceeds
    #: ``max_busy_factor * (CW + 1)``: the p(I|B) term's estimation error
    #: scales linearly with the busy mass, so a countdown stretched over
    #: thousands of busy slots carries more model error than signal.
    max_busy_factor: float = 8.0
    #: Tolerance of the deterministic countdown bound, in slots.
    countdown_tolerance: int = 6
    #: Evaluate the hypothesis test every ``test_stride`` new samples
    #: once the window is full (1 = every sample).
    test_stride: int = 1
    #: Samples observed before this slot are used for the online
    #: estimators and the deterministic verifiers but not for the
    #: hypothesis test: while traffic ramps up and the ARMA/density
    #: estimates settle, estimated back-offs are systematically off.
    warmup_slots: int = 100_000
    #: Correct the eq.-4 p(I|B) for non-uniform neighbor occupancy: the
    #: monitor tracks the fraction of transmissions it senses whose
    #: sender the tagged node cannot sense (obtainable from the position
    #: /degree reports the paper proposes for non-uniform densities) and
    #: scales p(I|B) by measured-over-uniform.  Essential under mobility,
    #: near-neutral on the uniform grid.
    occupancy_correction: bool = True
    #: EWMA factor for the occupancy tracker.
    occupancy_alpha: float = 0.99
    #: Only attempts up to this number enter the statistical window.
    #: High-attempt intervals are long (CW up to 1023), so any error in
    #: p(I|B) is amplified by thousands of busy slots; attempts 1-3 are
    #: the bulk of the traffic and estimate conservatively.  Deterministic
    #: checks still run on every attempt.
    max_test_attempt: int = 3
    #: Emit an audit record + metric counter for every quarantined
    #: observation (missing/corrupt announced fields).  ``None`` (the
    #: default) auto-enables exactly when the observer has an injected
    #: fault schedule — clean runs keep their audit/metrics streams
    #: byte-identical to pre-fault-injection versions, faulted runs get
    #: a reason code per quarantined observation.
    quarantine_audit: Optional[bool] = None
    #: Statistical backend: ``"scalar"`` runs each rank-sum window and
    #: estimator fold eagerly in pure python (the reference oracle);
    #: ``"batched"`` routes through :mod:`repro.core.batch` — vectorized
    #: rank-sum evaluation, numpy interval ledgers, and (under a
    #: :class:`~repro.core.observatory.SharedChannelObservatory`)
    #: deferred estimator folds plus dispatch-end window coalescing.
    #: Every observable output is bit-identical between the two.
    stats_backend: str = "scalar"


class BackoffMisbehaviorDetector(SimulationListener):
    """Monitors one tagged neighbor for back-off timer violations."""

    def __init__(
        self,
        monitor_id: int,
        tagged_id: int,
        config: Optional[DetectorConfig] = None,
        timing: "Optional[MacTiming]" = None,
        separation: Optional[float] = None,
        audit: Optional[DecisionAuditLog] = None,
        metrics: "Optional[MetricsRegistry]" = None,
        observer: "Optional[ObservatorySubscription]" = None,
        provenance: Optional[ProvenanceLog] = None,
    ) -> None:
        self.config = config if config is not None else DetectorConfig()
        self.timing = timing if timing is not None else DEFAULT_TIMING
        self.monitor_id = monitor_id
        self.tagged_id = tagged_id
        #: structured decision audit log (see repro.obs.audit); optional.
        self.audit = audit
        #: per-verdict evidence chains (see repro.obs.provenance); optional.
        self.provenance = provenance
        if metrics is None:
            from repro.obs.runtime import metrics_enabled, shared_registry

            metrics = shared_registry() if metrics_enabled() else None
        #: metrics registry for verdict/sample counters; optional.
        self.metrics = metrics

        cfg = self.config
        if cfg.stats_backend not in ("scalar", "batched"):
            raise ValueError(
                f"stats_backend must be 'scalar' or 'batched', "
                f"got {cfg.stats_backend!r}"
            )
        #: True when the observer is an observatory subscription — the
        #: SharedChannelObservatory then drives all channel accounting
        #: and this detector must NOT be registered as an engine
        #: listener (it would double-count every transmission).
        self._subscribed = observer is not None
        if observer is None:
            self.observer = ChannelObserver(monitor_id, tagged_id)
        else:
            self.observer = observer
        self.prng = VerifiableBackoffPrng(
            tagged_id, cw_min=self.timing.cw_min, cw_max=self.timing.cw_max
        )
        region_model = cfg.region_model
        if region_model is None:
            kwargs = {}
            if separation is not None:
                kwargs["separation"] = separation
            region_model = cached_region_model(**kwargs)
        self.state_estimator = SystemStateEstimator(region_model)
        self.arma = ArmaTrafficEstimator(
            cfg.arma_alpha, cfg.arma_interval_slots
        )
        self.terminal_estimator = CompetingTerminalEstimator()
        self.density_estimator = NodeDensityEstimator(region_model=region_model)
        self.test = BackoffHypothesisTest(
            cfg.sample_size, cfg.alpha, cfg.alternative
        )
        self.seq_verifier = SequenceOffsetVerifier()
        self.attempt_verifier = AttemptNumberVerifier()
        self.countdown_verifier = UnambiguousCountdownVerifier(
            cfg.countdown_tolerance
        )

        #: quarantined (undecodable/corrupt-announcement) observation
        #: counts by reason code — always tracked, audit-gated emission.
        self.quarantine_counts: Dict[str, int] = {}
        if cfg.quarantine_audit is None:
            self._quarantine_audit = (
                getattr(self.observer, "faults", None) is not None
            )
        else:
            self._quarantine_audit = cfg.quarantine_audit
        #: accepted BackoffObservation samples
        self.observations: List[BackoffObservation] = []
        self.skipped_samples = 0
        self.verdicts: List[Verdict] = []
        #: DeterministicViolation records
        self.violations: List["DeterministicViolation"] = []
        self._arma_cursor = 0
        self._processed = 0          # observer.observed entries consumed
        self._samples_since_test = 0
        #: (observation index, slot, ranked x, ranked y) of the samples
        #: currently inside the statistical window — mirrors the
        #: hypothesis test's sample deque so a verdict's provenance can
        #: name the exact observations it ranked.  Pure bookkeeping: no
        #: RNG draws, no float effects on the detection path.
        self._window_meta: Deque[Tuple[int, int, float, float]] = deque(
            maxlen=cfg.sample_size
        )
        self._verdict_seq = 0
        self._tracer = active_tracer()
        #: first slot this detector saw
        self._birth_slot: Optional[int] = None
        #: P(sender invisible to tagged | sensed)
        self._invisible_ewma: Optional[float] = None
        self._occupancy_samples = 0
        # Batched-backend plumbing, wired by the observatory at attach;
        # all None for the scalar backend and standalone detectors.
        self._batch_scheduler: Optional["BatchScheduler"] = None
        self._lazy_arma_feed: Optional["LazyArmaFeed"] = None
        self._occupancy_feed: Optional["OccupancyFeed"] = None

    # -- listener plumbing -------------------------------------------------

    def on_transmission_start(
        self, slot: Slots, transmission: "Transmission", medium: "Medium"
    ) -> None:
        if self._subscribed:
            raise RuntimeError(
                "detector is observatory-subscribed; do not register it "
                "as an engine listener"
            )
        self.observer.on_transmission_start(slot, transmission, medium)

    def on_positions_updated(
        self,
        slot: Slots,
        positions: Dict[int, Tuple[float, float]],
        medium: "Medium",
    ) -> None:
        self.observer.on_positions_updated(slot, positions, medium)
        self._refresh_geometry(positions)

    def _refresh_geometry(
        self, positions: Dict[int, Tuple[float, float]]
    ) -> None:
        """Track the monitor-sender separation under mobility.

        The region areas of eqs. 3-4 depend on the S-R distance; a
        monitor can range a one-hop neighbor from received signal
        strength, so the detector is allowed to know it.  Without this,
        a neighbor drifting very close (nearly identical channel views)
        is systematically *under*-estimated and honest nodes get
        flagged.
        """
        mon = positions.get(self.monitor_id)
        tag = positions.get(self.tagged_id)
        if mon is None or tag is None:
            return
        from repro.geometry.vectors import distance

        separation = max(distance(mon, tag), 1.0)
        current = self.state_estimator.region_model
        if abs(separation - current.separation) < 10.0:
            return  # avoid churning the geometry for sub-noise moves
        # The dead band above already ignores sub-10 m moves, so quantize
        # the separation to the same granularity: mobility epochs across
        # all detectors then hit a small set of memoized RegionModels
        # instead of recomputing circle-intersection areas every time.
        quantized = max(round(separation / 10.0) * 10.0, 1.0)
        model = cached_region_model(
            sensing_range=current.sensing_range,
            separation=quantized,
            interferer_offset=current.interferer_offset,
            far_interferer_offset=current.far_interferer_offset,
        )
        self.state_estimator = SystemStateEstimator(model)
        self.density_estimator = NodeDensityEstimator(region_model=model)

    def on_transmission_end(
        self,
        slot: Slots,
        transmission: "Transmission",
        success: bool,
        medium: "Medium",
    ) -> None:
        if self._subscribed:
            raise RuntimeError(
                "detector is observatory-subscribed; do not register it "
                "as an engine listener"
            )
        if self._birth_slot is None:
            self._birth_slot = transmission.start_slot
            self._arma_cursor = transmission.start_slot
        self.observer.on_transmission_end(slot, transmission, success, medium)
        sender = transmission.sender
        if sender != self.monitor_id and medium.senses(sender, self.monitor_id):
            # Every sensed attempt feeds the collision-probability
            # estimate behind the density inversion.
            self.terminal_estimator.record_attempt(collided=not success)
            if sender != self.tagged_id and self.config.occupancy_correction:
                self._record_occupancy(
                    invisible=not medium.senses(sender, self.tagged_id)
                )
        self._advance_arma(slot)
        if sender == self.tagged_id:
            self._process_new_observations(medium)

    # -- online state ------------------------------------------------------

    def _advance_arma(self, slot: Slots) -> None:
        # Busy intervals are recorded when transmissions *end*, so slots
        # closer than one full exchange to the present may still gain
        # busy mass from in-flight transmissions.  Only slots older than
        # that horizon are final; feeding newer ones would undercount.
        target = slot - self.timing.exchange_slots
        if target <= self._arma_cursor:
            return
        idle, busy = self.observer.idle_busy_counts(self._arma_cursor, target)
        self.arma.ingest(busy, idle + busy)
        self._arma_cursor = target

    @property
    def rho(self) -> float:
        """Current ARMA traffic-intensity estimate."""
        if self._lazy_arma_feed is not None:
            self._lazy_arma_feed.sync()
        return self.arma.estimate

    def _record_occupancy(self, invisible: bool) -> None:
        value = 1.0 if invisible else 0.0
        if self._invisible_ewma is None:
            self._invisible_ewma = value
        else:
            alpha = self.config.occupancy_alpha
            self._invisible_ewma = alpha * self._invisible_ewma + (1 - alpha) * value
        self._occupancy_samples += 1

    @property
    def p_ib_scale(self) -> float:
        """Measured-over-uniform invisible-transmitter ratio (eq.-4 scale)."""
        if self._occupancy_feed is not None:
            self._occupancy_feed.sync()
        if (
            not self.config.occupancy_correction
            or self._invisible_ewma is None
            or self._occupancy_samples < 50
        ):
            return 1.0
        baseline = self.state_estimator.region_model.regions.uniform_invisible_fraction
        if baseline <= 0:
            return 1.0
        return self._invisible_ewma / baseline

    def _region_counts(self) -> Tuple[float, float]:
        cfg = self.config
        if cfg.known_n is not None and cfg.known_k is not None:
            return cfg.known_n, cfg.known_k
        counts = self.density_estimator.region_counts(
            self.terminal_estimator.estimate
        )
        n = cfg.known_n if cfg.known_n is not None else counts["A2"]
        k = cfg.known_k if cfg.known_k is not None else counts["A1"]
        return n, k

    # -- the main sample pipeline -------------------------------------------

    def _process_new_observations(self, medium: "Medium") -> None:
        observed = self.observer.observed
        while self._processed < len(observed):
            index = self._processed
            self._processed += 1
            current = observed[index]
            if current.rts is None:
                # Sensed but no (valid) announced fields: quarantine.
                # The observation still anchors the next contention
                # interval via the busy timeline, but nothing of it may
                # feed the verifiers or the rank-sum window.
                self._quarantine(current)
                continue
            self._run_deterministic_frame_checks(current)
            if index == 0:
                continue  # no previous activity to anchor the interval
            previous = observed[index - 1]
            self._form_sample(previous, current)

    def _run_deterministic_frame_checks(
        self, current: "ObservedTransmission"
    ) -> None:
        rts = current.rts
        last_field = self.seq_verifier.last_field
        gap_free = (
            last_field is not None
            and (rts.seq_off_field - last_field) % SEQ_OFF_MODULUS == 1
        )
        violation = self.seq_verifier.observe(rts, current.start_slot)
        if violation is not None:
            self._record_violation(violation)
        violation = self.attempt_verifier.observe(
            rts, current.start_slot, gap_free=gap_free
        )
        if violation is not None:
            self._record_violation(violation)

    def _form_sample(
        self,
        previous: "ObservedTransmission",
        current: "ObservedTransmission",
    ) -> None:
        rts = current.rts
        start = previous.end_slot
        end = current.start_slot
        if end <= start:
            return
        if previous.rts is not None:
            advance = (rts.seq_off_field - previous.rts.seq_off_field) % SEQ_OFF_MODULUS
            if advance != 1:
                # Missed frames in between: interval spans >1 back-off.
                self._skip_sample()
                return

        idle, busy = self.observer.idle_busy_counts(start, end)
        own_tx = self.observer.own_tx_slots_in(start, end)
        dictated = self.prng.dictated_backoff(rts.seq_off, rts.attempt)
        window = contention_window(
            min(rts.attempt, self.timing.retry_limit),
            self.timing.cw_min,
            self.timing.cw_max,
        )

        # Sound upper bound: the tagged node might have counted during any
        # slot except the monitor's own transmissions and the single DIFS
        # it must defer after the preceding busy period.  (Per-stretch
        # DIFS costs are NOT subtracted here: the monitor's idle stretches
        # may be fragmented by transmissions the sender never sensed, and
        # a sound bound must not over-subtract.)
        budget = max(idle + busy - own_tx - self.timing.difs_slots, 0)
        violation = self.countdown_verifier.observe(
            dictated, budget, current.start_slot
        )
        if violation is not None:
            self._record_violation(violation)

        warmup_end = (self._birth_slot or 0) + self.config.warmup_slots
        if current.start_slot < warmup_end:
            self._skip_sample()
            return
        if busy > self.config.max_busy_factor * (window + 1):
            self._skip_sample()
            return

        n, k = self._region_counts()
        if busy == 0:
            # The monitor saw the whole interval idle: the slots available
            # to the sender are known exactly (the per-slot p(I|I) discount
            # is an *average* and would bias clean intervals low).  This is
            # the paper's deterministic regime.
            estimated = max(float(idle - self.timing.difs_slots), 0.0)
        else:
            i_est, b_est = self.state_estimator.estimate_sender_slots(
                idle, busy, self.rho, n, k, p_ib_scale=self.p_ib_scale
            )
            # DIFS correction: the sender defers one DIFS before its first
            # countdown slot and one more after each period it spent
            # frozen.  The monitor cannot see the sender's freezes
            # directly, so it prices them from the estimate itself: Best
            # busy-at-sender slots amount to ~ Best / exchange_slots busy
            # periods.
            freeze_periods = b_est / max(self.timing.exchange_slots, 1)
            difs_cost = self.timing.difs_slots * (1.0 + freeze_periods)
            estimated = max(i_est - difs_cost, 0.0)
        if estimated > self.config.plausibility_slack * (window + 1):
            self._skip_sample()
            return

        observation = BackoffObservation(
            slot=current.start_slot,
            seq_off=rts.seq_off,
            attempt=rts.attempt,
            dictated=dictated,
            estimated=estimated,
            idle_slots=idle,
            busy_slots=busy,
            interval_slots=end - start,
            rho=self.rho,
            unambiguous=busy == 0,
        )
        self.observations.append(observation)
        if self.metrics is not None:
            self.metrics.inc("detector.samples")
        if rts.attempt > self.config.max_test_attempt:
            return
        if self.config.normalize_by_cw:
            x = dictated / (window + 1.0)
            y = estimated / (window + 1.0) + self.config.guard_band
        else:
            x = float(dictated)
            y = estimated + self.config.guard_band * (window + 1.0)
        self.test.add_sample(x, y)
        self._window_meta.append(
            (len(self.observations) - 1, current.start_slot, x, y)
        )
        self._samples_since_test += 1
        if (
            self.test.window_full
            and self._samples_since_test >= self.config.test_stride
        ):
            self._samples_since_test = 0
            self._evaluate(current.start_slot)

    # -- verdicts ------------------------------------------------------------

    def _skip_sample(self) -> None:
        self.skipped_samples += 1
        if self.metrics is not None:
            self.metrics.inc("detector.samples_skipped")

    def _quarantine(self, current: "ObservedTransmission") -> None:
        """Count (and, when auditing, log) one undecodable observation.

        ``current.impairment`` names the injected link fault; plain
        physics-side decode failures are labeled ``"undecodable"``.
        """
        from repro.faults.schedule import IMPAIRMENT_UNDECODABLE

        reason = current.impairment or IMPAIRMENT_UNDECODABLE
        self.quarantine_counts[reason] = (
            self.quarantine_counts.get(reason, 0) + 1
        )
        if self._tracer is not None:
            self._tracer.instant(
                "detector.quarantine",
                slot=current.start_slot,
                tid=self.monitor_id,
                pid=PID_DETECTION,
                category="detector",
                args={"tagged": self.tagged_id, "reason": reason},
            )
        if not self._quarantine_audit:
            return
        if self.metrics is not None:
            self.metrics.inc("detector.quarantined")
            self.metrics.inc(f"detector.quarantined.{reason}")
        if self.audit is not None:
            self.audit.record(
                AuditRecord(
                    slot=current.start_slot,
                    monitor=self.monitor_id,
                    tagged=self.tagged_id,
                    rule="quarantine",
                    diagnosis=Diagnosis.INSUFFICIENT_DATA.value,
                    deterministic=False,
                    detail=reason,
                )
            )

    def _publish(
        self,
        verdict: "_Verdict",
        rule: str,
        detail: str,
        threshold: Optional[float] = None,
        window_meta: Optional[List[Tuple[int, int, float, float]]] = None,
        audit_index: Optional[int] = None,
        provenance_index: Optional[int] = None,
        verdict_index: Optional[int] = None,
        verdict_seq: Optional[int] = None,
        rho: Optional[float] = None,
        quarantine_drops: Optional[Dict[str, int]] = None,
        skipped_samples: Optional[int] = None,
    ) -> None:
        """Append a verdict plus its audit record and metric counts.

        ``audit_index``/``provenance_index`` are reserved log slots for
        deferred (batched-backend) publication: the records land at the
        exact positions an eager evaluation would have written, so log
        interleaving across detectors is backend-invariant.
        ``window_meta`` likewise carries the window bookkeeping
        snapshotted at deferral time (the live deque may have advanced),
        and ``rho``/``quarantine_drops``/``skipped_samples`` the
        detector-state counters frozen then — a deferred fill must
        describe the deferral moment, not the flush moment, for
        provenance to be flush-cadence-invariant.
        """
        if verdict_index is None:
            self.verdicts.append(verdict)
        else:
            self.verdicts[verdict_index] = verdict
        if self.audit is not None:
            audit_entry = AuditRecord(
                slot=verdict.slot,
                monitor=self.monitor_id,
                tagged=self.tagged_id,
                rule=rule,
                diagnosis=verdict.diagnosis.value,
                deterministic=verdict.deterministic,
                detail=detail,
                p_value=verdict.p_value,
                statistic=verdict.statistic,
                threshold=threshold,
                sample_size=verdict.sample_size,
            )
            if audit_index is None:
                self.audit.record(audit_entry)
            else:
                self.audit.fill(audit_index, audit_entry)
        if self.metrics is not None:
            self.metrics.inc("detector.verdicts")
            self.metrics.inc(f"detector.verdicts.{verdict.diagnosis.value}")
            self.metrics.inc(f"detector.rule.{rule}")
            layer = "deterministic" if verdict.deterministic else "statistical"
            self.metrics.inc(f"detector.verdicts.{layer}")
        if self.provenance is None and self._tracer is None:
            return
        if verdict_seq is None:
            verdict_seq = self._verdict_seq
            self._verdict_seq += 1
        verdict_id = (
            f"{self.monitor_id}-{self.tagged_id}-{verdict.slot}"
            f"-{rule}-{verdict_seq}"
        )
        if window_meta is not None:
            meta = window_meta
        else:
            meta = list(self._window_meta) if rule == "rank_sum" else []
        if self.provenance is not None:
            provenance_entry = ProvenanceRecord(
                verdict_id=verdict_id,
                slot=verdict.slot,
                monitor=self.monitor_id,
                tagged=self.tagged_id,
                rule=rule,
                diagnosis=verdict.diagnosis.value,
                deterministic=verdict.deterministic,
                detail=detail,
                observation_ids=[m[0] for m in meta],
                observation_slots=[m[1] for m in meta],
                window_start=meta[0][1] if meta else None,
                window_end=meta[-1][1] if meta else None,
                dictated=[m[2] for m in meta],
                estimated=[m[3] for m in meta],
                statistic=verdict.statistic,
                p_value=verdict.p_value,
                threshold=threshold,
                sample_size=verdict.sample_size,
                rho=self.rho if rho is None else rho,
                arma_alpha=self.config.arma_alpha,
                quarantine_drops=dict(
                    sorted(
                        (
                            self.quarantine_counts
                            if quarantine_drops is None
                            else quarantine_drops
                        ).items()
                    )
                ),
                skipped_samples=(
                    self.skipped_samples
                    if skipped_samples is None
                    else skipped_samples
                ),
            )
            if provenance_index is None:
                self.provenance.record(provenance_entry)
            else:
                self.provenance.fill(provenance_index, provenance_entry)
        tracer = self._tracer
        if tracer is not None:
            if meta:
                tracer.span(
                    "detector.rank_sum",
                    meta[0][1],
                    verdict.slot,
                    tid=self.monitor_id,
                    pid=PID_DETECTION,
                    category="detector",
                    args={
                        "tagged": self.tagged_id,
                        "samples": verdict.sample_size,
                        "p_value": verdict.p_value,
                    },
                )
            tracer.instant(
                f"verdict.{verdict.diagnosis.value}",
                slot=verdict.slot,
                tid=self.monitor_id,
                pid=PID_DETECTION,
                category="detector",
                args={
                    "tagged": self.tagged_id,
                    "rule": rule,
                    "verdict_id": verdict_id,
                },
            )

    def _record_violation(self, violation: "DeterministicViolation") -> None:
        self.violations.append(violation)
        self._publish(
            Verdict(
                diagnosis=Diagnosis.MALICIOUS,
                sample_size=self.test.n_samples,
                slot=violation.slot,
                reason=f"{violation.kind}: {violation.detail}",
                deterministic=True,
            ),
            rule=violation.kind,
            detail=violation.detail,
        )

    def _evaluate(self, slot: Slots) -> None:
        if not self.test.window_full:
            return
        scheduler = self._batch_scheduler
        if scheduler is not None:
            # Observatory + batched backend: snapshot the ready window
            # and let the dispatch-end flush rank it with its peers.
            scheduler.defer(self, slot)
            return
        if self.config.stats_backend == "batched":
            # Standalone batched detector: same kernel, batch of one.
            x, y = self.test.window_snapshot()
            result = rank_sum_many([x], [y], self.test.alternative)[0]
        else:
            _decision, scalar_result = self.test.evaluate()
            if scalar_result is None:
                return
            result = scalar_result
        self._emit_rank_sum_verdict(result, slot)

    def _emit_rank_sum_verdict(
        self,
        result: "RankSumResult",
        slot: Slots,
        window_meta: Optional[List[Tuple[int, int, float, float]]] = None,
        audit_index: Optional[int] = None,
        provenance_index: Optional[int] = None,
        verdict_index: Optional[int] = None,
        verdict_seq: Optional[int] = None,
        rho: Optional[float] = None,
        quarantine_drops: Optional[Dict[str, int]] = None,
        skipped_samples: Optional[int] = None,
    ) -> None:
        """Publish one rank-sum verdict (eager or deferred-fill)."""
        decision = self.test.decide(result)
        diagnosis = (
            Diagnosis.MALICIOUS
            if decision is TestDecision.REJECT_H0
            else Diagnosis.WELL_BEHAVED
        )
        self._publish(
            Verdict(
                diagnosis=diagnosis,
                p_value=result.p_value,
                statistic=result.statistic,
                sample_size=result.n_y,
                slot=slot,
                reason="rank-sum window evaluation",
            ),
            rule="rank_sum",
            detail=(
                f"one-sided rank-sum over {result.n_y} samples: "
                f"p={result.p_value:.6g} vs alpha={self.config.alpha}"
            ),
            threshold=self.config.alpha,
            window_meta=window_meta,
            audit_index=audit_index,
            provenance_index=provenance_index,
            verdict_index=verdict_index,
            verdict_seq=verdict_seq,
            rho=rho,
            quarantine_drops=quarantine_drops,
            skipped_samples=skipped_samples,
        )

    def _reserve_verdict(self) -> int:
        """Claim the next ``verdicts`` slot for a deferred fill.

        Coarse flush cadences (the streaming service) let deterministic
        violations publish between a window's deferral and its flush;
        reserving the slot keeps the verdict list in eager order.
        """
        self.verdicts.append(None)  # type: ignore[arg-type]
        return len(self.verdicts) - 1

    def _finish_deferred_evaluation(
        self, pending: "_PendingWindow", result: "RankSumResult"
    ) -> None:
        """Dispatch-end completion of a window deferred by the scheduler."""
        self._emit_rank_sum_verdict(
            result,
            pending.slot,
            window_meta=pending.window_meta,
            audit_index=pending.audit_index,
            provenance_index=pending.provenance_index,
            verdict_index=pending.verdict_index,
            verdict_seq=pending.verdict_seq,
            rho=pending.rho,
            quarantine_drops=pending.quarantine_drops,
            skipped_samples=pending.skipped_samples,
        )

    # -- conveniences -----------------------------------------------------------

    @property
    def observation_count(self) -> int:
        """Number of accepted samples (for stop conditions)."""
        return len(self.observations)

    @property
    def latest_verdict(self) -> Optional[Verdict]:
        return self.verdicts[-1] if self.verdicts else None

    @property
    def flagged_malicious(self) -> bool:
        """True if any verdict so far deems the tagged node malicious."""
        return any(v.is_malicious for v in self.verdicts)

    def reset_window(self) -> None:
        """Clear the statistical window (e.g., after a monitor hand-off)."""
        self.test.reset()
        self._window_meta.clear()
        self._samples_since_test = 0
