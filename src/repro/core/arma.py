"""Online traffic-intensity estimation: the ARMA filter of paper eq. 6.

    rho(t+1) = alpha * rho(t) + (1 - alpha) * (1/s) * sum_{i=1..s} b_i

where ``b_i`` is 1 if the node sensed slot i busy and 0 otherwise, ``s``
is the sample-interval length in slots, and ``alpha = 0.995`` (the paper
takes the value from Bianchi & Tinnirello's run-time estimator and notes
the results are insensitive to alpha as long as it is close to 1).
"""

from __future__ import annotations

from typing import Optional

from repro.util.validation import check_in_range, check_positive


class ArmaTrafficEstimator:
    """Smoothed estimate of the local traffic intensity rho.

    Feed it one *sample interval* at a time via :meth:`update` (the mean
    busy fraction of the last ``s`` slots), or let it consume raw slot
    counts with :meth:`ingest`, which buffers until a full interval is
    available.  Until the first full interval the estimate reports the
    running raw mean, so early reads are sensible rather than zero.
    """

    def __init__(
        self, alpha: float = 0.995, sample_interval_slots: int = 500
    ) -> None:
        self.alpha = check_in_range(alpha, 0.0, 1.0, "alpha")
        self.sample_interval_slots = int(
            check_positive(sample_interval_slots, "sample_interval_slots")
        )
        self._estimate: Optional[float] = None
        self._pending_busy = 0.0
        self._pending_total = 0.0
        self.intervals_consumed = 0

    @property
    def estimate(self) -> float:
        """Current rho estimate in [0, 1] (0.0 before any data)."""
        if self._estimate is not None:
            return self._estimate
        if self._pending_total > 0:
            return self._pending_busy / self._pending_total
        return 0.0

    @property
    def pending_busy(self) -> float:
        """Busy slot mass buffered toward the next full interval."""
        return self._pending_busy

    @property
    def pending_total(self) -> float:
        """Total slot mass buffered toward the next full interval."""
        return self._pending_total

    @property
    def warmed_up(self) -> bool:
        """True once at least one full sample interval was absorbed."""
        return self._estimate is not None

    def update(self, busy_fraction: float) -> float:
        """Absorb one sample interval's mean busy fraction."""
        check_in_range(busy_fraction, 0.0, 1.0, "busy_fraction")
        if self._estimate is None:
            self._estimate = busy_fraction
        else:
            self._estimate = (
                self.alpha * self._estimate + (1.0 - self.alpha) * busy_fraction
            )
        self.intervals_consumed += 1
        return self._estimate

    def ingest(self, busy_slots: int, total_slots: int) -> None:
        """Absorb raw slot counts, applying eq. 6 per full interval."""
        if busy_slots < 0 or total_slots < 0 or busy_slots > total_slots:
            raise ValueError(
                f"invalid slot counts: busy={busy_slots}, total={total_slots}"
            )
        self._pending_busy += busy_slots
        self._pending_total += total_slots
        s = self.sample_interval_slots
        while self._pending_total >= s:
            # Apportion the buffered busy mass to one interval.  Counts
            # arrive in coarse chunks (per contention period), so an
            # exact per-slot split is not available; the proportional
            # split preserves the mean, which is all eq. 6 uses.
            fraction = self._pending_busy / self._pending_total
            take_busy = fraction * s
            self.update(min(max(take_busy / s, 0.0), 1.0))
            self._pending_total -= s
            self._pending_busy = max(self._pending_busy - take_busy, 0.0)
