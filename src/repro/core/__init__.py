"""The paper's contribution: detecting back-off timer violations.

Combines deterministic verification of the announced verifiable back-off
sequence (PRS offsets, attempt numbers + MD5 digests) with statistical
inference under channel-view uncertainty (paper eqs. 1-6 + the Wilcoxon
rank-sum test).

The main entry point is :class:`BackoffMisbehaviorDetector`, a
simulation listener you attach for one (monitor, tagged-node) pair; it
produces :class:`Verdict` objects as observation windows fill.
"""

from repro.core.arma import ArmaTrafficEstimator
from repro.core.bianchi import BianchiModel, CompetingTerminalEstimator
from repro.core.density import NodeDensityEstimator
from repro.core.detector import (
    BackoffMisbehaviorDetector,
    DetectorConfig,
    cached_region_model,
    reset_region_cache,
)
from repro.core.handoff import MonitorHandoff
from repro.core.deterministic import (
    AttemptNumberVerifier,
    DeterministicViolation,
    SequenceOffsetVerifier,
    UnambiguousCountdownVerifier,
)
from repro.core.hypothesis import BackoffHypothesisTest, TestDecision
from repro.core.observation import (
    ChannelObserver,
    ChannelViewBase,
    ObservedTransmission,
    joint_state_counts,
)
from repro.core.observatory import (
    MonitorChannel,
    ObservatorySubscription,
    SharedChannelObservatory,
)
from repro.core.ranksum import RankSumResult, rank_sum_test, wilcoxon_ranks
from repro.core.records import BackoffObservation, Verdict
from repro.core.reputation import ReputationConfig, ReputationTracker
from repro.core.sysstate import SystemStateEstimator, SystemStateProbabilities

__all__ = [
    "ArmaTrafficEstimator",
    "AttemptNumberVerifier",
    "BackoffHypothesisTest",
    "BackoffMisbehaviorDetector",
    "BackoffObservation",
    "BianchiModel",
    "ChannelObserver",
    "ChannelViewBase",
    "CompetingTerminalEstimator",
    "DetectorConfig",
    "DeterministicViolation",
    "MonitorChannel",
    "MonitorHandoff",
    "NodeDensityEstimator",
    "ObservatorySubscription",
    "ObservedTransmission",
    "RankSumResult",
    "SharedChannelObservatory",
    "ReputationConfig",
    "ReputationTracker",
    "SequenceOffsetVerifier",
    "SystemStateEstimator",
    "SystemStateProbabilities",
    "TestDecision",
    "UnambiguousCountdownVerifier",
    "Verdict",
    "cached_region_model",
    "joint_state_counts",
    "rank_sum_test",
    "reset_region_cache",
    "wilcoxon_ranks",
]
