"""The batched statistical core: numpy-vectorized detection arithmetic.

The scalar hot path — Wilcoxon ranking per window, exact-null lookups,
per-event ARMA ingestion, per-event occupancy folds — prices every
(monitor, sender) window separately, which caps detection throughput
once dozens of detectors share one event stream.  This module is the
``stats_backend="batched"`` implementation behind
:class:`~repro.core.detector.DetectorConfig`:

* :func:`rank_sum_many` evaluates a whole batch of pending rank-sum
  windows in one vectorized shot — padded 2-D sample matrices, stable
  argsort ranking with vectorized tie grouping, and a vectorized normal
  approximation whose arithmetic mirrors the scalar
  :func:`~repro.core.ranksum.rank_sum_test` operation-for-operation, so
  p-values and statistics are bit-identical;
* :class:`IntervalLedger` is a numpy busy-timeline (sorted disjoint
  intervals + prefix sums) answering single and *batched* slot-count
  queries in O(log n), replacing the per-query python interval walk;
* :class:`LazyArmaFeed` and :class:`OccupancyFeed` defer the per-event
  estimator folds of the shared observation plane: events append to a
  per-channel log at ingest, and the exact scalar fold sequence is
  replayed only when an estimate is actually read.

Equivalence contract: everything observable — verdicts, audit records,
provenance records, metrics, estimator states at read time — is
byte-identical to the scalar backend.  The float folds themselves are
never re-ordered (EWMAs are sequential); only *queries* are batched and
*when* the folds run changes.  Deferring the ARMA fold is sound because
the engine caps every transmission at ``exchange_slots`` slots: an
interval recorded by a later end-event can never start before an
earlier event's ingest horizon ``slot - exchange_slots``, so the busy
counts over an already-passed chunk are final (pinned by the
equivalence suites in ``tests/test_batch.py`` and the golden
fingerprints).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.ranksum import (
    ALTERNATIVES,
    EXACT_LIMIT,
    RankSumResult,
    _exact_p,
)

if TYPE_CHECKING:  # pragma: no cover - import-time only
    from repro.core.arma import ArmaTrafficEstimator
    from repro.core.detector import BackoffMisbehaviorDetector

_SQRT2 = math.sqrt(2.0)


def _phi(z: float) -> float:
    """Standard normal CDF, exactly as the scalar ``_normal_p`` computes it."""
    return 0.5 * (1.0 + math.erf(z / _SQRT2))


def rank_sum_many(
    xs: Sequence[Sequence[float]],
    ys: Sequence[Sequence[float]],
    alternative: str = "two-sided",
) -> List[RankSumResult]:
    """Batched Wilcoxon rank-sum tests, bit-identical to the scalar path.

    ``xs[i]``/``ys[i]`` are the i-th window's dictated/estimated
    samples; windows may have different lengths (rows are padded with
    ``+inf``, which sorts past every finite sample and never joins a
    finite tie group).  Returns one
    :class:`~repro.core.ranksum.RankSumResult` per window whose every
    field equals ``rank_sum_test(xs[i], ys[i], alternative)`` exactly:

    * ranks are half-integers, so rank sums are exact in float64 in any
      summation order;
    * the tie correction's ``sum(t**3 - t)`` is integer arithmetic;
    * the normal approximation repeats the scalar operation order
      elementwise (IEEE-correctly-rounded ops on identical inputs), and
      ``math.erf`` is applied per element;
    * tie-free small windows fall back to the shared memoized exact-null
      tables of :mod:`repro.core.ranksum`.
    """
    if alternative not in ALTERNATIVES:
        raise ValueError(f"alternative must be one of {ALTERNATIVES}")
    if len(xs) != len(ys):
        raise ValueError("rank_sum_many requires as many x rows as y rows")
    batch = len(xs)
    if batch == 0:
        return []
    n_x = np.array([len(x) for x in xs], dtype=np.int64)
    n_y = np.array([len(y) for y in ys], dtype=np.int64)
    if not (n_x.min() and n_y.min()):
        raise ValueError("rank_sum_test requires two non-empty samples")
    n_total = n_x + n_y
    width = int(n_total.max())

    # Fill the padded sample matrix with two boolean-mask assignments:
    # C-order mask filling enumerates (row, ascending column) exactly
    # like concatenating the rows, so a flat value list drops into
    # place without a per-row python loop.
    index = np.arange(width, dtype=np.int64)
    in_x = index[np.newaxis, :] < n_x[:, np.newaxis]
    in_row = index[np.newaxis, :] < n_total[:, np.newaxis]
    combined = np.full((batch, width), np.inf, dtype=np.float64)
    combined[in_x] = [v for row in xs for v in row]
    combined[in_row & ~in_x] = [v for row in ys for v in row]

    # Average ranks with ties, vectorized: stable argsort (the scalar
    # sort is stable too, so tie groups enumerate identically), then
    # every sorted position learns its tie group's [first, last] bounds
    # via running max/min scans, giving mean rank (first+last)/2 + 1.
    order = np.argsort(combined, axis=1, kind="stable")
    svals = np.take_along_axis(combined, order, axis=1)
    first_of_group = np.ones((batch, width), dtype=bool)
    np.not_equal(svals[:, 1:], svals[:, :-1], out=first_of_group[:, 1:])
    group_first = np.maximum.accumulate(
        np.where(first_of_group, index, -1), axis=1
    )
    last_of_group = np.empty((batch, width), dtype=bool)
    last_of_group[:, -1] = True
    last_of_group[:, :-1] = first_of_group[:, 1:]
    group_last = np.minimum.accumulate(
        np.where(last_of_group, index, width)[:, ::-1], axis=1
    )[:, ::-1]
    mean_rank = (group_first + group_last) / 2.0 + 1.0
    ranks = np.empty_like(combined)
    np.put_along_axis(ranks, order, mean_rank, axis=1)

    w_y = np.where(in_row & ~in_x, ranks, 0.0).sum(axis=1)
    u_y = w_y - (n_y * (n_y + 1)) / 2.0

    # Tie group sizes live on the sorted axis; only groups of real
    # samples count (the +inf padding forms its own group past n_total).
    sizes = group_last - group_first + 1
    real_group = first_of_group & in_row
    tie_term = np.where(real_group, sizes**3 - sizes, 0).sum(axis=1)
    has_ties = tie_term > 0

    exact_rows = ~has_ties & (n_total <= EXACT_LIMIT)
    # Normal approximation, mirroring _normal_p's operation order.
    nt_float = n_total.astype(np.float64)
    mean = (n_y * (n_total + 1)) / 2.0
    variance = (n_x * n_y * (n_total + 1)) / 12.0
    correction = (n_x * n_y * tie_term) / (12.0 * nt_float * (nt_float - 1.0))
    variance = variance - correction
    degenerate = variance <= 0
    sd = np.sqrt(np.where(degenerate, 1.0, variance))
    if alternative == "less":
        args = (w_y - mean + 0.5) / sd
    elif alternative == "greater":
        args = (w_y - mean - 0.5) / sd
    else:
        z = (w_y - mean) / sd
        args = np.abs(z) - 0.5 / sd

    results: List[RankSumResult] = []
    arg_list = args.tolist()
    for i in range(batch):
        ny_i = int(n_y[i])
        nt_i = int(n_total[i])
        wy_i = float(w_y[i])
        if exact_rows[i]:
            p = _exact_p(wy_i, ny_i, nt_i, alternative)
            method = "exact"
        else:
            method = "normal"
            if degenerate[i]:
                p = 1.0
            elif alternative == "less":
                p = _phi(arg_list[i])
            elif alternative == "greater":
                p = 1.0 - _phi(arg_list[i])
            else:
                p = min(1.0, 2.0 * (1.0 - _phi(arg_list[i])))
        results.append(
            RankSumResult(
                statistic=wy_i,
                u_statistic=float(u_y[i]),
                p_value=min(max(p, 0.0), 1.0),
                alternative=alternative,
                method=method,
                n_x=int(n_x[i]),
                n_y=ny_i,
            )
        )
    return results


class IntervalLedger:
    """Sorted disjoint ``[start, end)`` slot intervals, numpy-backed.

    The batched replacement for ``ChannelViewBase``'s python interval
    lists: inserts buffer into a pending list and are union-merged in
    one vectorized pass at the next query; queries run on prefix sums
    via ``searchsorted`` instead of walking intervals.  The merged form
    is canonical (touching intervals coalesce, exactly like the scalar
    ``_add_busy_interval``), so clipped interval lists and slot counts
    are identical to the scalar bookkeeping regardless of insertion
    order.
    """

    __slots__ = (
        "_starts",
        "_ends",
        "_cum",
        "_count",
        "_pending",
        "_last_start",
        "_last_end",
        "_total",
    )

    def __init__(self) -> None:
        self._starts = np.zeros(16, dtype=np.int64)
        self._ends = np.zeros(16, dtype=np.int64)
        self._cum = np.zeros(17, dtype=np.int64)
        self._count = 0
        self._pending: List[Tuple[int, int]] = []
        # Python-int mirrors of the canonical tail (valid when _count > 0)
        # and of _cum[_count]; they keep the in-order insert fast paths
        # free of numpy scalar indexing.
        self._last_start = 0
        self._last_end = 0
        self._total = 0

    def add(self, start: int, end: int) -> None:
        """Insert one interval (empty intervals are dropped, as scalar).

        Simulation traffic arrives almost entirely in start order, so
        two O(1) fast paths keep the canonical arrays current without a
        vectorized flush: append when the interval lies strictly past
        the last one, extend-in-place when it touches only the last
        one.  Out-of-order inserts fall back to the pending buffer.
        """
        if end <= start:
            return
        if not self._pending:
            count = self._count
            if count == 0 or start > self._last_end:
                self._ensure(count + 1)
                self._starts[count] = start
                self._ends[count] = end
                self._total += end - start
                self._cum[count + 1] = self._total
                self._count = count + 1
                self._last_start = start
                self._last_end = end
                return
            if start >= self._last_start:
                # Disjoint + sorted means an interval starting inside
                # or touching the last one cannot reach any earlier
                # interval: extend the last in place.
                if end > self._last_end:
                    self._total += end - self._last_end
                    self._ends[count - 1] = end
                    self._cum[count] = self._total
                    self._last_end = end
                return
        self._pending.append((start, end))

    def _ensure(self, total: int) -> None:
        if total <= self._starts.size:
            return
        capacity = max(total, self._starts.size * 2)
        for name in ("_starts", "_ends"):
            grown = np.zeros(capacity, dtype=np.int64)
            old = getattr(self, name)
            grown[: self._count] = old[: self._count]
            setattr(self, name, grown)
        grown_cum = np.zeros(capacity + 1, dtype=np.int64)
        grown_cum[: self._count + 1] = self._cum[: self._count + 1]
        self._cum = grown_cum

    def _flush(self) -> None:
        pending = self._pending
        if not pending:
            return
        self._pending = []
        fresh = np.asarray(pending, dtype=np.int64)
        count = self._count
        low = int(fresh[:, 0].min())
        # Frozen intervals ending before the earliest new start can
        # neither overlap nor touch anything new; merge only the tail.
        cut = int(np.searchsorted(self._ends[:count], low, side="left"))
        starts = np.concatenate((self._starts[cut:count], fresh[:, 0]))
        ends = np.concatenate((self._ends[cut:count], fresh[:, 1]))
        order = np.argsort(starts, kind="stable")
        starts = starts[order]
        ends = ends[order]
        running_end = np.maximum.accumulate(ends)
        first = np.empty(starts.size, dtype=bool)
        first[0] = True
        # A strictly-greater start opens a new group: touching merges,
        # exactly like the scalar merge condition ``end >= start``.
        np.greater(starts[1:], running_end[:-1], out=first[1:])
        group_at = np.flatnonzero(first)
        merged_starts = starts[first]
        last_index = np.append(group_at[1:] - 1, starts.size - 1)
        merged_ends = running_end[last_index]
        total = cut + merged_starts.size
        self._ensure(total)
        self._starts[cut:total] = merged_starts
        self._ends[cut:total] = merged_ends
        np.cumsum(merged_ends - merged_starts, out=self._cum[cut + 1 : total + 1])
        if cut:
            self._cum[cut + 1 : total + 1] += self._cum[cut]
        self._count = total
        self._last_start = int(self._starts[total - 1])
        self._last_end = int(self._ends[total - 1])
        self._total = int(self._cum[total])

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        self._flush()
        return self._count

    def overlap(self, start: int, end: int) -> int:
        """Total covered slots within ``[start, end)``."""
        self._flush()
        count = self._count
        if count == 0 or end <= start:
            return 0
        i = int(np.searchsorted(self._ends[:count], start, side="right"))
        j = int(np.searchsorted(self._starts[:count], end, side="left"))
        if j <= i:
            return 0
        total = int(self._cum[j] - self._cum[i])
        total -= max(int(start - self._starts[i]), 0)
        total -= max(int(self._ends[j - 1] - end), 0)
        return total

    def overlap_many(self, lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`overlap` over parallel bound arrays."""
        self._flush()
        count = self._count
        if count == 0:
            return np.zeros(len(lows), dtype=np.int64)
        i = np.searchsorted(self._ends[:count], lows, side="right")
        j = np.searchsorted(self._starts[:count], highs, side="left")
        covered = j > i
        i_safe = np.where(covered, i, 0)
        j_safe = np.where(covered, j, 1)
        total = self._cum[j_safe] - self._cum[i_safe]
        total -= np.maximum(lows - self._starts[i_safe], 0)
        total -= np.maximum(self._ends[j_safe - 1] - highs, 0)
        return np.where(covered & (highs > lows), total, 0)

    def intervals_in(self, start: int, end: int) -> List[Tuple[int, int]]:
        """Covered sub-intervals clipped to ``[start, end)``, sorted."""
        self._flush()
        count = self._count
        if count == 0 or end <= start:
            return []
        i = int(np.searchsorted(self._ends[:count], start, side="right"))
        j = int(np.searchsorted(self._starts[:count], end, side="left"))
        if j <= i:
            return []
        lows = np.maximum(self._starts[i:j], start).tolist()
        highs = np.minimum(self._ends[i:j], end).tolist()
        return list(zip(lows, highs))


class LazyArmaFeed:
    """A deferred mirror of the observatory's eager ``_ArmaFeed``.

    The eager feed queries the busy timeline and folds the ARMA
    estimator on *every* end event.  This feed instead remembers how far
    into the channel's end-slot log it has folded; :meth:`sync` replays
    the exact chunk sequence the eager feed would have produced (same
    ``[cursor, slot - exchange_slots)`` boundaries, same
    ``ingest(busy, total)`` float folds), batching the busy-count
    queries through the channel's :class:`IntervalLedger`.  Chunks only
    cover slots at least one full exchange old, and no later event can
    add busy mass below its own ingest horizon, so replaying late reads
    the same counts the eager feed read live.
    """

    __slots__ = (
        "arma",
        "exchange_slots",
        "cursor",
        "birth_slot",
        "detectors",
        "_channel",
        "_log_index",
    )

    def __init__(
        self,
        arma: "ArmaTrafficEstimator",
        exchange_slots: int,
        channel: "_BatchChannel",
    ) -> None:
        self.arma = arma
        self.exchange_slots = exchange_slots
        self.cursor = 0
        self.birth_slot: Optional[int] = None
        self.detectors: List["BackoffMisbehaviorDetector"] = []
        self._channel = channel
        self._log_index = len(channel._end_slot_log)

    def start(self, start_slot: int) -> None:
        """First event after creation: fix birth slot, as the eager feed."""
        self.birth_slot = start_slot
        self.cursor = start_slot
        for detector in self.detectors:
            detector._birth_slot = start_slot
            detector._arma_cursor = start_slot

    def sync(self) -> None:
        """Fold every event logged since the last sync into the ARMA."""
        log = self._channel._end_slot_log
        logged = len(log)
        index = self._log_index
        if index >= logged or self.birth_slot is None:
            return
        self._log_index = logged
        exchange = self.exchange_slots
        cursor = self.cursor
        lows: List[int] = []
        highs: List[int] = []
        for j in range(index, logged):
            target = log[j] - exchange
            if target > cursor:
                lows.append(cursor)
                highs.append(target)
                cursor = target
        self.cursor = cursor
        if not lows:
            return
        ledger = self._channel._busy
        ingest = self.arma.ingest
        if len(lows) <= 4:
            # Incremental syncs usually carry a handful of chunks;
            # per-chunk scalar queries skip the array round-trip.
            for low, high in zip(lows, highs):
                ingest(ledger.overlap(low, high), high - low)
            return
        busies = ledger.overlap_many(
            np.asarray(lows, dtype=np.int64), np.asarray(highs, dtype=np.int64)
        )
        for low, high, busy in zip(lows, highs, busies.tolist()):
            ingest(busy, high - low)


class OccupancyFeed:
    """Deferred per-detector occupancy EWMA over a shared channel log.

    The channel logs ``(sender, sensors)`` once per sensed foreign
    event; each detector folds the entries it has not consumed yet —
    the identical ``_record_occupancy`` float sequence the eager loop
    ran per event — only when ``p_ib_scale`` is actually read.  The
    logged ``sensors`` frozenset is the medium's cached value captured
    at event time, so mobility epochs between log and fold cannot skew
    the replay.
    """

    __slots__ = ("_log", "_index", "_detector")

    def __init__(
        self,
        log: List[Tuple[int, frozenset]],
        detector: "BackoffMisbehaviorDetector",
    ) -> None:
        self._log = log
        self._index = len(log)
        self._detector = detector

    def sync(self) -> None:
        log = self._log
        logged = len(log)
        index = self._index
        if index >= logged:
            return
        self._index = logged
        detector = self._detector
        tagged = detector.tagged_id
        record = detector._record_occupancy
        for j in range(index, logged):
            sender, sensors = log[j]
            if sender != tagged:
                record(invisible=tagged not in sensors)


class _BatchChannel:
    """Structural protocol of the channel state the feeds consume."""

    _end_slot_log: List[int]
    _busy: IntervalLedger
