"""Deterministic misbehavior checks (paper Section 4).

Three violations are detectable with certainty, no statistics needed:

1. **Sequence-offset cheating** — the announced SeqOff# must advance by
   exactly one per transmission.  A monitor that hears two consecutive
   RTS frames with a non-advancing (or regressing) offset has caught the
   sender red-handed; gaps are allowed (the monitor may have missed
   frames to collisions).
2. **Attempt-number cheating** — retransmissions of the *same* DATA
   packet (identified by its MD5 digest in the RTS) must carry strictly
   increasing attempt numbers, and a fresh packet must start at
   attempt 1.  Re-announcing attempt 1 resets the contention window to
   CWmin, which is exactly the advantage a cheater wants.
3. **Blatant countdown violations** — when the monitor's channel was
   idle for the tagged node's whole contention interval there is no
   estimation uncertainty: the sender must have counted the full
   dictated value, and an observed countdown materially shorter than
   dictated is a violation (a small tolerance absorbs slot-quantization
   and DIFS-alignment error).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.mac.frames import SEQ_OFF_MODULUS, RtsFrame


@dataclass(frozen=True)
class DeterministicViolation:
    """A violation established without statistical inference."""

    kind: str          # "seq_offset" | "attempt_number" | "blatant_countdown"
    slot: int
    detail: str


class SequenceOffsetVerifier:
    """Checks SeqOff# monotonicity across observed RTS frames.

    Works on the wrapped 13-bit field: an advance of ``delta`` frames is
    read modulo 8192, and anything that is not a positive advance within
    ``max_gap`` (missed-frame allowance) is flagged.
    """

    def __init__(self, max_gap: int = 64) -> None:
        if max_gap < 1 or max_gap >= SEQ_OFF_MODULUS // 2:
            raise ValueError(f"max_gap must be in [1, {SEQ_OFF_MODULUS // 2}), got {max_gap}")
        self.max_gap = max_gap
        self._last_field: Optional[int] = None

    def observe(
        self, rts: RtsFrame, slot: int
    ) -> Optional[DeterministicViolation]:
        """Returns a :class:`DeterministicViolation` or None."""
        field = rts.seq_off_field
        violation = None
        if self._last_field is not None:
            advance = (field - self._last_field) % SEQ_OFF_MODULUS
            if advance == 0 or advance > self.max_gap:
                violation = DeterministicViolation(
                    kind="seq_offset",
                    slot=slot,
                    detail=(
                        f"SeqOff# advanced by {advance} (mod {SEQ_OFF_MODULUS}) "
                        f"from {self._last_field} to {field}"
                    ),
                )
        self._last_field = field
        return violation

    @property
    def last_field(self) -> Optional[int]:
        """The last observed (wrapped) SeqOff# field, or None."""
        return self._last_field

    def reset(self) -> None:
        self._last_field = None


class AttemptNumberVerifier:
    """Checks Attempt# consistency against the DATA digest."""

    def __init__(self) -> None:
        self._last_digest: Optional[bytes] = None
        self._last_attempt: Optional[int] = None

    def observe(
        self, rts: RtsFrame, slot: int, gap_free: bool = True
    ) -> Optional[DeterministicViolation]:
        """Returns a :class:`DeterministicViolation` or None.

        ``gap_free`` tells the verifier whether the previous RTS of this
        sender was also observed (SeqOff# advanced by exactly one).  The
        same-digest rule holds regardless — a packet's attempt number
        can only grow — but the fresh-digest-starts-at-1 rule is only
        sound when no frames were missed: a missed attempt-1 frame makes
        a legitimate retransmission look like a fresh packet.
        """
        violation = None
        if self._last_digest is not None and rts.digest == self._last_digest:
            # Same packet retransmitted: attempt must strictly increase.
            if rts.attempt <= self._last_attempt:
                violation = DeterministicViolation(
                    kind="attempt_number",
                    slot=slot,
                    detail=(
                        f"retransmission of the same DATA digest announced "
                        f"attempt {rts.attempt} after {self._last_attempt}"
                    ),
                )
        elif self._last_digest is not None and gap_free and rts.attempt != 1:
            # New packet (digest changed) must restart at attempt 1.
            violation = DeterministicViolation(
                kind="attempt_number",
                slot=slot,
                detail=f"fresh DATA digest announced attempt {rts.attempt} != 1",
            )
        self._last_digest = rts.digest
        self._last_attempt = rts.attempt
        return violation

    def reset(self) -> None:
        self._last_digest = None
        self._last_attempt = None


class UnambiguousCountdownVerifier:
    """Checks dictated-vs-observed countdown when there is no uncertainty."""

    def __init__(self, tolerance_slots: int = 4) -> None:
        if tolerance_slots < 0:
            raise ValueError("tolerance_slots must be >= 0")
        self.tolerance_slots = tolerance_slots

    def observe(
        self, dictated: int, observed_idle_slots: float, slot: int
    ) -> Optional[DeterministicViolation]:
        """Evaluate one unambiguous interval.

        ``observed_idle_slots`` is the countdown budget the monitor
        measured (already DIFS-corrected).  Returns a violation if it
        falls short of the dictated value by more than the tolerance.
        """
        if observed_idle_slots < dictated - self.tolerance_slots:
            return DeterministicViolation(
                kind="blatant_countdown",
                slot=slot,
                detail=(
                    f"unambiguous interval allowed {observed_idle_slots} "
                    f"countdown slots but the PRS dictated {dictated}"
                ),
            )
        return None
