"""The Wilcoxon rank-sum (Mann-Whitney) test, implemented from scratch.

The paper chooses this non-parametric test because back-off samples are
far from Gaussian (they are bounded, discrete, and mixture-shaped), so
t-tests are inappropriate.  The monitor's question is one-sided: *are
the observed back-offs stochastically smaller than the dictated ones?*

Implementation notes:

- ranks use the average-rank convention for ties;
- for small combined samples without ties the *exact* null distribution
  of the rank sum is computed by dynamic programming;
- otherwise the normal approximation with tie correction and continuity
  correction is used (the standard large-sample treatment).

``scipy.stats.ranksums`` exists, but the test is the analytical heart of
the paper's statistical method, so it is implemented here (and verified
against scipy in the test suite).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, List, Sequence, Tuple

import numpy as np

ALTERNATIVES = ("two-sided", "less", "greater")

#: Largest combined sample size for which the exact null is enumerated.
EXACT_LIMIT = 25


def wilcoxon_ranks(values: Sequence[float]) -> List[float]:
    """Average ranks (1-based) of ``values``, ties sharing their mean rank."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        mean_rank = (i + j) / 2.0 + 1.0
        for idx in order[i : j + 1]:
            ranks[idx] = mean_rank
        i = j + 1
    return ranks


@dataclass(frozen=True)
class RankSumResult:
    """Outcome of one rank-sum test."""

    statistic: float       # rank sum of the second sample (y)
    u_statistic: float     # Mann-Whitney U of the second sample
    p_value: float
    alternative: str
    method: str            # "exact" or "normal"
    n_x: int
    n_y: int


# n_y <= n_total <= EXACT_LIMIT gives at most 25 * 26 / 2 = 325 distinct
# (n_y, n_total) pairs, so 512 entries can never evict a live table; the
# previous 4096 bound was paying dict overhead for slots that could not
# be reached.
@lru_cache(maxsize=512)
def _exact_cdf_table(n_y: int, n_total: int) -> Tuple[int, ...]:
    """Counts of rank subsets: ways[s] = #(size-n_y subsets of 1..n_total
    with rank sum s).  Cached per (n_y, n_total)."""
    max_sum = n_total * (n_total + 1) // 2
    # Knapsack DP over ranks; the inner sum axis is one vectorized
    # shifted-slice add per (rank, k).  k runs high-to-low so each rank
    # is counted at most once per subset; rows never overlap in memory,
    # keeping the in-place adds well-defined.  Counts stay exact: the
    # largest entry is comb(25, 12) ~ 5.2e6, far inside int64.
    ways = np.zeros((n_y + 1, max_sum + 1), dtype=np.int64)
    ways[0, 0] = 1
    for rank in range(1, n_total + 1):
        for k in range(min(rank, n_y), 0, -1):
            ways[k, rank:] += ways[k - 1, : max_sum + 1 - rank]
    # Plain-int tuple so downstream sums/divisions stay Python floats.
    return tuple(int(count) for count in ways[n_y])


def tie_group_sizes(ordered: Sequence[float]) -> List[int]:
    """Sizes (> 1) of equal-value runs in an ascending-sorted sample.

    One pass over the sorted sample; ascending order keeps the float
    tie-correction summation in :func:`_normal_p` order-stable (set
    iteration order would be hash-seed dependent, and the old
    ``combined.count`` scan was O(n^2)).
    """
    sizes: List[int] = []
    run = 1
    for i in range(1, len(ordered)):
        if ordered[i] == ordered[i - 1]:
            run += 1
        else:
            if run > 1:
                sizes.append(run)
            run = 1
    if run > 1:
        sizes.append(run)
    return sizes


def _exact_p(w_y: float, n_y: int, n_total: int, alternative: str) -> float:
    counts = _exact_cdf_table(n_y, n_total)
    total = math.comb(n_total, n_y)
    w = int(round(w_y))
    cdf_le = sum(counts[: w + 1]) / total
    sf_ge = sum(counts[w:]) / total
    if alternative == "less":
        return cdf_le
    if alternative == "greater":
        return sf_ge
    return min(1.0, 2.0 * min(cdf_le, sf_ge))


def _normal_p(
    w_y: float,
    n_x: int,
    n_y: int,
    tie_sizes: List[int],
    alternative: str,
) -> float:
    n_total = n_x + n_y
    mean = n_y * (n_total + 1) / 2.0
    variance = n_x * n_y * (n_total + 1) / 12.0
    if tie_sizes:
        tie_term = sum(t**3 - t for t in tie_sizes)
        variance -= n_x * n_y * tie_term / (12.0 * n_total * (n_total - 1))
    if variance <= 0:
        # All observations identical: no evidence either way.
        return 1.0
    sd = math.sqrt(variance)

    def phi(z: float) -> float:
        return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))

    if alternative == "less":
        return phi((w_y - mean + 0.5) / sd)
    if alternative == "greater":
        return 1.0 - phi((w_y - mean - 0.5) / sd)
    z = (w_y - mean) / sd
    return min(1.0, 2.0 * (1.0 - phi(abs(z) - 0.5 / sd)))


def rank_sum_test(
    x: Iterable[float],
    y: Iterable[float],
    alternative: str = "two-sided",
) -> RankSumResult:
    """Wilcoxon rank-sum test of sample ``y`` against sample ``x``.

    ``alternative`` describes ``y`` relative to ``x``:

    - ``"less"``     — H1: y is stochastically smaller than x (the
      misbehavior direction: observed back-offs shorter than dictated);
    - ``"greater"``  — H1: y is stochastically larger;
    - ``"two-sided"``— H1: the distributions differ.

    Returns a :class:`RankSumResult`.
    """
    if alternative not in ALTERNATIVES:
        raise ValueError(f"alternative must be one of {ALTERNATIVES}")
    x = list(x)
    y = list(y)
    if not x or not y:
        raise ValueError("rank_sum_test requires two non-empty samples")

    combined = x + y
    ranks = wilcoxon_ranks(combined)
    w_y = sum(ranks[len(x) :])
    n_x, n_y = len(x), len(y)
    u_y = w_y - n_y * (n_y + 1) / 2.0

    # Tie group sizes for the variance correction / exact-method gate.
    tie_sizes = tie_group_sizes(sorted(combined))

    if not tie_sizes and (n_x + n_y) <= EXACT_LIMIT:
        p = _exact_p(w_y, n_y, n_x + n_y, alternative)
        method = "exact"
    else:
        p = _normal_p(w_y, n_x, n_y, tie_sizes, alternative)
        method = "normal"
    return RankSumResult(
        statistic=w_y,
        u_statistic=u_y,
        p_value=min(max(p, 0.0), 1.0),
        alternative=alternative,
        method=method,
        n_x=n_x,
        n_y=n_y,
    )
