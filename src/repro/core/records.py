"""Data records produced by the detection framework."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class Diagnosis(enum.Enum):
    """Outcome of evaluating one observation window."""

    WELL_BEHAVED = "well_behaved"
    MALICIOUS = "malicious"
    INSUFFICIENT_DATA = "insufficient_data"


@dataclass(frozen=True)
class BackoffObservation:
    """One rank-sum sample pair for the tagged node.

    ``dictated`` is the x-population value (what the verifiable PRS
    obliged for the announced offset/attempt); ``estimated`` the
    y-population value (the countdown the monitor estimates the sender
    actually performed, via eqs. 1-2).
    """

    slot: int                 # RTS start slot
    seq_off: int              # announced PRS offset
    attempt: int              # announced attempt number
    dictated: int             # slots the PRS dictated
    estimated: float          # slots the monitor estimates were counted
    idle_slots: int           # monitor-idle slots in the contention interval
    busy_slots: int           # monitor-busy slots in the contention interval
    interval_slots: int       # total contention interval length
    rho: float                # ARMA traffic-intensity estimate at the time
    unambiguous: bool         # True if the monitor was idle throughout


@dataclass(frozen=True)
class Verdict:
    """One diagnosis of the tagged node."""

    diagnosis: Diagnosis
    p_value: Optional[float] = None
    statistic: Optional[float] = None
    sample_size: int = 0
    slot: int = 0
    reason: str = ""
    deterministic: bool = False   # True if a deterministic check fired

    @property
    def is_malicious(self) -> bool:
        return self.diagnosis is Diagnosis.MALICIOUS
