"""Deterministic fault/adversary injection (chaos conformance layer).

Two halves:

* :mod:`repro.faults.schedule` — seeded per-link channel impairments
  (decode failure, RTS corruption/truncation, burst loss) applied
  monitor-side, as pure hash functions of (seed, monitor, sender,
  start slot) so faulted runs stay deterministic regardless of worker
  count or observer wiring;
* :mod:`repro.faults.runtime` — the process-wide ``--faults <spec>`` /
  ``REPRO_FAULTS`` switch the observation layer consults.

Adversary *behavior* shapes (digest forgery, attempt replay,
sequence-offset lying, colluding pairs) live with the MAC in
:mod:`repro.mac.adversary` — they are things a cheating node does, not
things the channel does — but are part of the same conformance story:
see DESIGN.md §12.
"""

from repro.faults.runtime import (
    active_schedule,
    faults_enabled,
    installed_spec,
    reset_fault_runtime,
    set_fault_spec,
)
from repro.faults.schedule import (
    IMPAIRMENT_BURST_LOSS,
    IMPAIRMENT_DECODE_FAILURE,
    IMPAIRMENT_REASONS,
    IMPAIRMENT_RTS_CORRUPT,
    IMPAIRMENT_RTS_TRUNCATED,
    IMPAIRMENT_UNDECODABLE,
    FaultSchedule,
    FaultSpec,
    parse_fault_spec,
)

__all__ = [
    "FaultSchedule",
    "FaultSpec",
    "IMPAIRMENT_BURST_LOSS",
    "IMPAIRMENT_DECODE_FAILURE",
    "IMPAIRMENT_REASONS",
    "IMPAIRMENT_RTS_CORRUPT",
    "IMPAIRMENT_RTS_TRUNCATED",
    "IMPAIRMENT_UNDECODABLE",
    "active_schedule",
    "faults_enabled",
    "installed_spec",
    "parse_fault_spec",
    "reset_fault_runtime",
    "set_fault_spec",
]
