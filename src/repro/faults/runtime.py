"""Process-wide switch for fault injection.

Mirrors :mod:`repro.obs.runtime`: observation-layer components
(:class:`repro.core.observation.ChannelObserver`,
:class:`repro.core.observatory.SharedChannelObservatory`) consult this
module at construction time, so one ``--faults <spec>`` flag (or
``REPRO_FAULTS=<spec>``) impairs every monitor a command builds —
including the many short-lived runs inside an experiment sweep and the
forked workers of ``run_trials`` (children inherit the installed spec;
the schedule's draws are pure hashes, so worker count cannot change
outcomes).

Kept import-light so the observation layer can depend on it without
cycles.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.faults.schedule import FaultSchedule, FaultSpec, parse_fault_spec
from repro.util.caches import register_cache_reset

_installed: Optional[FaultSpec] = None
#: Memoized (source, schedule) of the last active_schedule() resolution;
#: the source key is the installed spec or the raw env string, so both
#: set_fault_spec and a monkeypatched REPRO_FAULTS invalidate it.
_schedule_cache: Optional[tuple] = None


def set_fault_spec(spec: "Optional[FaultSpec | str]") -> Optional[FaultSpec]:
    """Install the process-wide fault spec (``None`` or ``"off"`` clears).

    Accepts a parsed :class:`FaultSpec` or a spec string; returns the
    installed spec.  Takes precedence over ``REPRO_FAULTS``.
    """
    global _installed, _schedule_cache
    if isinstance(spec, str):
        spec = parse_fault_spec(spec)
    _installed = spec
    _schedule_cache = None
    return _installed


def installed_spec() -> Optional[FaultSpec]:
    """The explicitly installed spec, ignoring the environment."""
    return _installed


def faults_enabled() -> bool:
    """True if new observers should consult a fault schedule."""
    return active_schedule() is not None


def active_schedule() -> Optional[FaultSchedule]:
    """The :class:`FaultSchedule` new observers should use, or ``None``.

    Resolution order: an installed spec (:func:`set_fault_spec`) wins;
    otherwise ``REPRO_FAULTS`` is parsed.  The schedule object is
    memoized per source so every observer in a run shares one instance
    (and its per-link seed memo).
    """
    global _schedule_cache
    source: object = _installed
    if source is None:
        raw = os.environ.get("REPRO_FAULTS", "").strip()
        if not raw:
            return None
        source = raw
    cached = _schedule_cache
    if cached is not None and cached[0] == source:
        return cached[1]
    spec = source if isinstance(source, FaultSpec) else parse_fault_spec(source)
    schedule = FaultSchedule(spec) if spec is not None else None
    _schedule_cache = (source, schedule)
    return schedule


@register_cache_reset
def reset_fault_runtime() -> None:
    """Clear the installed spec and the schedule memo (test isolation)."""
    global _installed, _schedule_cache
    _installed = None
    _schedule_cache = None
