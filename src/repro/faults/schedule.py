"""Deterministic per-link fault schedules.

A :class:`FaultSchedule` decides, for each (monitor, sender) link and
each transmission start slot, whether the monitor's decode of that
frame is impaired — and how.  Four impairment shapes are modeled, all
*monitor-side*: they never change what the sender put on the air or how
the exchange itself resolves, only what the observing node recovers
from it (so the MAC/PHY dynamics of a faulted run stay byte-identical
to the clean run and the detector sees strictly degraded input).

* ``decode_failure`` — the preamble is lost outright with probability
  ``decode``; the monitor still senses the busy period.
* ``rts_corrupt`` — with probability ``corrupt``, 1–3 bytes of the
  26-byte RTS extension wire image flip in flight; the CRC-32 check in
  :func:`repro.mac.frames.decode_rts` rejects the frame.
* ``rts_truncated`` — with probability ``truncate``, the tail of the
  wire image is cut; the length check rejects it.
* ``burst_loss`` — the link spends roughly ``burst_fraction`` of its
  time inside loss windows ``burst_slots`` long, during which nothing
  decodes (fading / interference bursts).

Every decision is a **pure function** of (schedule seed, monitor,
sender, start slot), built from :func:`repro.mac.prng.splitmix64` over
a :func:`repro.util.rng.derive_seed` per-link seed.  No stream state is
consumed, so outcomes are independent of the order in which links are
queried — which is what makes faulted runs deterministic across
``--jobs`` worker counts and identical between the legacy per-detector
observer and the shared observatory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.mac.frames import FrameDecodeError, RtsFrame, decode_rts, encode_rts
from repro.mac.prng import splitmix64
from repro.util.rng import derive_seed

if TYPE_CHECKING:  # pragma: no cover - import-time only
    pass

#: Impairment reason codes, as they appear in audit records and in the
#: ``detector.quarantined.<reason>`` metric names.
IMPAIRMENT_DECODE_FAILURE = "decode_failure"
IMPAIRMENT_RTS_CORRUPT = "rts_corrupt"
IMPAIRMENT_RTS_TRUNCATED = "rts_truncated"
IMPAIRMENT_BURST_LOSS = "burst_loss"
#: Physics-side quarantine label: the monitor could not decode for
#: simulated-world reasons (out of decode range, itself transmitting,
#: garbled preamble).  Not produced by a schedule — the detector labels
#: untagged undecodable observations with it.
IMPAIRMENT_UNDECODABLE = "undecodable"

IMPAIRMENT_REASONS = (
    IMPAIRMENT_DECODE_FAILURE,
    IMPAIRMENT_RTS_CORRUPT,
    IMPAIRMENT_RTS_TRUNCATED,
    IMPAIRMENT_BURST_LOSS,
    IMPAIRMENT_UNDECODABLE,
)

_TWO64 = float(1 << 64)
#: Decision-channel salts: each per-transmission draw hashes a distinct
#: salt so the decode/corrupt/truncate decisions are independent.
_SALT_DECODE = 0x1
_SALT_CORRUPT = 0x2
_SALT_TRUNCATE = 0x3
_SALT_BURST = 0x4
_SALT_DAMAGE = 0x5


@dataclass(frozen=True)
class FaultSpec:
    """Parsed fault-injection parameters (all probabilities in [0, 1])."""

    decode: float = 0.0
    corrupt: float = 0.0
    truncate: float = 0.0
    burst_fraction: float = 0.0
    burst_slots: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        for field in ("decode", "corrupt", "truncate", "burst_fraction"):
            value = getattr(self, field)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"fault probability {field} must be in [0, 1], got {value}"
                )
        if self.burst_fraction > 0.0 and self.burst_slots <= 0:
            raise ValueError(
                "burst_slots must be positive when burst_fraction > 0"
            )

    @property
    def any_active(self) -> bool:
        """True if this spec impairs anything at all."""
        return (
            self.decode > 0.0
            or self.corrupt > 0.0
            or self.truncate > 0.0
            or self.burst_fraction > 0.0
        )

    def describe(self) -> str:
        """The canonical spec string (parse round-trips through it)."""
        parts = []
        if self.decode:
            parts.append(f"decode={self.decode:g}")
        if self.corrupt:
            parts.append(f"corrupt={self.corrupt:g}")
        if self.truncate:
            parts.append(f"truncate={self.truncate:g}")
        if self.burst_fraction:
            parts.append(f"burst={self.burst_fraction:g}:{self.burst_slots}")
        parts.append(f"seed={self.seed}")
        return ",".join(parts)


def parse_fault_spec(text: str) -> Optional[FaultSpec]:
    """Parse a ``--faults`` / ``REPRO_FAULTS`` spec string.

    Format: comma-separated ``key=value`` pairs, e.g.
    ``"decode=0.3,corrupt=0.1,truncate=0.05,burst=0.2:3000,seed=7"``.
    ``burst`` takes ``fraction:length_slots``.  ``"off"``, ``"0"`` and
    the empty string disable fault injection (return ``None``).
    """
    text = text.strip()
    if text in ("", "off", "0", "none"):
        return None
    kwargs: Dict[str, object] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(
                f"bad fault spec component {part!r}: expected key=value"
            )
        key, _, value = part.partition("=")
        key = key.strip()
        value = value.strip()
        try:
            if key == "burst":
                fraction_text, _, slots_text = value.partition(":")
                kwargs["burst_fraction"] = float(fraction_text)
                kwargs["burst_slots"] = int(slots_text) if slots_text else 2000
            elif key == "seed":
                kwargs["seed"] = int(value)
            elif key in ("decode", "corrupt", "truncate"):
                kwargs[key] = float(value)
            else:
                raise ValueError(f"unknown fault spec key {key!r}")
        except ValueError:
            raise
        except Exception as exc:  # pragma: no cover - defensive
            raise ValueError(f"bad fault spec component {part!r}") from exc
    spec = FaultSpec(**kwargs)  # type: ignore[arg-type]
    return spec if spec.any_active else None


class FaultSchedule:
    """Stateless-per-draw impairment oracle for one :class:`FaultSpec`.

    The only mutable state is the memo of per-link seeds; every
    impairment decision is a pure hash of (link seed, start slot), so
    query order never matters.
    """

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self._link_seeds: Dict[Tuple[int, int], int] = {}
        if spec.burst_fraction > 0.0:
            # A burst of burst_slots falls somewhere inside each period;
            # period length sets the long-run in-burst fraction.
            self._burst_period = max(
                int(round(spec.burst_slots / spec.burst_fraction)),
                spec.burst_slots,
            )
        else:
            self._burst_period = 0

    def _link_seed(self, monitor: int, sender: int) -> int:
        key = (monitor, sender)
        seed = self._link_seeds.get(key)
        if seed is None:
            seed = self._link_seeds[key] = derive_seed(
                self.spec.seed, "faults", monitor, sender
            )
        return seed

    @staticmethod
    def _uniform(link_seed: int, start_slot: int, salt: int) -> float:
        """A U[0,1) draw that is a pure function of its arguments."""
        return splitmix64(link_seed ^ splitmix64(start_slot * 8 + salt)) / _TWO64

    def _in_burst(self, link_seed: int, slot: int) -> bool:
        period = self._burst_period
        if period <= 0:
            return False
        index, phase = divmod(slot, period)
        slack = period - self.spec.burst_slots
        offset = 0
        if slack > 0:
            offset = splitmix64(link_seed ^ splitmix64(index * 8 + _SALT_BURST)) % (
                slack + 1
            )
        return offset <= phase < offset + self.spec.burst_slots

    def link_impairment(
        self, monitor: int, sender: int, start_slot: int
    ) -> Optional[str]:
        """The impairment hitting this link at ``start_slot``, if any.

        Checked in severity order: a burst window swallows the frame
        before the per-frame decode/corruption lotteries run.
        """
        spec = self.spec
        link_seed = self._link_seed(monitor, sender)
        if self._in_burst(link_seed, start_slot):
            return IMPAIRMENT_BURST_LOSS
        if spec.decode > 0.0 and (
            self._uniform(link_seed, start_slot, _SALT_DECODE) < spec.decode
        ):
            return IMPAIRMENT_DECODE_FAILURE
        if spec.corrupt > 0.0 and (
            self._uniform(link_seed, start_slot, _SALT_CORRUPT) < spec.corrupt
        ):
            return IMPAIRMENT_RTS_CORRUPT
        if spec.truncate > 0.0 and (
            self._uniform(link_seed, start_slot, _SALT_TRUNCATE) < spec.truncate
        ):
            return IMPAIRMENT_RTS_TRUNCATED
        return None

    def damage_wire(
        self, monitor: int, sender: int, start_slot: int, wire: bytes, reason: str
    ) -> bytes:
        """The damaged wire image the monitor actually received."""
        link_seed = self._link_seed(monitor, sender)
        draw = splitmix64(link_seed ^ splitmix64(start_slot * 8 + _SALT_DAMAGE))
        if reason == IMPAIRMENT_RTS_TRUNCATED:
            # Cut somewhere strictly inside the frame.
            keep = draw % max(len(wire) - 1, 1)
            return wire[:keep]
        # Flip 1-3 bytes at hash-chosen positions.
        damaged = bytearray(wire)
        flips = 1 + draw % 3
        for i in range(flips):
            position = splitmix64(draw + i) % len(damaged)
            mask = (splitmix64(draw + 101 + i) % 255) + 1  # never a 0 mask
            damaged[position] ^= mask
        return bytes(damaged)

    def deliver_rts(
        self,
        monitor: int,
        sender: int,
        start_slot: int,
        frame: Optional[RtsFrame],
    ) -> Tuple[Optional[RtsFrame], Optional[str]]:
        """Apply link faults to a frame the physics said was decodable.

        Returns ``(rts, impairment)``: the frame untouched when the link
        draws clean, else ``(None, reason)``.  Corruption/truncation go
        through the real wire codec — the frame is serialized, damaged,
        and re-decoded — so the quarantine path exercises exactly the
        :class:`~repro.mac.frames.FrameDecodeError` surface a real
        monitor would hit.  (In the astronomically unlikely event the
        damaged image still passes CRC + validation, the decoded frame
        is delivered: the monitor has no way to know.)
        """
        reason = self.link_impairment(monitor, sender, start_slot)
        if reason is None:
            return frame, None
        if (
            reason in (IMPAIRMENT_RTS_CORRUPT, IMPAIRMENT_RTS_TRUNCATED)
            and isinstance(frame, RtsFrame)
        ):
            wire = self.damage_wire(
                monitor, sender, start_slot, encode_rts(frame), reason
            )
            try:
                return decode_rts(wire), None
            except FrameDecodeError:
                return None, reason
        return None, reason
