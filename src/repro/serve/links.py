"""Per-``(monitor, sender)`` link state and the bounded link table.

Each tracked link owns one observatory subscription plus private audit
and provenance logs whose records are tagged with the stream event
index they were produced (or reserved) at — the merge key that lets
sharded workers reassemble the exact single-process log interleaving.

Bounded memory has three levers, all here or driven from here:

* the :class:`LinkTable` cap with LRU eviction (least recent tagged
  activity, attach order as the tie-break — deterministic, stream-only);
* :class:`ObservationLedger`, a list replacement for
  ``detector.observations`` that retains only the newest K entries while
  preserving *virtual* indices (so provenance observation ids match an
  unbounded run exactly);
* demux compaction (:func:`compact_link`): processed
  ``ObservedTransmission`` entries before the current sample anchor are
  dropped from the subscription.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.detector import BackoffMisbehaviorDetector
from repro.core.observatory import ObservatorySubscription
from repro.core.records import BackoffObservation
from repro.obs.audit import AuditRecord, DecisionAuditLog
from repro.obs.provenance import ProvenanceLog, ProvenanceRecord

LinkKey = Tuple[int, int]


class EventClock:
    """The session's monotone stream event counter (shared by tagged logs)."""

    __slots__ = ("index",)

    def __init__(self) -> None:
        self.index = 0


class TaggedAuditLog(DecisionAuditLog):
    """An audit log that stamps each record with its stream event index."""

    def __init__(self, clock: EventClock) -> None:
        DecisionAuditLog.__init__(self)
        self._clock = clock
        self.tags: List[int] = []

    def record(self, entry: AuditRecord) -> None:
        self.tags.append(self._clock.index)
        DecisionAuditLog.record(self, entry)

    def reserve(self) -> int:
        # The tag is fixed at reservation: a deferred fill must sort at
        # the event that made the window ready, not at the flush event.
        self.tags.append(self._clock.index)
        return DecisionAuditLog.reserve(self)


class TaggedProvenanceLog(ProvenanceLog):
    """A provenance log that stamps each record with its event index."""

    def __init__(self, clock: EventClock) -> None:
        ProvenanceLog.__init__(self)
        self._clock = clock
        self.tags: List[int] = []

    def record(self, entry: ProvenanceRecord) -> None:
        self.tags.append(self._clock.index)
        ProvenanceLog.record(self, entry)

    def reserve(self) -> int:
        self.tags.append(self._clock.index)
        return ProvenanceLog.reserve(self)


class ObservationLedger:
    """A bounded ``observations`` store with stable virtual indices.

    ``len()`` reports the count of observations *ever appended*, so
    ``len(ledger) - 1`` — the id the detector stamps into provenance —
    is identical to an unbounded run's; iteration yields only the
    retained tail.
    """

    __slots__ = ("_items", "_offset", "retention")

    def __init__(self, retention: int) -> None:
        if retention < 1:
            raise ValueError(f"retention must be >= 1, got {retention}")
        self.retention = retention
        self._items: List[BackoffObservation] = []
        self._offset = 0

    def __len__(self) -> int:
        return self._offset + len(self._items)

    def __iter__(self) -> Iterator[BackoffObservation]:
        return iter(self._items)

    def append(self, observation: BackoffObservation) -> None:
        self._items.append(observation)

    @property
    def retained(self) -> int:
        return len(self._items)

    def trim(self) -> int:
        """Drop all but the newest ``retention`` entries; returns drops."""
        excess = len(self._items) - self.retention
        if excess <= 0:
            return 0
        del self._items[:excess]
        self._offset += excess
        return excess


@dataclass
class LinkState:
    """Everything the session holds for one tracked (monitor, sender)."""

    monitor: int
    tagged: int
    attach_seq: int
    discovered: bool
    detector: BackoffMisbehaviorDetector
    subscription: ObservatorySubscription
    audit: TaggedAuditLog
    provenance: TaggedProvenanceLog
    #: stream event index of the tagged node's most recent end event
    last_active: int = 0
    #: audit/provenance records already flushed to an incremental sink
    emitted_audit: int = 0
    emitted_provenance: int = 0
    ledger: Optional[ObservationLedger] = field(default=None)


class LinkTable:
    """Tracked links keyed by (monitor, sender), LRU-bounded.

    ``max_links`` caps *this table*; a sharded deployment gives each
    worker ``max_links // shard_count``.  Eviction picks the link whose
    tagged node has been silent longest (stream event index of its last
    end event), breaking ties by attach order — both are pure functions
    of the stream, so eviction is deterministic and replayable.
    """

    def __init__(self, max_links: Optional[int] = None) -> None:
        if max_links is not None and max_links < 1:
            raise ValueError(f"max_links must be >= 1, got {max_links}")
        self.max_links = max_links
        self.evicted_links = 0
        self.evicted_verdicts = 0
        self._states: Dict[LinkKey, LinkState] = {}
        self._by_tagged: Dict[int, List[LinkState]] = {}

    def __len__(self) -> int:
        return len(self._states)

    def __contains__(self, key: LinkKey) -> bool:
        return key in self._states

    def get(self, key: LinkKey) -> Optional[LinkState]:
        return self._states.get(key)

    def states(self) -> List[LinkState]:
        """Live links in attach order."""
        return sorted(self._states.values(), key=lambda s: s.attach_seq)

    def by_tagged(self, tagged: int) -> List[LinkState]:
        return list(self._by_tagged.get(tagged, ()))

    def needs_eviction(self) -> bool:
        return self.max_links is not None and len(self._states) >= self.max_links

    def pick_victim(self) -> LinkState:
        """The LRU link (oldest activity, earliest attach breaks ties)."""
        return min(
            self._states.values(),
            key=lambda s: (s.last_active, s.attach_seq),
        )

    def insert(self, state: LinkState) -> None:
        key = (state.monitor, state.tagged)
        if key in self._states:
            raise ValueError(f"link {key} already tracked")
        self._states[key] = state
        self._by_tagged.setdefault(state.tagged, []).append(state)

    def remove(self, state: LinkState) -> None:
        del self._states[(state.monitor, state.tagged)]
        siblings = self._by_tagged[state.tagged]
        siblings.remove(state)
        if not siblings:
            del self._by_tagged[state.tagged]
        self.evicted_links += 1
        self.evicted_verdicts += len(state.detector.verdicts)


def compact_link(state: LinkState) -> int:
    """Drop demuxed observations older than the current sample anchor.

    The next sample anchors at ``observed[_processed - 1]``; everything
    before it can never be read again.  Indices into ``observed`` are
    relative (the pipeline only uses ``_processed``), so shifting both
    by the same count is invisible to the detector.  Returns drops.
    """
    detector = state.detector
    excess = detector._processed - 1
    if excess <= 0:
        return 0
    del state.subscription.observed[:excess]
    detector._processed -= excess
    return excess
