"""The streaming wire schema: one JSON object per line.

Four record kinds flow into ``repro serve``:

``start``
    a transmission began: which monitors sensed it at that instant and
    which could cleanly decode the announcement;
``end``
    a transmission finished, carrying the full
    :class:`~repro.core.observation.ObservedTransmission` codec dict
    (unwrapped ``seq_off`` and exact integer slots — see
    :mod:`repro.core.observation`);
``positions``
    a mobility epoch: node positions for separation tracking;
``shutdown``
    clean end-of-stream (the only way to stop a socket/tail source).

Parsing mirrors the PR 5 quarantine pattern: a bad line never raises
past :func:`parse_line` as anything but :class:`RecordRejected`, whose
``reason`` is a closed vocabulary (:data:`REJECT_REASONS`) the server
counts per code.  Sensed/decoded sets are serialized sorted so a
captured stream is byte-stable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple, Union

from repro.core.observation import (
    ObservedTransmission,
    observed_from_json,
    observed_to_json,
)
from repro.util.units import Slots

#: Reason codes a rejected line (or event) is counted under.
REASON_JSON = "json"
REASON_NOT_OBJECT = "not_object"
REASON_KIND = "kind"
REASON_UNKNOWN_KEY = "unknown_key"
REASON_SCHEMA = "schema"
REASON_OUT_OF_ORDER = "out_of_order"
REASON_ORPHAN_END = "orphan_end"
REASON_DUPLICATE_TX = "duplicate_tx"

REJECT_REASONS: Tuple[str, ...] = (
    REASON_JSON,
    REASON_NOT_OBJECT,
    REASON_KIND,
    REASON_UNKNOWN_KEY,
    REASON_SCHEMA,
    REASON_OUT_OF_ORDER,
    REASON_ORPHAN_END,
    REASON_DUPLICATE_TX,
)

_KEYS_BY_KIND: Dict[str, FrozenSet[str]] = {
    "start": frozenset({"kind", "slot", "tx", "sender", "sensed", "decoded"}),
    "end": frozenset({"kind", "slot", "tx", "sender", "sensed", "observed"}),
    "positions": frozenset({"kind", "slot", "positions"}),
    "shutdown": frozenset({"kind", "slot"}),
}

_RTS_KEYS = frozenset({"sender", "receiver", "seq_off", "attempt", "digest"})
_OBSERVED_KEYS = frozenset(
    {"start_slot", "end_slot", "rts", "success", "receiver", "impairment"}
)


class RecordRejected(Exception):
    """One line (or event) the server refuses, with its reason code."""

    def __init__(self, reason: str, detail: str) -> None:
        if reason not in REJECT_REASONS:
            raise ValueError(f"unknown reject reason {reason!r}")
        super().__init__(f"{reason}: {detail}")
        self.reason = reason
        self.detail = detail


@dataclass(frozen=True)
class StartEvent:
    slot: Slots
    tx: int
    sender: int
    sensed: FrozenSet[int]
    decoded: FrozenSet[int]


@dataclass(frozen=True)
class EndEvent:
    slot: Slots
    tx: int
    sender: int
    sensed: FrozenSet[int]
    observed: ObservedTransmission


@dataclass(frozen=True)
class PositionsEvent:
    slot: Slots
    positions: Dict[int, Tuple[float, float]]


@dataclass(frozen=True)
class ShutdownEvent:
    slot: Slots


StreamEvent = Union[StartEvent, EndEvent, PositionsEvent, ShutdownEvent]


def _require_int(data: Dict[str, object], field: str) -> int:
    value = data.get(field)
    if isinstance(value, bool) or not isinstance(value, int):
        raise RecordRejected(
            REASON_SCHEMA, f"field {field!r} must be an integer, got {value!r}"
        )
    return value


def _require_id_set(data: Dict[str, object], field: str) -> FrozenSet[int]:
    value = data.get(field)
    if not isinstance(value, list):
        raise RecordRejected(
            REASON_SCHEMA, f"field {field!r} must be a list, got {value!r}"
        )
    ids = []
    for item in value:
        if isinstance(item, bool) or not isinstance(item, int):
            raise RecordRejected(
                REASON_SCHEMA, f"field {field!r} holds non-integer id {item!r}"
            )
        ids.append(item)
    return frozenset(ids)


def _check_unknown_keys(data: Dict[str, object], allowed: FrozenSet[str]) -> None:
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise RecordRejected(REASON_UNKNOWN_KEY, f"unknown keys: {unknown}")


def parse_line(line: str) -> Optional[StreamEvent]:
    """Parse one stream line; None for blanks, RecordRejected otherwise."""
    text = line.strip()
    if not text:
        return None
    try:
        data = json.loads(text)
    except ValueError as exc:
        raise RecordRejected(REASON_JSON, str(exc)) from exc
    if not isinstance(data, dict):
        raise RecordRejected(
            REASON_NOT_OBJECT, f"line is {type(data).__name__}, not an object"
        )
    kind = data.get("kind")
    allowed = _KEYS_BY_KIND.get(kind) if isinstance(kind, str) else None
    if allowed is None:
        raise RecordRejected(REASON_KIND, f"unknown record kind {kind!r}")
    _check_unknown_keys(data, allowed)
    slot = _require_int(data, "slot")
    if kind == "shutdown":
        return ShutdownEvent(slot=slot)
    if kind == "positions":
        return PositionsEvent(slot=slot, positions=_parse_positions(data))
    tx = _require_int(data, "tx")
    sender = _require_int(data, "sender")
    sensed = _require_id_set(data, "sensed")
    if kind == "start":
        return StartEvent(
            slot=slot,
            tx=tx,
            sender=sender,
            sensed=sensed,
            decoded=_require_id_set(data, "decoded"),
        )
    observed_data = data.get("observed")
    if isinstance(observed_data, dict):
        # Unknown-key probes inside the nested codec dicts get their own
        # reason code, like the top level; every other codec complaint
        # is a schema reject.
        _check_unknown_keys(dict(observed_data), _OBSERVED_KEYS)
        rts_data = observed_data.get("rts")
        if isinstance(rts_data, dict):
            _check_unknown_keys(dict(rts_data), _RTS_KEYS)
    try:
        observed = observed_from_json(observed_data)
    except ValueError as exc:
        raise RecordRejected(REASON_SCHEMA, str(exc)) from exc
    return EndEvent(
        slot=slot, tx=tx, sender=sender, sensed=sensed, observed=observed
    )


def _parse_positions(data: Dict[str, object]) -> Dict[int, Tuple[float, float]]:
    value = data.get("positions")
    if not isinstance(value, dict):
        raise RecordRejected(
            REASON_SCHEMA, f"field 'positions' must be an object, got {value!r}"
        )
    positions: Dict[int, Tuple[float, float]] = {}
    for node_key, point in value.items():
        try:
            node = int(node_key)
        except ValueError as exc:
            raise RecordRejected(
                REASON_SCHEMA, f"non-integer node id {node_key!r}"
            ) from exc
        if (
            not isinstance(point, list)
            or len(point) != 2
            or not all(isinstance(c, (int, float)) for c in point)
        ):
            raise RecordRejected(
                REASON_SCHEMA, f"position of node {node} must be [x, y]"
            )
        positions[node] = (float(point[0]), float(point[1]))
    return positions


# -- serialization (the capture side) -------------------------------------


def _dumps(data: Dict[str, object]) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def start_line(
    slot: Slots,
    tx: int,
    sender: int,
    sensed: FrozenSet[int],
    decoded: FrozenSet[int],
) -> str:
    return _dumps(
        {
            "kind": "start",
            "slot": slot,
            "tx": tx,
            "sender": sender,
            "sensed": sorted(sensed),
            "decoded": sorted(decoded),
        }
    )


def end_line(
    slot: Slots,
    tx: int,
    sender: int,
    sensed: FrozenSet[int],
    observed: ObservedTransmission,
) -> str:
    return _dumps(
        {
            "kind": "end",
            "slot": slot,
            "tx": tx,
            "sender": sender,
            "sensed": sorted(sensed),
            "observed": observed_to_json(observed),
        }
    )


def positions_line(slot: Slots, positions: Dict[int, Tuple[float, float]]) -> str:
    return _dumps(
        {
            "kind": "positions",
            "slot": slot,
            "positions": {
                str(node): [x, y]
                for node, (x, y) in sorted(positions.items())
            },
        }
    )


def shutdown_line(slot: Slots) -> str:
    return _dumps({"kind": "shutdown", "slot": slot})
