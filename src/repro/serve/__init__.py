"""Streaming detection-as-a-service (``repro serve``).

Replays :class:`~repro.core.observation.ObservedTransmission` wire
records — from stdin, a file, a tailed file, or a unix socket — through
the shared observation plane with bounded memory: pruned busy
timelines, compacted demuxes, capped observation stores, and an
LRU-bounded link table.  Verdicts, audit records, provenance, and
Prometheus metrics stream out incrementally, byte-identical to an
in-process observatory run over the same events.
"""

from repro.serve.capture import (
    STREAM_SCENARIOS,
    StreamCapture,
    capture_scenario,
    synthetic_links,
    synthetic_stream,
)
from repro.serve.ingest import (
    DEFAULT_QUEUE_CAP,
    BoundedLineQueue,
    iter_file,
    iter_follow,
    iter_handle,
    iter_socket,
)
from repro.serve.links import (
    EventClock,
    LinkKey,
    LinkState,
    LinkTable,
    ObservationLedger,
    TaggedAuditLog,
    TaggedProvenanceLog,
)
from repro.serve.records import (
    REJECT_REASONS,
    EndEvent,
    PositionsEvent,
    RecordRejected,
    ShutdownEvent,
    StartEvent,
    StreamEvent,
    end_line,
    parse_line,
    positions_line,
    shutdown_line,
    start_line,
)
from repro.serve.server import (
    LinkExport,
    ServeConfig,
    ServeResult,
    ServeSession,
    export_detector,
    merged_audit_jsonl,
    merged_provenance_jsonl,
    result_fingerprint,
    shard_of,
)
from repro.serve.shard import merge_results, run_serve

__all__ = [
    "STREAM_SCENARIOS",
    "StreamCapture",
    "capture_scenario",
    "synthetic_links",
    "synthetic_stream",
    "DEFAULT_QUEUE_CAP",
    "BoundedLineQueue",
    "iter_file",
    "iter_follow",
    "iter_handle",
    "iter_socket",
    "EventClock",
    "LinkKey",
    "LinkState",
    "LinkTable",
    "ObservationLedger",
    "TaggedAuditLog",
    "TaggedProvenanceLog",
    "REJECT_REASONS",
    "EndEvent",
    "PositionsEvent",
    "RecordRejected",
    "ShutdownEvent",
    "StartEvent",
    "StreamEvent",
    "end_line",
    "parse_line",
    "positions_line",
    "shutdown_line",
    "start_line",
    "LinkExport",
    "ServeConfig",
    "ServeResult",
    "ServeSession",
    "export_detector",
    "merged_audit_jsonl",
    "merged_provenance_jsonl",
    "result_fingerprint",
    "shard_of",
    "merge_results",
    "run_serve",
]
