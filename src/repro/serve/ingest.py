"""Line sources for the streaming server: stdin, file, tail, socket.

Every source yields raw text lines; the session parses and counts them.
Backpressure is explicit and observable: burst sources (socket reads,
tail polls) stage lines through a :class:`BoundedLineQueue` that drops
the *oldest* staged line on overflow and counts every drop — the server
never blocks the producer silently and never grows without bound.

``time.sleep`` is the only clock use here (poll pacing for the tail
source); the determinism lint bans wall-clock *reads*, and none happen.
"""

from __future__ import annotations

import os
import socket
import time
from collections import deque
from typing import Deque, Iterable, Iterator, Optional

#: Default capacity of the staging queue (lines).
DEFAULT_QUEUE_CAP = 65536

#: Default pause between tail polls, in seconds.
DEFAULT_POLL_S = 0.05


class BoundedLineQueue:
    """A drop-oldest staging queue with a public drop counter."""

    def __init__(self, cap: int = DEFAULT_QUEUE_CAP) -> None:
        if cap < 1:
            raise ValueError(f"queue cap must be >= 1, got {cap}")
        self.cap = cap
        self.dropped = 0
        self._lines: Deque[str] = deque()

    def __len__(self) -> int:
        return len(self._lines)

    def push(self, line: str) -> None:
        """Stage one line, evicting the oldest staged line when full."""
        if len(self._lines) >= self.cap:
            self._lines.popleft()
            self.dropped += 1
        self._lines.append(line)

    def push_all(self, lines: Iterable[str]) -> None:
        for line in lines:
            self.push(line)

    def pop(self) -> Optional[str]:
        return self._lines.popleft() if self._lines else None

    def drain(self) -> Iterator[str]:
        while self._lines:
            yield self._lines.popleft()


def iter_file(path: str) -> Iterator[str]:
    """Every line of ``path``, once (the replay source)."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            yield line


def iter_handle(handle: Iterable[str]) -> Iterator[str]:
    """Lines from an open text handle (stdin)."""
    for line in handle:
        yield line


def iter_follow(
    path: str,
    queue: Optional[BoundedLineQueue] = None,
    poll_s: float = DEFAULT_POLL_S,
    max_polls: Optional[int] = None,
) -> Iterator[str]:
    """Tail ``path``: replay existing lines, then poll for appends.

    Runs until the consumer stops iterating (the session breaks on a
    ``shutdown`` record) or ``max_polls`` consecutive empty polls (None
    = forever; tests bound it).  Partial trailing lines are held back
    until their newline arrives.
    """
    staging = queue if queue is not None else BoundedLineQueue()
    empty_polls = 0
    carry = ""
    with open(path, "r", encoding="utf-8") as handle:
        while True:
            chunk = handle.read()
            if chunk:
                empty_polls = 0
                carry += chunk
                lines = carry.split("\n")
                carry = lines.pop()
                staging.push_all(line for line in lines if line)
                for line in staging.drain():
                    yield line
                continue
            empty_polls += 1
            if max_polls is not None and empty_polls >= max_polls:
                return
            time.sleep(poll_s)


def iter_socket(
    path: str,
    queue: Optional[BoundedLineQueue] = None,
    chunk_bytes: int = 1 << 16,
) -> Iterator[str]:
    """Serve one client on an ``AF_UNIX`` stream socket at ``path``.

    Binds, accepts a single connection, and yields its lines until the
    client disconnects (a ``shutdown`` record lets the client end the
    stream explicitly first).  Reads are staged through the bounded
    queue, so a burst larger than the cap drops its oldest lines
    instead of growing the heap.
    """
    staging = queue if queue is not None else BoundedLineQueue()
    if os.path.exists(path):
        os.unlink(path)
    server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        server.bind(path)
        server.listen(1)
        conn, _addr = server.accept()
        try:
            carry = b""
            while True:
                chunk = conn.recv(chunk_bytes)
                if not chunk:
                    break
                carry += chunk
                raw_lines = carry.split(b"\n")
                carry = raw_lines.pop()
                staging.push_all(
                    raw.decode("utf-8", errors="replace")
                    for raw in raw_lines
                    if raw
                )
                for line in staging.drain():
                    yield line
            if carry:
                staging.push(carry.decode("utf-8", errors="replace"))
            for line in staging.drain():
                yield line
        finally:
            conn.close()
    finally:
        server.close()
        if os.path.exists(path):
            os.unlink(path)
