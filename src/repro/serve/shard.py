"""Sharded stream replay over the fork pool.

Every worker parses the *whole* stream (parsing is cheap and keeps the
stream-level counters worker-identical) but attaches only the links its
:func:`~repro.serve.server.shard_of` hash owns.  Because link ownership
and the global attach numbering are pure functions of the stream, the
merged per-link artifacts — and the event-tag-merged audit/provenance
interleavings — are byte-identical at any worker count.

The one contract caveat: LRU eviction under ``max_links`` is applied
*per worker table*, so a capped table only matches across worker counts
when no eviction fires (the soak suite caps at ``jobs=1``).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, List, Optional, Sequence, TextIO

from repro.obs.registry import MetricsRegistry
from repro.serve.links import LinkKey
from repro.serve.server import ServeConfig, ServeResult, ServeSession
from repro.util.pool import fork_map, resolve_jobs


def run_serve(
    lines: Iterable[str],
    config: Optional[ServeConfig] = None,
    links: Sequence[LinkKey] = (),
    jobs: Optional[int] = None,
    audit_sink: Optional[TextIO] = None,
    provenance_sink: Optional[TextIO] = None,
) -> ServeResult:
    """Replay a stream through one session or a sharded worker set.

    At ``jobs=1`` the audit/provenance sinks receive records
    *incrementally* (each flush appends the newly concrete rows); with
    workers the per-shard records are event-tag-merged and written once
    at the end — same bytes, different latency.
    """
    base = config if config is not None else ServeConfig()
    worker_count = resolve_jobs(jobs)
    if worker_count <= 1:
        session = ServeSession(
            replace(base, shard_index=0, shard_count=1),
            links=links,
            audit_sink=audit_sink,
            provenance_sink=provenance_sink,
        )
        return session.run(lines)
    # Workers each need the full stream; materialize once, fork shares
    # the pages copy-on-write.
    line_list = list(lines)

    def _run_shard(shard_index: int) -> ServeResult:
        session = ServeSession(
            replace(base, shard_index=shard_index, shard_count=worker_count),
            links=links,
        )
        return session.run(line_list)

    shards = fork_map(_run_shard, list(range(worker_count)), jobs=worker_count)
    merged = merge_results([s for s in shards if s is not None])
    if audit_sink is not None:
        text = merged.audit_jsonl()
        if text:
            audit_sink.write(text + "\n")
    if provenance_sink is not None:
        text = merged.provenance_jsonl()
        if text:
            provenance_sink.write(text + "\n")
    return merged


def merge_results(shards: Sequence[ServeResult]) -> ServeResult:
    """Fold per-shard results into one (see module docstring)."""
    if not shards:
        raise ValueError("no shard results to merge")
    links = sorted(
        (link for shard in shards for link in shard.links),
        key=lambda link: link.attach_seq,
    )
    # Stream-level counters are worker-identical (every shard parses
    # every line); link-level counters are disjoint and add.
    link_registry = MetricsRegistry()
    tracked = 0.0
    for shard in shards:
        snapshot = dict(shard.link_snapshot)
        gauges = dict(snapshot.get("gauges", {}))  # type: ignore[arg-type]
        tracked += float(gauges.pop("serve.links.tracked", 0.0))
        snapshot["gauges"] = gauges
        link_registry.merge_snapshot(snapshot)
    link_registry.set_gauge("serve.links.tracked", tracked)
    return ServeResult(
        links=links,
        stream_snapshot=shards[0].stream_snapshot,
        link_snapshot=link_registry.snapshot(),
        events=shards[0].events,
        flushes=sum(shard.flushes for shard in shards),
        pruned_intervals=sum(shard.pruned_intervals for shard in shards),
        compacted_observations=sum(
            shard.compacted_observations for shard in shards
        ),
        evicted_links=sum(shard.evicted_links for shard in shards),
        jobs=len(shards),
    )
