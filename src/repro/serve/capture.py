"""Producing serve streams: live capture, canned scenarios, synthesis.

Three sources of ``repro serve`` input live here:

* :class:`StreamCapture` — a :class:`~repro.sim.listeners.SimulationListener`
  that serializes a live simulation's engine dispatches into wire lines,
  resolving exactly the per-event facts the observatory's engine hooks
  resolve (sensor sets at start *and* end, clean-decode flags at start)
  so a replay through :class:`~repro.serve.server.ServeSession`
  reproduces the in-process detection byte-for-byte;
* :func:`capture_scenario` — named canonical scenario captures
  (:data:`STREAM_SCENARIOS`) shared by the equivalence suite, the CI
  smoke step, and ``python -m repro.serve.capture``;
* :func:`synthetic_stream` — a closed-form honest-traffic generator
  (every link rides the paper's ``busy == 0`` deterministic-estimate
  regime) that scales to hundreds of thousands of links for the soak
  and memory benches without simulating anything.
"""

from __future__ import annotations

import argparse
import heapq
import sys
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    TextIO,
    Tuple,
)

from repro.core.observation import ObservedTransmission
from repro.mac.constants import DEFAULT_TIMING, MacTiming
from repro.mac.frames import RtsFrame
from repro.mac.misbehavior import PercentageMisbehavior
from repro.mac.prng import VerifiableBackoffPrng
from repro.serve.links import LinkKey
from repro.serve.records import (
    end_line,
    positions_line,
    shutdown_line,
    start_line,
)
from repro.sim.listeners import SimulationListener
from repro.util.units import Slots

if TYPE_CHECKING:  # pragma: no cover - import-time only
    from repro.phy.medium import Medium, Transmission

Position = Tuple[float, float]


class StreamCapture(SimulationListener):
    """Serialize a live run's engine dispatches as serve wire lines.

    ``pairs`` scopes the capture: sensed sets are filtered to the
    monitors and tagged nodes involved (the only ids any serve-side
    query inspects), decode flags and frames are only resolved for
    tagged senders, and positions are filtered the same way.
    """

    def __init__(self, pairs: Sequence[LinkKey]) -> None:
        self.pairs = list(pairs)
        self.monitors = frozenset(monitor for monitor, _tagged in pairs)
        self.taggeds = frozenset(tagged for _monitor, tagged in pairs)
        self.scope = self.monitors | self.taggeds
        self.lines: List[str] = []
        self.last_slot: Slots = 0
        self._tx_keys: Dict[int, int] = {}
        self._next_tx = 0

    def _scoped_sensors(self, sender: int, medium) -> frozenset:
        sensors = medium.sensors_of(sender)
        return frozenset(node for node in self.scope if node in sensors)

    def on_transmission_start(
        self, slot: Slots, transmission: "Transmission", medium: "Medium"
    ) -> None:
        sender = transmission.sender
        tx = self._next_tx
        self._next_tx += 1
        self._tx_keys[id(transmission)] = tx
        decoded = frozenset()
        if sender in self.taggeds:
            decoded = frozenset(
                monitor
                for monitor in self.monitors
                if monitor != sender and medium.clean_decode(sender, monitor)
            )
        self.lines.append(
            start_line(
                slot, tx, sender, self._scoped_sensors(sender, medium), decoded
            )
        )
        self.last_slot = max(self.last_slot, slot)

    def on_transmission_end(
        self,
        slot: Slots,
        transmission: "Transmission",
        success: bool,
        medium: "Medium",
    ) -> None:
        sender = transmission.sender
        tx = self._tx_keys.pop(id(transmission))
        # Only tagged-scope frames ride the wire: background traffic
        # contributes busy intervals, never demuxed announcements.
        frame = transmission.frame if sender in self.taggeds else None
        observed = ObservedTransmission(
            start_slot=transmission.start_slot,
            end_slot=transmission.end_slot,
            rts=frame,
            success=success,
            receiver=transmission.receiver,
            impairment=None,
        )
        self.lines.append(
            end_line(
                slot, tx, sender, self._scoped_sensors(sender, medium), observed
            )
        )
        self.last_slot = max(self.last_slot, slot)

    def on_positions_updated(
        self, slot: Slots, positions: Dict[int, Position], medium: "Medium"
    ) -> None:
        scoped = {
            node: positions[node] for node in self.scope if node in positions
        }
        self.lines.append(positions_line(slot, scoped))
        self.last_slot = max(self.last_slot, slot)

    def finished_lines(self) -> List[str]:
        """The captured stream with its terminating shutdown record."""
        return self.lines + [shutdown_line(self.last_slot)]


def _capture_grid(duration_s: float):
    from repro.experiments.scenarios import GridScenario

    scenario = GridScenario(seed=11)
    sim, sender, monitor = scenario.build()
    return sim, [(monitor, sender)], scenario.separation, duration_s


def _capture_cheater_grid(duration_s: float):
    from repro.experiments.scenarios import GridScenario
    from repro.topology.placement import center_pair_indices

    scenario = GridScenario(seed=11)
    cheater, _monitor = center_pair_indices(scenario.rows, scenario.cols)
    sim, sender, monitor = scenario.build(
        policies={cheater: PercentageMisbehavior(60)}
    )
    return sim, [(monitor, sender)], scenario.separation, duration_s


def _capture_random(duration_s: float):
    from repro.experiments.scenarios import RandomScenario

    scenario = RandomScenario(seed=5)
    sim, sender, monitor = scenario.build()
    return sim, [(monitor, sender)], scenario.separation, duration_s


def _capture_mobile(duration_s: float):
    from repro.experiments.scenarios import RandomScenario

    scenario = RandomScenario(seed=5, mobile=True)
    sim, sender, monitor = scenario.build()
    return sim, [(monitor, sender)], scenario.separation, duration_s


def _capture_multi(duration_s: float):
    from repro.experiments.scenarios import MultiMonitorGridScenario

    scenario = MultiMonitorGridScenario(seed=7)
    taggeds = scenario.tagged_nodes()
    policies = {
        taggeds[0]: PercentageMisbehavior(60),
        taggeds[2]: PercentageMisbehavior(75),
    }
    sim, pairs = scenario.build(policies=policies)
    return sim, pairs, scenario.separation, duration_s


#: Named canonical captures: the equivalence goldens and the CI smoke.
STREAM_SCENARIOS = {
    "grid": _capture_grid,
    "grid-cheat": _capture_cheater_grid,
    "random": _capture_random,
    "mobile": _capture_mobile,
    "multi": _capture_multi,
}


def capture_scenario(
    name: str, duration_s: float = 3.0
) -> Tuple[List[str], List[LinkKey], float]:
    """Run one named scenario and capture its serve stream.

    Returns ``(lines, pairs, separation)``; the lines end with a
    shutdown record.  Construction is same-seed deterministic, so two
    captures of the same name are byte-identical (given fresh process
    state — the test fixtures handle that).
    """
    builder = STREAM_SCENARIOS.get(name)
    if builder is None:
        raise ValueError(
            f"unknown stream scenario {name!r}; "
            f"known: {sorted(STREAM_SCENARIOS)}"
        )
    sim, pairs, separation, duration_s = builder(duration_s)
    capture = StreamCapture(pairs)
    sim.add_listener(capture)
    sim.run(duration_s)
    return capture.finished_lines(), pairs, separation


def synthetic_stream(
    n_links: int,
    samples_per_link: int,
    timing: MacTiming = DEFAULT_TIMING,
    monitor_base: int = 1_000_000,
    tagged_base: int = 2_000_000,
    start_slot: int = 0,
    emit_shutdown: bool = True,
) -> Iterator[str]:
    """Honest traffic on ``n_links`` isolated links, heap-interleaved.

    Link ``i`` is ``(monitor_base + i, tagged_base + i)``; only its own
    monitor senses its transmissions, every inter-frame gap is exactly
    ``difs + dictated`` idle slots, and ``seq_off`` advances by one —
    each observation lands in the paper's deterministic ``busy == 0``
    regime with ``estimated == dictated`` (a clean rank-sum diet with
    zero quarantine noise, ideal for soak and memory benches).

    ``start_slot`` offsets the whole stream along the slot axis and
    ``emit_shutdown=False`` suppresses the terminating shutdown record,
    so multiple phases (cold churn, then hot traffic) can be
    concatenated into one well-ordered stream.
    """
    if n_links < 1:
        raise ValueError(f"n_links must be >= 1, got {n_links}")

    def link_events(index: int) -> Iterator[Tuple[int, int, int, str]]:
        monitor = monitor_base + index
        tagged = tagged_base + index
        prng = VerifiableBackoffPrng(tagged, timing.cw_min, timing.cw_max)
        slot = start_slot + index % 97  # stagger link phases
        for seq_off in range(samples_per_link):
            gap = timing.difs_slots + prng.dictated_backoff(seq_off, 1)
            start = slot + gap
            end = start + timing.exchange_slots
            tx = index * (samples_per_link + 1) + seq_off
            # Fresh DATA digest per frame: the attempt verifier reads a
            # repeated digest as a retransmission, which must not
            # announce attempt 1 again.
            frame = RtsFrame(
                sender=tagged,
                receiver=monitor,
                seq_off=seq_off,
                attempt=1,
                digest=((index << 64) | seq_off).to_bytes(16, "big"),
            )
            yield (
                start,
                index,
                0,
                start_line(
                    start,
                    tx,
                    tagged,
                    frozenset((monitor,)),
                    frozenset((monitor,)),
                ),
            )
            yield (
                end,
                index,
                1,
                end_line(
                    end,
                    tx,
                    tagged,
                    frozenset((monitor,)),
                    ObservedTransmission(
                        start_slot=start,
                        end_slot=end,
                        rts=frame,
                        success=True,
                        receiver=monitor,
                        impairment=None,
                    ),
                ),
            )
            slot = end

    last_slot = 0
    merged = heapq.merge(*(link_events(i) for i in range(n_links)))
    for slot, _index, _order, line in merged:
        last_slot = max(last_slot, slot)
        yield line
    if emit_shutdown:
        yield shutdown_line(last_slot)


def synthetic_links(
    n_links: int,
    monitor_base: int = 1_000_000,
    tagged_base: int = 2_000_000,
) -> List[LinkKey]:
    """The link keys :func:`synthetic_stream` transmits on."""
    return [
        (monitor_base + i, tagged_base + i) for i in range(n_links)
    ]


def main(argv: Optional[Sequence[str]] = None, out: Optional[TextIO] = None) -> int:
    """``python -m repro.serve.capture``: write a named stream to a file."""
    parser = argparse.ArgumentParser(
        prog="repro-capture",
        description="Capture a canonical scenario as a repro-serve stream.",
    )
    parser.add_argument(
        "scenario",
        choices=sorted(STREAM_SCENARIOS),
        help="named scenario to simulate and capture",
    )
    parser.add_argument(
        "--duration",
        dest="duration_s",
        type=float,
        default=3.0,
        metavar="SECONDS",
        help="simulated duration (default: 3.0)",
    )
    parser.add_argument(
        "--out",
        default="-",
        metavar="PATH",
        help="output path ('-' = stdout, the default)",
    )
    options = parser.parse_args(argv)
    lines, pairs, separation = capture_scenario(
        options.scenario, options.duration_s
    )
    header = out if out is not None else sys.stderr
    if options.out == "-":
        sink = out if out is not None else sys.stdout
        for line in lines:
            sink.write(line + "\n")
    else:
        with open(options.out, "w", encoding="utf-8") as handle:
            for line in lines:
                handle.write(line + "\n")
        header.write(
            f"captured {len(lines)} lines, {len(pairs)} links, "
            f"separation {separation:.1f} m -> {options.out}\n"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
