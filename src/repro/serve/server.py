"""The streaming detection session: demux, evaluate, emit, bound memory.

:class:`ServeSession` replays a wire stream (:mod:`repro.serve.records`)
through the exact in-process machinery — a
:class:`~repro.core.observatory.SharedChannelObservatory` of scalar
:class:`~repro.core.detector.BackoffMisbehaviorDetector` subscriptions —
via the observatory's medium-free ``ingest_*`` methods.  Three things
distinguish it from a simulator run:

* **Coalesced evaluation.** Every detector's ready windows defer to one
  session-owned :class:`~repro.core.observatory.BatchScheduler` flushed
  every ``flush_every`` end events, so
  :func:`~repro.core.batch.rank_sum_many` ranks hundreds-to-thousands of
  windows per call.  Because deferral snapshots the window *and* the
  provenance counters at the event that produced it, and log indices are
  reserved then, verdicts/audit/provenance are byte-identical to eager
  per-event evaluation at any flush cadence.

* **Bounded memory.** Channel timelines are pruned behind the oldest
  slot any live query can reach, subscription demuxes are compacted
  behind the sample anchor, the observation store can be capped with
  virtual indices intact, and the link table LRU-evicts under
  ``max_links``.

* **Sharding.** With ``shard_count > 1`` the session only attaches
  links whose :func:`shard_of` hash it owns; per-record event-index
  tags let :func:`merged_audit_jsonl` reassemble the single-process log
  order from any worker layout.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, TextIO, Tuple

from repro.core.detector import BackoffMisbehaviorDetector, DetectorConfig
from repro.core.observatory import BatchScheduler, SharedChannelObservatory
from repro.core.records import BackoffObservation, Verdict
from repro.mac.prng import splitmix64
from repro.obs.audit import AuditRecord, DecisionAuditLog
from repro.obs.provenance import ProvenanceLog, ProvenanceRecord
from repro.obs.registry import MetricsRegistry
from repro.serve.links import (
    EventClock,
    LinkKey,
    LinkState,
    LinkTable,
    ObservationLedger,
    TaggedAuditLog,
    TaggedProvenanceLog,
    compact_link,
)
from repro.serve.records import (
    REASON_DUPLICATE_TX,
    REASON_ORPHAN_END,
    REASON_OUT_OF_ORDER,
    EndEvent,
    PositionsEvent,
    RecordRejected,
    ShutdownEvent,
    StartEvent,
    StreamEvent,
    parse_line,
)
from repro.util.units import Slots

FINGERPRINT_SCHEMA = "repro.serve/fingerprint/v1"


def shard_of(monitor: int, sender: int, shard_count: int) -> int:
    """The worker that owns link (monitor, sender): a splitmix64 hash.

    Pure function of the key — every worker, at any ``shard_count``,
    agrees on ownership without coordination.
    """
    if shard_count <= 1:
        return 0
    return splitmix64((monitor << 32) ^ (sender & 0xFFFFFFFF)) % shard_count


@dataclass
class ServeConfig:
    """Session policy: detection config plus memory/flush/shard knobs."""

    detector: DetectorConfig = field(default_factory=DetectorConfig)
    separation: Optional[float] = None
    #: end events between scheduler flushes (1 = eager per-event)
    flush_every: int = 64
    #: end events between prune/compact sweeps (0 = never)
    maintain_every: int = 4096
    #: cap on tracked links in *this* table (None = unbounded)
    max_links: Optional[int] = None
    #: cap on retained observations per link (None = keep all)
    observation_retention: Optional[int] = None
    #: auto-register links for every decoded (monitor, sender) pair
    discover: bool = True
    shard_index: int = 0
    shard_count: int = 1

    def __post_init__(self) -> None:
        if self.detector.stats_backend != "scalar":
            # Batched channels log every end slot forever (replay
            # scripts for the lazy feeds) — unbounded by design.  The
            # session gets its batching from the shared scheduler
            # instead, over prunable scalar channels.
            raise ValueError(
                "ServeConfig requires stats_backend='scalar'; the session's "
                "own BatchScheduler provides the vectorized evaluation"
            )
        if self.flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {self.flush_every}")
        if self.maintain_every < 0:
            raise ValueError(
                f"maintain_every must be >= 0, got {self.maintain_every}"
            )
        if not 0 <= self.shard_index < max(self.shard_count, 1):
            raise ValueError(
                f"shard_index {self.shard_index} outside shard_count "
                f"{self.shard_count}"
            )


@dataclass
class LinkExport:
    """One link's full detection record, picklable across the fork pool."""

    monitor: int
    tagged: int
    attach_seq: int
    discovered: bool
    observations: List[BackoffObservation]
    verdicts: List[Verdict]
    violations: List[str]
    quarantine_counts: Dict[str, int]
    skipped_samples: int
    audit_records: List[AuditRecord]
    audit_tags: List[int]
    provenance_records: List[ProvenanceRecord]
    provenance_tags: List[int]
    last_active: int

    def audit_jsonl(self) -> str:
        return DecisionAuditLog(self.audit_records).to_jsonl()

    def provenance_jsonl(self) -> str:
        return ProvenanceLog(self.provenance_records).to_jsonl()

    def fingerprint(self) -> str:
        """sha256 over everything detection produced for this link."""
        digest = hashlib.sha256()
        for chunk in (
            "\n".join(repr(o) for o in self.observations),
            "\n".join(repr(v) for v in self.verdicts),
            "\n".join(self.violations),
            self.audit_jsonl(),
            self.provenance_jsonl(),
            json.dumps(sorted(self.quarantine_counts.items())),
            str(self.skipped_samples),
        ):
            digest.update(chunk.encode("ascii", errors="backslashreplace"))
            digest.update(b"\x00")
        return digest.hexdigest()


def export_detector(
    monitor: int,
    tagged: int,
    attach_seq: int,
    detector: BackoffMisbehaviorDetector,
    audit: DecisionAuditLog,
    provenance: ProvenanceLog,
    discovered: bool = False,
    audit_tags: Optional[List[int]] = None,
    provenance_tags: Optional[List[int]] = None,
    last_active: int = 0,
) -> LinkExport:
    """Snapshot one detector (live or streamed) as a :class:`LinkExport`.

    The equivalence suite runs this over in-process detectors too, so
    both sides of the serve-vs-simulator comparison share one codec.
    """
    return LinkExport(
        monitor=monitor,
        tagged=tagged,
        attach_seq=attach_seq,
        discovered=discovered,
        observations=list(detector.observations),
        verdicts=list(detector.verdicts),
        violations=[repr(v) for v in detector.violations],
        quarantine_counts=dict(detector.quarantine_counts),
        skipped_samples=detector.skipped_samples,
        audit_records=list(audit.records),
        audit_tags=list(audit_tags or []),
        provenance_records=list(provenance.records),
        provenance_tags=list(provenance_tags or []),
        last_active=last_active,
    )


def merged_audit_jsonl(links: Sequence[LinkExport]) -> str:
    """All links' audit records in single-process publication order.

    Sort key ``(event tag, attach order, per-link index)``: within one
    stream event only one tagged node's links publish, in attach order,
    each appending in sequence — exactly the interleaving one shared
    in-process log records.  Worker layout cannot change any component,
    so the merge is jobs-invariant.
    """
    rows: List[Tuple[Tuple[int, int, int], str]] = []
    for link in links:
        for idx, record in enumerate(link.audit_records):
            tag = link.audit_tags[idx] if idx < len(link.audit_tags) else 0
            rows.append(
                (
                    (tag, link.attach_seq, idx),
                    json.dumps(
                        record.to_dict(), sort_keys=True, separators=(",", ":")
                    ),
                )
            )
    rows.sort(key=lambda row: row[0])
    return "\n".join(line for _key, line in rows)


def merged_provenance_jsonl(links: Sequence[LinkExport]) -> str:
    """All links' provenance records in publication order (see audit)."""
    rows: List[Tuple[Tuple[int, int, int], str]] = []
    for link in links:
        for idx, record in enumerate(link.provenance_records):
            tag = (
                link.provenance_tags[idx]
                if idx < len(link.provenance_tags)
                else 0
            )
            rows.append(
                (
                    (tag, link.attach_seq, idx),
                    json.dumps(
                        record.to_dict(), sort_keys=True, separators=(",", ":")
                    ),
                )
            )
    rows.sort(key=lambda row: row[0])
    return "\n".join(line for _key, line in rows)


def result_fingerprint(links: Sequence[LinkExport]) -> Dict[str, object]:
    """Deterministic digest of a serve (or in-process) detection run."""
    ordered = sorted(links, key=lambda link: (link.monitor, link.tagged))
    per_link = {
        f"{link.monitor}->{link.tagged}": link.fingerprint()
        for link in ordered
    }
    combined = hashlib.sha256()
    for name, sha in per_link.items():
        combined.update(f"{name}:{sha}\n".encode("ascii"))
    return {
        "schema": FINGERPRINT_SCHEMA,
        "combined": combined.hexdigest(),
        "links": per_link,
        "link_count": len(ordered),
        "verdicts": sum(len(link.verdicts) for link in ordered),
        "observations": sum(len(link.observations) for link in ordered),
    }


@dataclass
class ServeResult:
    """What a completed session (or a merged shard set) reports."""

    links: List[LinkExport]
    stream_snapshot: Dict[str, object]
    link_snapshot: Dict[str, object]
    events: int
    flushes: int
    pruned_intervals: int
    compacted_observations: int
    evicted_links: int
    jobs: int = 1

    def audit_jsonl(self) -> str:
        return merged_audit_jsonl(self.links)

    def provenance_jsonl(self) -> str:
        return merged_provenance_jsonl(self.links)

    def fingerprint(self) -> Dict[str, object]:
        return result_fingerprint(self.links)

    def summary(self) -> Dict[str, object]:
        counters = self.stream_snapshot.get("counters", {})
        rejected = {
            name.split("serve.rejected.", 1)[1]: count
            for name, count in sorted(counters.items())
            if name.startswith("serve.rejected.")
        }
        return {
            "links": len(self.links),
            "events": self.events,
            "verdicts": sum(len(link.verdicts) for link in self.links),
            "violations": sum(len(link.violations) for link in self.links),
            "observations": sum(
                len(link.observations) for link in self.links
            ),
            "flushes": self.flushes,
            "rejected": rejected,
            "evicted_links": self.evicted_links,
            "jobs": self.jobs,
        }


class ServeSession:
    """One worker's streaming detection loop (see module docstring)."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        links: Sequence[LinkKey] = (),
        audit_sink: Optional[TextIO] = None,
        provenance_sink: Optional[TextIO] = None,
    ) -> None:
        self.config = config if config is not None else ServeConfig()
        self.observatory = SharedChannelObservatory()
        # O(involved channels) per event instead of O(all channels) —
        # byte-identical artifacts, mandatory at serve link counts.
        self.observatory.enable_lazy_ingest()
        self.scheduler = BatchScheduler()
        self.stream_metrics = MetricsRegistry()
        self.link_metrics = MetricsRegistry()
        self.clock = EventClock()
        self.table = LinkTable(self.config.max_links)
        self.audit_sink = audit_sink
        self.provenance_sink = provenance_sink
        #: every link key ever seen, with its global attach sequence —
        #: numbering is a pure function of the stream, shared by every
        #: shard layout (non-owned links get a number but no state)
        self._known_links: Dict[LinkKey, int] = {}
        self._inflight: Dict[int, int] = {}
        self._last_slot: Optional[Slots] = None
        self._current_slot: Slots = 0
        self._ends_since_flush = 0
        self._ends_since_maintain = 0
        self.flushes = 0
        self.pruned_intervals = 0
        self.compacted_observations = 0
        self.shutdown = False
        self.finished = False
        for monitor, tagged in links:
            self._ensure_link(monitor, tagged, discovered=False)

    # -- link management ---------------------------------------------------

    def _owns(self, monitor: int, tagged: int) -> bool:
        return (
            shard_of(monitor, tagged, self.config.shard_count)
            == self.config.shard_index
        )

    def _ensure_link(
        self, monitor: int, tagged: int, discovered: bool
    ) -> Optional[LinkState]:
        key = (monitor, tagged)
        seq = self._known_links.setdefault(key, len(self._known_links))
        state = self.table.get(key)
        if state is not None:
            return state
        if not self._owns(monitor, tagged):
            return None
        if self.table.needs_eviction():
            self._evict(self.table.pick_victim())
        audit = TaggedAuditLog(self.clock)
        provenance = TaggedProvenanceLog(self.clock)
        detector = self.observatory.attach(
            monitor,
            tagged,
            config=self.config.detector,
            separation=self.config.separation,
            audit=audit,
            metrics=self.link_metrics,
            provenance=provenance,
        )
        # Scalar detectors evaluate eagerly on their own; pointing them
        # at the session scheduler defers every ready window to the
        # flush-cadence rank_sum_many batch instead (byte-identical —
        # the deferral snapshots window + counters and reserves log
        # indices at the producing event).
        detector._batch_scheduler = self.scheduler
        ledger: Optional[ObservationLedger] = None
        if self.config.observation_retention is not None:
            ledger = ObservationLedger(self.config.observation_retention)
            detector.observations = ledger  # type: ignore[assignment]
        state = LinkState(
            monitor=monitor,
            tagged=tagged,
            attach_seq=seq,
            discovered=discovered,
            detector=detector,
            subscription=detector.observer,  # type: ignore[arg-type]
            audit=audit,
            provenance=provenance,
            last_active=self.clock.index,
            ledger=ledger,
        )
        self.table.insert(state)
        self.link_metrics.inc(
            "serve.links.discovered" if discovered else "serve.links.registered"
        )
        return state

    def _evict(self, state: LinkState) -> None:
        """Detach and drop the LRU link (its artifacts are released)."""
        # Unfilled reservations from un-flushed windows would be left
        # dangling; flush first so every log is concrete.
        self._flush()
        self.observatory.detach(state.detector)
        self.table.remove(state)
        self.link_metrics.inc("serve.links.evicted")

    # -- stream handling ---------------------------------------------------

    def handle_line(self, line: str) -> Optional[StreamEvent]:
        """Parse and apply one line; rejects are counted, never raised."""
        self.stream_metrics.inc("serve.lines")
        try:
            event = parse_line(line)
            if event is None:
                return None
            self.handle_event(event)
        except RecordRejected as rejected:
            self.stream_metrics.inc(f"serve.rejected.{rejected.reason}")
            return None
        return event

    def handle_event(self, event: StreamEvent) -> None:
        """Apply one parsed event (session-level rejects still raise)."""
        if self._last_slot is not None and event.slot < self._last_slot:
            raise RecordRejected(
                REASON_OUT_OF_ORDER,
                f"slot {event.slot} after slot {self._last_slot}",
            )
        if isinstance(event, StartEvent):
            self._apply_start(event)
        elif isinstance(event, EndEvent):
            self._apply_end(event)
        elif isinstance(event, PositionsEvent):
            self._apply_positions(event)
        else:
            self.shutdown = True
            self.stream_metrics.inc("serve.events.shutdown")
        self._last_slot = event.slot

    def _accept(self, event: StreamEvent, kind: str) -> None:
        self.clock.index += 1
        self._current_slot = event.slot
        self.stream_metrics.inc(f"serve.events.{kind}")

    def _apply_start(self, event: StartEvent) -> None:
        if event.tx in self._inflight:
            raise RecordRejected(
                REASON_DUPLICATE_TX, f"tx {event.tx} already in flight"
            )
        self._accept(event, "start")
        self._inflight[event.tx] = event.sender
        if self.config.discover:
            for monitor in sorted(event.decoded):
                if monitor != event.sender:
                    self._ensure_link(monitor, event.sender, discovered=True)
        self.observatory.ingest_start(
            event.slot, event.tx, event.sender, event.sensed, event.decoded
        )

    def _apply_end(self, event: EndEvent) -> None:
        if event.tx not in self._inflight:
            raise RecordRejected(
                REASON_ORPHAN_END, f"tx {event.tx} never started"
            )
        self._accept(event, "end")
        del self._inflight[event.tx]
        for state in self.table.by_tagged(event.sender):
            state.last_active = self.clock.index
        observed = event.observed
        self.observatory.ingest_end(
            event.slot,
            event.tx,
            event.sender,
            observed.receiver,
            observed.start_slot,
            observed.end_slot,
            observed.success,
            observed.rts,
            event.sensed,
        )
        self._ends_since_flush += 1
        if self._ends_since_flush >= self.config.flush_every:
            self._flush()
        self._ends_since_maintain += 1
        if (
            self.config.maintain_every
            and self._ends_since_maintain >= self.config.maintain_every
        ):
            self._maintain()

    def _apply_positions(self, event: PositionsEvent) -> None:
        self._accept(event, "positions")
        self.observatory.ingest_positions(event.slot, dict(event.positions))

    def run(self, lines: Iterable[str]) -> "ServeResult":
        """Drain a line source until EOF or a shutdown record."""
        for line in lines:
            self.handle_line(line)
            if self.shutdown:
                break
        return self.finish()

    def finish(self) -> "ServeResult":
        """Flush pending work and snapshot the session's result."""
        if not self.finished:
            self.observatory.sync_ingest()
            self._flush()
            self.link_metrics.set_gauge("serve.links.tracked", len(self.table))
            self.finished = True
        return self.result()

    # -- flush / maintenance ------------------------------------------------

    def _flush(self) -> None:
        if len(self.scheduler):
            self.scheduler.flush()
            self.flushes += 1
        self._ends_since_flush = 0
        self._emit_incremental()

    def _emit_incremental(self) -> None:
        """Append newly concrete records to the incremental sinks."""
        if self.audit_sink is None and self.provenance_sink is None:
            return
        if self.audit_sink is not None:
            rows: List[Tuple[Tuple[int, int, int], str]] = []
            for state in self.table.states():
                records = state.audit.records
                for idx in range(state.emitted_audit, len(records)):
                    rows.append(
                        (
                            (state.audit.tags[idx], state.attach_seq, idx),
                            json.dumps(
                                records[idx].to_dict(),
                                sort_keys=True,
                                separators=(",", ":"),
                            ),
                        )
                    )
                state.emitted_audit = len(records)
            rows.sort(key=lambda row: row[0])
            for _key, line in rows:
                self.audit_sink.write(line + "\n")
        if self.provenance_sink is not None:
            rows = []
            for state in self.table.states():
                records = state.provenance.records
                for idx in range(state.emitted_provenance, len(records)):
                    rows.append(
                        (
                            (state.provenance.tags[idx], state.attach_seq, idx),
                            json.dumps(
                                records[idx].to_dict(),
                                sort_keys=True,
                                separators=(",", ":"),
                            ),
                        )
                    )
                state.emitted_provenance = len(records)
            rows.sort(key=lambda row: row[0])
            for _key, line in rows:
                self.provenance_sink.write(line + "\n")

    def _maintain(self) -> None:
        """Prune timelines and compact demuxes behind live query reach."""
        self._ends_since_maintain = 0
        # Settle deferred idle folds (and trim the shared event log)
        # before reading feed cursors as prune horizons.
        self.observatory.sync_ingest()
        pruned = self._prune_timelines()
        compacted = 0
        for state in self.table.states():
            compacted += compact_link(state)
            if state.ledger is not None:
                compacted += state.ledger.trim()
        self.pruned_intervals += pruned
        self.compacted_observations += compacted
        if pruned:
            self.link_metrics.inc("serve.timeline.pruned_intervals", pruned)
        if compacted:
            self.link_metrics.inc("serve.observations.compacted", compacted)
        self.link_metrics.set_gauge("serve.links.tracked", len(self.table))

    def _prune_timelines(self) -> int:
        """Per channel: drop intervals behind every live query horizon.

        The horizon is the minimum of each subscription's sample anchor
        (the end slot of its last processed observation — the next
        interval query starts there) and each ARMA feed's cursor (its
        next ingest starts there).  ``prune_before`` keeps straddling
        intervals whole, so all later queries are unchanged.
        """
        horizons: Dict[int, Tuple[object, Slots]] = {}
        for state in self.table.states():
            subscription = state.subscription
            channel = subscription.channel
            detector = state.detector
            if detector._processed > 0:
                anchor = subscription.observed[detector._processed - 1].end_slot
            else:
                anchor = self._current_slot
            entry = horizons.get(id(channel))
            if entry is None or anchor < entry[1]:
                horizons[id(channel)] = (channel, anchor)
        total = 0
        for channel, anchor in horizons.values():
            horizon = anchor
            for feed in channel.arma_feeds:  # type: ignore[attr-defined]
                if feed.birth_slot is None:
                    horizon = 0
                    break
                horizon = min(horizon, feed.cursor)
            if horizon > 0:
                total += channel.prune_before(horizon)  # type: ignore[attr-defined]
        return total

    # -- results -----------------------------------------------------------

    def export_links(self) -> List[LinkExport]:
        """Picklable per-link snapshots, in attach order."""
        return [
            export_detector(
                state.monitor,
                state.tagged,
                state.attach_seq,
                state.detector,
                state.audit,
                state.provenance,
                discovered=state.discovered,
                audit_tags=state.audit.tags,
                provenance_tags=state.provenance.tags,
                last_active=state.last_active,
            )
            for state in self.table.states()
        ]

    def result(self) -> ServeResult:
        counters = self.stream_metrics.snapshot()["counters"]
        events = sum(
            count
            for name, count in counters.items()
            if name.startswith("serve.events.")
        )
        return ServeResult(
            links=self.export_links(),
            stream_snapshot=self.stream_metrics.snapshot(),
            link_snapshot=self.link_metrics.snapshot(),
            events=events,
            flushes=self.flushes,
            pruned_intervals=self.pruned_intervals,
            compacted_observations=self.compacted_observations,
            evicted_links=self.table.evicted_links,
        )
