"""Planar geometry used by the PHY layer and the analytical model.

The detection framework's analytical model (paper Section 3) is driven by
areas of regions formed by overlapping sensing disks; this package
provides exact circle-intersection areas and the concrete A1..A5 region
model of the paper's Figure 1.
"""

from repro.geometry.circles import (
    circle_area,
    circle_intersection_area,
    crescent_area,
)
from repro.geometry.regions import RegionModel, SensingRegions
from repro.geometry.spatial import SpatialGrid, cell_size_for_radius
from repro.geometry.vectors import distance, midpoint

__all__ = [
    "RegionModel",
    "SensingRegions",
    "SpatialGrid",
    "cell_size_for_radius",
    "circle_area",
    "circle_intersection_area",
    "crescent_area",
    "distance",
    "midpoint",
]
