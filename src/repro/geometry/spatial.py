"""Uniform-grid spatial hash for sensing-range neighbor queries.

The simulator's PHY layer needs, for every node, the set of nodes
within sensing range.  An all-pairs scan is O(n²) per mobility epoch
and caps topology size near the paper's ~100 nodes; this module
provides the standard cell-list alternative: hash every node into a
square grid cell of side >= the maximum interaction radius, and answer
"who could be within radius r of p?" from the 3×3 block of cells
around p's cell.

Correctness argument: with ``cell_size >= r``, any point within
distance ``r`` of ``p`` lies in a cell whose index differs from
``p``'s by at most 1 on each axis — so the 3×3 neighborhood is a
*superset* of the true in-range set.  The grid only ever prunes
candidates; callers re-check the exact link predicate (including
per-pair shadowing margins) on every candidate, so query results are
set-identical to the brute-force scan (``tests/test_spatial.py`` pins
this under random placements and mobility, via hypothesis and fixed
seeds).

Updates are incremental: :meth:`SpatialGrid.update` moves only the
nodes whose cell index actually changed, so a mobility epoch where
most nodes stay within their 0.5–14 m/s leg costs O(moved), not O(n).
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Mapping, Optional, Set, Tuple

from repro.geometry.vectors import Point
from repro.util.units import Meters
from repro.util.validation import check_positive

#: Integer cell index (column, row) of one grid square.
Cell = Tuple[int, int]

#: Neighborhood offsets: a cell plus its 8 surrounding cells.
_NEIGHBOR_OFFSETS: Tuple[Cell, ...] = tuple(
    (dx, dy) for dx in (-1, 0, 1) for dy in (-1, 0, 1)
)


class SpatialGrid:
    """Uniform spatial hash over node positions.

    Parameters
    ----------
    cell_size:
        Side length of one grid cell, in meters.  Must be at least the
        largest radius the grid will be queried with; choose the
        maximum effective sensing range times a small safety factor so
        float rounding in the division can never shrink the
        neighborhood below the query disk (see
        :func:`cell_size_for_radius`).
    """

    def __init__(self, cell_size: Meters) -> None:
        self.cell_size: Meters = check_positive(cell_size, "cell_size")
        self._cells: Dict[Cell, List[int]] = {}
        self._cell_of: Dict[int, Cell] = {}

    # -- indexing ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._cell_of)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._cell_of

    @property
    def cell_count(self) -> int:
        """Number of non-empty cells."""
        return len(self._cells)

    def key(self, position: Point) -> Cell:
        """The cell index containing ``position``."""
        size = self.cell_size
        return (
            int(math.floor(position[0] / size)),
            int(math.floor(position[1] / size)),
        )

    def cell_of(self, node_id: int) -> Optional[Cell]:
        """The indexed cell of ``node_id`` (None if not indexed)."""
        return self._cell_of.get(node_id)

    def rebuild(self, positions: Mapping[int, Point]) -> None:
        """Re-index every node from scratch."""
        self._cells.clear()
        self._cell_of.clear()
        cell_of = self._cell_of
        cells = self._cells
        for node_id, position in positions.items():
            cell = self.key(position)
            cell_of[node_id] = cell
            bucket = cells.get(cell)
            if bucket is None:
                cells[cell] = [node_id]
            else:
                bucket.append(node_id)

    def update(self, positions: Mapping[int, Point]) -> List[int]:
        """Incrementally re-index; returns node ids that changed cell.

        Nodes new to the index count as moved; nodes absent from
        ``positions`` are dropped from the index (and do not appear in
        the returned list).  The cost is O(n) dictionary lookups but
        only O(moved) bucket mutations — the common mobility epoch
        where nodes drift within their current cell touches no
        buckets at all.
        """
        cell_of = self._cell_of
        cells = self._cells
        moved: List[int] = []
        if len(cell_of) > len(positions):
            for node_id in [n for n in cell_of if n not in positions]:
                self._discard(node_id)
        for node_id, position in positions.items():
            cell = self.key(position)
            old = cell_of.get(node_id)
            if old == cell:
                continue
            if old is not None:
                bucket = cells[old]
                bucket.remove(node_id)
                if not bucket:
                    del cells[old]
            cell_of[node_id] = cell
            new_bucket = cells.get(cell)
            if new_bucket is None:
                cells[cell] = [node_id]
            else:
                new_bucket.append(node_id)
            moved.append(node_id)
        return moved

    def _discard(self, node_id: int) -> None:
        cell = self._cell_of.pop(node_id, None)
        if cell is None:
            return
        bucket = self._cells[cell]
        bucket.remove(node_id)
        if not bucket:
            del self._cells[cell]

    # -- queries -----------------------------------------------------------

    def neighborhood(self, position: Point) -> Iterator[int]:
        """All node ids in the 3×3 cell block around ``position``.

        A superset of every node within ``cell_size`` of ``position``
        (see the module docstring); the caller applies the exact
        range predicate.  Includes the querying node itself if indexed.
        """
        cx, cy = self.key(position)
        cells = self._cells
        for dx, dy in _NEIGHBOR_OFFSETS:
            bucket = cells.get((cx + dx, cy + dy))
            if bucket is not None:
                yield from bucket

    def candidates_of(self, node_id: int) -> Iterator[int]:
        """Neighborhood of an indexed node, excluding the node itself."""
        cell = self._cell_of.get(node_id)
        if cell is None:
            return
        cx, cy = cell
        cells = self._cells
        for dx, dy in _NEIGHBOR_OFFSETS:
            bucket = cells.get((cx + dx, cy + dy))
            if bucket is not None:
                for other in bucket:
                    if other != node_id:
                        yield other

    def occupied_cells(self) -> List[Cell]:
        """Sorted list of non-empty cell indices (for partitioning)."""
        return sorted(self._cells)

    def nodes_in(self, cell: Cell) -> Tuple[int, ...]:
        """Node ids currently indexed in ``cell`` (insertion order)."""
        bucket = self._cells.get(cell)
        return tuple(bucket) if bucket is not None else ()


def cell_size_for_radius(radius: Meters) -> Meters:
    """Grid cell side guaranteeing 3×3 coverage of a ``radius`` disk.

    The 1e-9 relative pad absorbs the worst-case float rounding of the
    ``position / cell_size`` division, so a point exactly ``radius``
    away can never land outside the 3×3 block.
    """
    check_positive(radius, "radius")
    return radius * (1.0 + 1e-9)


def brute_force_in_range(
    positions: Mapping[int, Point],
    node_id: int,
    radius: Meters,
) -> Set[int]:
    """Reference all-pairs range query (test oracle; O(n) per call)."""
    origin = positions[node_id]
    limit = float(radius)
    result: Set[int] = set()
    for other, position in positions.items():
        if other == node_id:
            continue
        if math.hypot(position[0] - origin[0], position[1] - origin[1]) <= limit:
            result.add(other)
    return result
