"""Small 2-D vector helpers.

Positions throughout the simulator are plain ``(x, y)`` tuples of floats;
keeping them as tuples (rather than a vector class) keeps the hot paths
allocation-light and lets numpy batch operations where needed.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.util.units import Meters

#: A 2-D point in meters.
Point = Tuple[Meters, Meters]


def distance(a: Point, b: Point) -> Meters:
    """Euclidean distance between points ``a`` and ``b``."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


def distance_squared(a: Point, b: Point) -> float:
    """Squared Euclidean distance (avoids the sqrt on hot paths)."""
    dx = a[0] - b[0]
    dy = a[1] - b[1]
    return dx * dx + dy * dy


def midpoint(a: Point, b: Point) -> Point:
    """Midpoint of segment ``ab``."""
    return ((a[0] + b[0]) / 2.0, (a[1] + b[1]) / 2.0)


def translate(point: Point, dx: Meters, dy: Meters) -> Point:
    """Point shifted by ``(dx, dy)``."""
    return (point[0] + dx, point[1] + dy)


def unit_vector(a: Point, b: Point) -> Tuple[float, float]:
    """Unit vector pointing from ``a`` to ``b``.

    Raises ``ValueError`` for coincident points, where the direction is
    undefined.
    """
    d = distance(a, b)
    if d == 0:
        raise ValueError("unit vector undefined for coincident points")
    return ((b[0] - a[0]) / d, (b[1] - a[1]) / d)
