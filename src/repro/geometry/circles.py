"""Exact areas of circles, circular lenses and crescents.

The analytical model of the paper needs the areas of regions formed by
two overlapping sensing disks (the "lens" where both nodes sense the
channel, and the "crescents" each node senses exclusively).  The closed
forms below are the standard circle-circle intersection formulas.
"""

from __future__ import annotations

import math

from repro.util.units import Meters
from repro.util.validation import check_non_negative, check_positive


def circle_area(radius: Meters) -> float:
    """Area of a circle of the given radius."""
    check_non_negative(radius, "radius")
    return math.pi * radius * radius


def circle_intersection_area(r1: Meters, r2: Meters, d: Meters) -> float:
    """Area of the lens formed by two circles of radii ``r1``, ``r2``
    whose centers are ``d`` apart.

    Handles the degenerate cases exactly: disjoint circles (area 0) and
    one circle containing the other (area of the smaller circle).
    """
    check_positive(r1, "r1")
    check_positive(r2, "r2")
    check_non_negative(d, "d")

    if d >= r1 + r2:
        return 0.0
    # Near-coincident centers (incl. subnormal d, where 2*d*r underflows
    # to zero) degenerate to full containment of the smaller circle.
    if d <= abs(r1 - r2) or d < 1e-12 * max(r1, r2):
        return circle_area(min(r1, r2))

    # Standard two-circular-segment decomposition.
    r1_sq = r1 * r1
    r2_sq = r2 * r2
    alpha = math.acos((d * d + r1_sq - r2_sq) / (2.0 * d * r1))
    beta = math.acos((d * d + r2_sq - r1_sq) / (2.0 * d * r2))
    return (
        r1_sq * (alpha - math.sin(2.0 * alpha) / 2.0)
        + r2_sq * (beta - math.sin(2.0 * beta) / 2.0)
    )


def crescent_area(r1: Meters, r2: Meters, d: Meters) -> float:
    """Area of circle 1 *excluding* its overlap with circle 2.

    This is the region a node at the center of circle 1 covers
    exclusively (e.g., the part of S's sensing disk that R does not
    sense).
    """
    return circle_area(r1) - circle_intersection_area(r1, r2, d)
