"""The A1..A5 sensing-region model of the paper's Figure 1.

The monitor R and the sender S sit ``d`` apart, each with sensing radius
``rho``.  The paper's analytical model partitions the relevant plane into
five regions (left to right, with S left of R):

- ``A2`` — points S senses but R does not (``disk(S) \\ disk(R)``),
- ``A3`` — points both sense (``disk(S) ∩ disk(R)``),
- ``A4`` — points R senses but S does not (``disk(R) \\ disk(S)``),
- ``A1`` — points outside S's sensing disk whose occupants contend with
  the A2 nodes (they can freeze them),
- ``A5`` — points outside R's (and S's) sensing disks whose occupants
  can be transmitting while a node in A4 keeps R busy.

The paper defines A1 and A5 only pictorially ("areas enclosed between
their respective left and right arcs", with third-party nodes T and V
drawn in the crescents).  We formalize them as follows — the paper's
verbal derivations constrain the *role* of each region, and the exact
extents are calibrated once against the packet-level simulator (see
DESIGN.md §2 and the ablation benchmark):

- ``A1`` is the sensing disk of a representative interferer T placed
  ``interferer_offset`` to the left of S, minus S's disk.  The ratio
  ``A2/(A1+A2)`` then plays its eq.-3 role: *given that the channel on
  S's side is occupied, how likely is the occupant inside S's sensing
  range* (making S busy while R is idle).  The default offset of 450 m
  makes this ratio ≈ 0.35, matching the simulator's measured
  p(S busy | R idle) saturation value on the paper's grid.
- ``A5`` defaults to the *union* of all positions from which a hidden
  transmitter could be active during an R-busy slot without S sensing
  it: everything within ``2 rho`` of R but outside both sensing disks,
  i.e. ``pi (2 rho)^2 - pi rho^2 - A2``.  The eq.-4 ratio
  ``A4/(A4+A5)`` is then small (≈ 0.09), which — multiplied by the
  A1/(A1+A2) factor — reproduces the simulator's measured
  p(S idle | R busy) (the single-representative-crescent alternative
  overestimates it several-fold; pass ``far_interferer_offset`` to get
  that variant for the ablation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from repro.geometry.circles import circle_area, circle_intersection_area, crescent_area
from repro.geometry.vectors import Point, distance
from repro.util.units import Meters
from repro.util.validation import check_positive

#: Region labels, left to right as in Figure 1.
REGION_LABELS = ("A1", "A2", "A3", "A4", "A5")


@dataclass(frozen=True)
class SensingRegions:
    """Areas (m^2) of the five regions for one S/R geometry."""

    a1: float
    a2: float
    a3: float
    a4: float
    a5: float

    def as_dict(self) -> Dict[str, float]:
        return {"A1": self.a1, "A2": self.a2, "A3": self.a3, "A4": self.a4, "A5": self.a5}

    @property
    def left_exclusive_fraction(self) -> float:
        """``A2 / (A1 + A2)`` — the ratio used in paper eq. 3."""
        total = self.a1 + self.a2
        return self.a2 / total if total > 0 else 0.0

    @property
    def left_hidden_fraction(self) -> float:
        """``A1 / (A1 + A2)`` — the ratio used in paper eq. 4."""
        total = self.a1 + self.a2
        return self.a1 / total if total > 0 else 0.0

    @property
    def right_exclusive_fraction(self) -> float:
        """``A4 / (A4 + A5)`` — the ratio used in paper eq. 4."""
        total = self.a4 + self.a5
        return self.a4 / total if total > 0 else 0.0

    @property
    def uniform_invisible_fraction(self) -> float:
        """``A4 / (A3 + A4)``: under uniform node density, the chance
        that a transmission the monitor senses comes from the region the
        sender cannot sense.  The occupancy correction compares the
        *measured* invisibility fraction against this baseline."""
        total = self.a3 + self.a4
        return self.a4 / total if total > 0 else 0.0


@dataclass
class RegionModel:
    """Concrete geometry for the analytical model.

    Parameters
    ----------
    sensing_range:
        Carrier-sensing / interference radius rho (m); Table 1 uses 550.
    separation:
        Distance between sender S and monitor R (m); 240 in the paper's
        grid topology.
    interferer_offset:
        Distance of the representative third-party interferer T (left of
        S) whose sensing disk defines A1.  Calibrated default: 450 m.
    far_interferer_offset:
        If None (default), A5 is the union annulus described in the
        module docstring.  If a float, A5 is instead the crescent of a
        representative interferer V placed that far right of R (the
        symmetric-to-A1 construction; kept for the ablation study).
    """

    sensing_range: Meters = 550.0
    separation: Meters = 240.0
    interferer_offset: Meters = 450.0
    far_interferer_offset: Optional[Meters] = None
    _regions: Optional[SensingRegions] = field(init=False, repr=False, default=None)

    def __post_init__(self) -> None:
        check_positive(self.sensing_range, "sensing_range")
        check_positive(self.separation, "separation")
        check_positive(self.interferer_offset, "interferer_offset")
        if self.far_interferer_offset is not None:
            check_positive(self.far_interferer_offset, "far_interferer_offset")
        self._regions = self._compute_areas()

    # -- geometry ---------------------------------------------------------

    def _compute_areas(self) -> SensingRegions:
        rho = self.sensing_range
        d = self.separation
        lens_sr = circle_intersection_area(rho, rho, d)
        exclusive = crescent_area(rho, rho, d)  # disk(S) \ disk(R) == disk(R) \ disk(S)
        a1 = crescent_area(rho, rho, self.interferer_offset)  # disk(T) \ disk(S)
        if self.far_interferer_offset is None:
            # Union of hidden-transmitter positions on R's side:
            # within 2*rho of R, outside disk(R) and outside disk(S).
            a5 = circle_area(2.0 * rho) - circle_area(rho) - exclusive
        else:
            a5 = crescent_area(rho, rho, self.far_interferer_offset)
        return SensingRegions(a1=a1, a2=exclusive, a3=lens_sr, a4=exclusive, a5=a5)

    @property
    def regions(self) -> SensingRegions:
        """The :class:`SensingRegions` areas for this geometry."""
        assert self._regions is not None  # set in __post_init__
        return self._regions

    # -- point classification ---------------------------------------------

    def classify(
        self,
        point: Point,
        sender: Point = (0.0, 0.0),
        monitor: Optional[Point] = None,
    ) -> Optional[str]:
        """Assign ``point`` to one of A1..A5, or ``None`` if outside all.

        ``sender`` and ``monitor`` give the actual S and R positions; by
        default S is at the origin and R at ``(separation, 0)``.  The
        representative interferer T lies on the S-R line, left of S;
        the A5 test follows the active construction (union annulus by
        default, representative crescent if ``far_interferer_offset``
        is set).

        Classification priority follows the partition used in the
        paper's derivations: membership in the S/R disks decides
        A2/A3/A4, then the outer constructions decide A1/A5.
        """
        if monitor is None:
            monitor = (self.separation, 0.0)
        rho = self.sensing_range
        d_s = distance(point, sender)
        d_r = distance(point, monitor)
        in_s = d_s <= rho
        in_r = d_r <= rho
        if in_s and in_r:
            return "A3"
        if in_s:
            return "A2"
        if in_r:
            return "A4"
        t_pos = self._left_interferer_position(sender, monitor)
        if distance(point, t_pos) <= rho:
            return "A1"
        if self.far_interferer_offset is None:
            if d_r <= 2.0 * rho:
                return "A5"
        else:
            v_pos = self._right_interferer_position(sender, monitor)
            if distance(point, v_pos) <= rho:
                return "A5"
        return None

    def _axis_unit(self, sender: Point, monitor: Point) -> Tuple[float, float]:
        d = distance(sender, monitor)
        if d == 0:
            raise ValueError("sender and monitor must not be coincident")
        return (monitor[0] - sender[0]) / d, (monitor[1] - sender[1]) / d

    def _left_interferer_position(self, sender: Point, monitor: Point) -> Point:
        ux, uy = self._axis_unit(sender, monitor)
        off = self.interferer_offset
        return (sender[0] - ux * off, sender[1] - uy * off)

    def _right_interferer_position(self, sender: Point, monitor: Point) -> Point:
        ux, uy = self._axis_unit(sender, monitor)
        off = self.far_interferer_offset
        assert off is not None  # caller checks the construction mode
        return (monitor[0] + ux * off, monitor[1] + uy * off)

    def count_nodes(
        self,
        positions: Iterable[Point],
        sender: Point = (0.0, 0.0),
        monitor: Optional[Point] = None,
    ) -> Dict[str, int]:
        """Count nodes per region.

        Returns a dict ``{"A1": k, "A2": n, "A3": ..., "A4": m, "A5": j}``
        using the paper's variable naming for the counts that enter
        eqs. 3-4 (k nodes in A1, n in A2, m in A4, j in A5).  The sender
        and monitor themselves should not be included in ``positions``.
        """
        counts = {label: 0 for label in REGION_LABELS}
        for point in positions:
            label = self.classify(point, sender, monitor)
            if label is not None:
                counts[label] += 1
        return counts

    def expected_counts(self, node_density: float) -> Dict[str, float]:
        """Expected node counts per region under a uniform density.

        ``node_density`` is nodes per square meter; this is the estimate
        a monitor forms from the Bianchi competing-terminals inversion
        (paper Section 4: the number of nodes in area A_x is
        ``n_R / (pi R^2) * A_x``).
        """
        check_positive(node_density, "node_density")
        return {
            label: node_density * area
            for label, area in self._regions.as_dict().items()
        }
