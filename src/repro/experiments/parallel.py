"""Deterministic process-pool execution of independent trials.

Every headline number in the paper is an average over many independent,
seeded runs (20 for the probability curves, 10,000 for the detection
probabilities).  The trials share nothing — each builds its own engine
from its own seed — so they parallelize embarrassingly.  This module
maps a trial function over a list of seeded task tuples with the
fork-pool substrate (:mod:`repro.util.pool`) while keeping every
observable output *identical* to the serial run:

* results come back in task order, regardless of completion order
  (:func:`repro.util.pool.fork_map`'s contract);
* each worker runs its trial against a fresh metrics registry and ships
  the snapshot home; the parent folds the snapshots back into the
  shared registry in task order (see
  :meth:`repro.obs.registry.MetricsRegistry.merge_snapshot`), so
  ``--metrics`` output and :class:`~repro.obs.manifest.RunManifest`
  contents do not depend on the worker count;
* the worker count never feeds into seeds, schedules, or aggregation
  order, so sweep points and rank-sum verdicts are byte-identical for
  any ``jobs``.

Trials must therefore be *pure functions of their task tuple* (plus
process-wide configuration like ``REPRO_SCALE``): no mutating shared
state, no RNG outside the seeded streams.  Task tuples and results
cross a process boundary, so both must pickle; when they cannot — or
when the platform has no ``fork`` — the substrate silently falls back
to the serial loop, which is always correct, just slower.

Worker-count resolution lives in :mod:`repro.util.pool` (first match
wins): the ``jobs=`` argument, :func:`set_default_jobs` (the CLI's
``--jobs`` flag), the ``REPRO_JOBS`` environment variable, else 1
(serial).  A value of 0 means "all CPU cores".  ``JOBS_ENV``,
``resolve_jobs`` and ``set_default_jobs`` are re-exported here for
compatibility with pre-split callers.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from repro.util.pool import (  # noqa: F401  (re-exported)
    JOBS_ENV,
    fork_map,
    resolve_jobs,
    set_default_jobs,
)

#: The trial function of the in-flight sweep, inherited by forked
#: workers (set immediately before the pool dispatch, cleared after).
#: Doubles as a re-entrancy latch: a trial that itself calls
#: run_trials — including inside a worker, where pools cannot nest —
#: runs serially.
_TRIAL_FN: Optional[Callable[[Any], Any]] = None


def _invoke_trial(item: Any) -> Any:
    """Run one trial in a worker against a private metrics registry."""
    from repro.obs.runtime import metrics_enabled, reset_metrics, shared_registry

    fn = _TRIAL_FN
    assert fn is not None, "_invoke_trial outside a run_trials pool"
    collect = metrics_enabled()
    if collect:
        # The fork copied the parent's registry; start from zero so the
        # snapshot we return holds exactly this trial's contribution.
        reset_metrics()
    result = fn(item)
    snapshot = shared_registry().snapshot() if collect else None
    return result, snapshot


def _invoke_trial_serial(item: Any) -> Any:
    """Parent-side serial path: run the trial against the live registry.

    No reset and no snapshot — serial trials feed the shared registry
    directly, exactly as a plain loop would.
    """
    fn = _TRIAL_FN
    assert fn is not None, "_invoke_trial_serial outside a run_trials call"
    return fn(item), None


def run_trials(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    jobs: Optional[int] = None,
) -> List[Any]:
    """``[fn(item) for item in items]``, possibly across processes.

    ``fn`` must be a module-level (picklable) function of one task
    tuple and free of side effects beyond the metrics registry.  The
    returned list is in task order.  Serial execution is used whenever
    it cannot make a difference (one job, one item) or parallel
    execution cannot be set up faithfully (no ``fork`` start method,
    unpicklable tasks, nested call from inside a worker).
    """
    global _TRIAL_FN
    items = list(items)
    if _TRIAL_FN is not None:
        # Nested sweep (possibly inside a worker): plain serial loop.
        return [fn(item) for item in items]
    _TRIAL_FN = fn
    try:
        outcomes = fork_map(
            _invoke_trial, items, jobs, serial_fn=_invoke_trial_serial
        )
    finally:
        _TRIAL_FN = None

    from repro.obs.runtime import metrics_enabled, shared_registry

    if metrics_enabled():
        registry = shared_registry()
        for _result, snapshot in outcomes:
            if snapshot is not None:
                registry.merge_snapshot(snapshot)
    return [result for result, _snapshot in outcomes]
