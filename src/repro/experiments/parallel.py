"""Deterministic process-pool execution of independent trials.

Every headline number in the paper is an average over many independent,
seeded runs (20 for the probability curves, 10,000 for the detection
probabilities).  The trials share nothing — each builds its own engine
from its own seed — so they parallelize embarrassingly.  This module
maps a trial function over a list of seeded task tuples with a process
pool while keeping every observable output *identical* to the serial
run:

* results come back in task order, regardless of completion order;
* each worker runs its trial against a fresh metrics registry and ships
  the snapshot home; the parent folds the snapshots back into the
  shared registry in task order (see
  :meth:`repro.obs.registry.MetricsRegistry.merge_snapshot`), so
  ``--metrics`` output and :class:`~repro.obs.manifest.RunManifest`
  contents do not depend on the worker count;
* the worker count never feeds into seeds, schedules, or aggregation
  order, so sweep points and rank-sum verdicts are byte-identical for
  any ``jobs``.

Trials must therefore be *pure functions of their task tuple* (plus
process-wide configuration like ``REPRO_SCALE``): no mutating shared
state, no RNG outside the seeded streams.  Task tuples and results
cross a process boundary, so both must pickle; when they cannot — or
when the platform has no ``fork`` — :func:`run_trials` silently falls
back to the serial loop, which is always correct, just slower.

Worker-count resolution (first match wins): the ``jobs=`` argument,
:func:`set_default_jobs` (the CLI's ``--jobs`` flag), the
``REPRO_JOBS`` environment variable, else 1 (serial).  A value of 0
means "all CPU cores".
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.pool
import os
import pickle
from typing import Any, Callable, List, Optional, Sequence

#: Environment variable holding the default worker count.
JOBS_ENV = "REPRO_JOBS"

_default_jobs: Optional[int] = None

#: The trial function of the in-flight pool, inherited by forked
#: workers (set immediately before the fork, cleared after).  Doubles
#: as a re-entrancy latch: a trial that itself calls run_trials —
#: including inside a worker, where pools cannot nest — runs serially.
_TRIAL_FN: Optional[Callable[[Any], Any]] = None


def set_default_jobs(jobs: Optional[int]) -> None:
    """Install a process-wide default worker count (the ``--jobs`` flag).

    ``None`` clears the default, falling back to ``REPRO_JOBS``.
    """
    global _default_jobs
    _default_jobs = None if jobs is None else int(jobs)


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """The effective worker count: argument, default, env var, or 1.

    0 (from any source) means "all CPU cores"; the result is always
    >= 1.
    """
    if jobs is None:
        jobs = _default_jobs
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        if raw:
            try:
                jobs = int(raw)
            except ValueError as exc:
                raise ValueError(
                    f"{JOBS_ENV} must be an integer, got {raw!r}"
                ) from exc
    if jobs is None:
        return 1
    jobs = int(jobs)
    if jobs == 0:
        jobs = os.cpu_count() or 1
    return max(jobs, 1)


def _invoke_trial(item: Any) -> Any:
    """Run one trial in a worker against a private metrics registry."""
    from repro.obs.runtime import metrics_enabled, reset_metrics, shared_registry

    fn = _TRIAL_FN
    assert fn is not None, "_invoke_trial outside a run_trials pool"
    collect = metrics_enabled()
    if collect:
        # The fork copied the parent's registry; start from zero so the
        # snapshot we return holds exactly this trial's contribution.
        reset_metrics()
    result = fn(item)
    snapshot = shared_registry().snapshot() if collect else None
    return result, snapshot


def _run_serial(fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
    return [fn(item) for item in items]


def run_trials(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    jobs: Optional[int] = None,
) -> List[Any]:
    """``[fn(item) for item in items]``, possibly across processes.

    ``fn`` must be a module-level (picklable) function of one task
    tuple and free of side effects beyond the metrics registry.  The
    returned list is in task order.  Serial execution is used whenever
    it cannot make a difference (one job, one item) or parallel
    execution cannot be set up faithfully (no ``fork`` start method,
    unpicklable tasks, nested call from inside a worker).
    """
    global _TRIAL_FN
    items = list(items)
    jobs = min(resolve_jobs(jobs), len(items))
    if jobs <= 1 or _TRIAL_FN is not None:
        return _run_serial(fn, items)
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # platform without fork (Windows): stay correct
        return _run_serial(fn, items)
    _TRIAL_FN = fn
    try:
        with ctx.Pool(processes=jobs) as pool:
            # chunksize=1: trial costs are uneven (detection runs stop
            # on a sample-count condition), so fine-grained dispatch
            # keeps the pool busy.
            outcomes = pool.map(_invoke_trial, items, chunksize=1)
    except (
        pickle.PicklingError,            # unpicklable task tuple
        multiprocessing.pool.MaybeEncodingError,  # unpicklable result
        AttributeError,
        TypeError,
        OSError,                         # fork/pipe failure
    ):
        # Trials are pure, so re-running everything serially is safe.
        return _run_serial(fn, items)
    finally:
        _TRIAL_FN = None

    from repro.obs.runtime import metrics_enabled, shared_registry

    if metrics_enabled():
        registry = shared_registry()
        for _result, snapshot in outcomes:
            if snapshot is not None:
                registry.merge_snapshot(snapshot)
    return [result for result, _snapshot in outcomes]
