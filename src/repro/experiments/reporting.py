"""Plain-text rendering of experiment results.

Benchmarks print the same rows/series the paper plots; these helpers
keep the formatting consistent and grep-friendly (EXPERIMENTS.md quotes
their output verbatim).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence


def format_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """A fixed-width text table."""
    columns = len(headers)
    widths = [len(h) for h in headers]
    text_rows = []
    for row in rows:
        cells = [_fmt(cell) for cell in row]
        if len(cells) != columns:
            raise ValueError(f"row has {len(cells)} cells, expected {columns}")
        widths = [max(w, len(c)) for w, c in zip(widths, cells)]
        text_rows.append(cells)
    lines = [title]
    lines.append("  " + "  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  " + "  ".join("-" * w for w in widths))
    for cells in text_rows:
        lines.append("  " + "  ".join(c.ljust(w) for c, w in zip(cells, widths)))
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    x_values: Sequence[Any],
    series: Mapping[str, Sequence[Any]],
) -> str:
    """A multi-series table: one x column plus one column per series.

    ``series`` maps label -> list of y values aligned with ``x_values``.
    """
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [series[label][i] for label in series])
    return format_table(title, headers, rows)


def table_records(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> List[Dict[str, Any]]:
    """The same rows as a list of dicts (for run-manifest ``results``).

    Each row becomes ``{header: cell}`` with the raw (unformatted)
    values, so manifests carry full precision while the printed table
    stays rounded.
    """
    records = []
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells, expected {len(headers)}")
        records.append(dict(zip(headers, row)))
    return records


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)
