"""Figure 4: conditional channel-view probabilities, random topology + CBR.

Same measurement as Figure 3 but with the 112-node uniform-random
placement and CBR traffic; the paper reports "observations similar to
those with the grid topology".  The monitor pair's separation varies
with the placement, so the analytical curve uses the realized S-R
distance per seed's scenario.
"""

from __future__ import annotations

from typing import Any, List, Sequence

from repro.experiments.fig3 import (
    DEFAULT_LOAD_SWEEP,
    ProbabilityPoint,
    render_points,
    run_probability_sweep,
)
from repro.experiments.scenarios import RandomScenario


def random_cbr_factory(load: float, seed: int) -> RandomScenario:
    return RandomScenario(load=load, traffic="cbr", seed=seed)


def run_fig4(loads: Sequence[float] = DEFAULT_LOAD_SWEEP, **kwargs: Any) -> List[ProbabilityPoint]:
    """Figure 4 (both panels): CBR traffic, random topology."""
    # The pair separation differs per placement; use the first scenario's
    # realized separation for the analytical geometry (it is re-measured
    # by the probe build below).
    probe = RandomScenario(load=loads[0], traffic="cbr", seed=1)
    probe.build()
    separation = max(probe.separation, 1.0)
    return run_probability_sweep(
        random_cbr_factory, loads=loads, separation=separation, **kwargs
    )


def main() -> List[ProbabilityPoint]:
    points = run_fig4()
    print(render_points("Figure 4: random topology, CBR traffic", points))
    return points


if __name__ == "__main__":
    main()
