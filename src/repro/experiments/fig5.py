"""Figure 5: probability of correct diagnosis vs. percentage of misbehavior.

Panels (a)-(c): static grid at loads 0.3 / 0.6 / 0.9, sample sizes
{10, 25, 50, 100}.  Panel (d): mobile random-waypoint network at load
0.6.  For each (load, PM) the sender S runs the PM timer cheat; the
monitor R collects back-off samples and every non-overlapping window of
``sample size`` observations yields one diagnosis (hypothesis-test
rejection, or a deterministic violation within the window).  The
reported probability is the fraction of windows that correctly diagnose
S — the paper's per-run detection probability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.experiments.parallel import run_trials
from repro.experiments.reporting import format_series
from repro.experiments.runner import (
    detection_trial,
    scaled,
    windowed_detection_rate,
)
from repro.experiments.scenarios import GridScenario, RandomScenario
from repro.util.units import Seconds

ScenarioFactory = Callable[[float, int], Any]

SAMPLE_SIZES = (10, 25, 50, 100)
DEFAULT_PM_SWEEP = (10, 25, 40, 50, 65, 80, 100)
DEFAULT_LOADS = (0.3, 0.6, 0.9)


@dataclass(frozen=True)
class DetectionPoint:
    """Detection probability for one (load, pm, sample size).

    ``detection_probability`` is the paper's measured quantity — the
    probability of the hypothesis test rejecting H0.  ``combined_probability``
    additionally counts windows in which a deterministic verifier fired
    (the full framework's diagnosis rate).
    """

    load: float
    pm: int
    sample_size: int
    detection_probability: float
    combined_probability: float
    windows: int
    violations: int


def run_detection_curve(
    scenario_factory: ScenarioFactory,
    load: float,
    pm_values: Sequence[int] = DEFAULT_PM_SWEEP,
    sample_sizes: Sequence[int] = SAMPLE_SIZES,
    windows: Optional[int] = None,
    alpha: float = 0.05,
    base_seed: int = 17,
    max_duration_s: Seconds = 300.0,
    runs: Optional[int] = None,
    jobs: Optional[int] = None,
) -> List[DetectionPoint]:
    """Detection probabilities for one load across PM and sample sizes.

    Pools non-overlapping windows across ``runs`` independent seeds, as
    the paper averages its detection probabilities over repeated runs.
    The (pm, run) trials execute on the process pool
    (``jobs``/``REPRO_JOBS``); seeds and window pooling are unchanged,
    so the points match the serial sweep exactly.
    """
    windows = windows if windows is not None else scaled(6)
    runs = runs if runs is not None else scaled(2)
    target = windows * max(sample_sizes)
    tasks = [
        (
            scenario_factory,
            load,
            pm,
            base_seed + pm + 1000 * run_index,
            target,
            max_duration_s,
        )
        for pm in pm_values
        for run_index in range(runs)
    ]
    all_detectors = run_trials(detection_trial, tasks, jobs=jobs)
    points = []
    for pm_index, pm in enumerate(pm_values):
        detectors = all_detectors[pm_index * runs : (pm_index + 1) * runs]
        violations = sum(len(d.violations) for d in detectors)
        for size in sample_sizes:
            stat_hits = 0.0
            combined_hits = 0.0
            total_windows = 0
            for detector in detectors:
                stat_rate, n_windows = windowed_detection_rate(
                    detector, size, alpha=alpha, include_deterministic=False
                )
                combined_rate, _ = windowed_detection_rate(
                    detector, size, alpha=alpha, include_deterministic=True
                )
                if n_windows:
                    stat_hits += stat_rate * n_windows
                    combined_hits += combined_rate * n_windows
                    total_windows += n_windows
            points.append(
                DetectionPoint(
                    load=load,
                    pm=pm,
                    sample_size=size,
                    detection_probability=(
                        stat_hits / total_windows if total_windows else float("nan")
                    ),
                    combined_probability=(
                        combined_hits / total_windows
                        if total_windows
                        else float("nan")
                    ),
                    windows=total_windows,
                    violations=violations,
                )
            )
    return points


def grid_factory(load: float, seed: int) -> GridScenario:
    return GridScenario(load=load, traffic="poisson", seed=seed)


def mobile_factory(load: float, seed: int) -> RandomScenario:
    return RandomScenario(load=load, traffic="cbr", mobile=True, seed=seed)


def run_fig5_static(loads: Sequence[float] = DEFAULT_LOADS, **kwargs: Any) -> Dict[float, List[DetectionPoint]]:
    """Panels (a)-(c): one detection curve per load, static grid."""
    return {load: run_detection_curve(grid_factory, load, **kwargs) for load in loads}


def run_fig5_mobile(load: float = 0.6, **kwargs: Any) -> List[DetectionPoint]:
    """Panel (d): the mobile scenario at load 0.6."""
    return run_detection_curve(mobile_factory, load, **kwargs)


def render_curve(
    title: str,
    points: Sequence[DetectionPoint],
    sample_sizes: Sequence[int] = SAMPLE_SIZES,
    combined: bool = False,
) -> str:
    pm_values = sorted({p.pm for p in points})
    series: Dict[str, List[float]] = {}
    for size in sample_sizes:
        by_pm = {
            p.pm: (
                p.combined_probability if combined else p.detection_probability
            )
            for p in points
            if p.sample_size == size
        }
        series[f"s={size}"] = [by_pm.get(pm, float("nan")) for pm in pm_values]
    return format_series(title, "PM", pm_values, series)


def main() -> Dict[float, List[DetectionPoint]]:
    results = run_fig5_static()
    for load, points in results.items():
        print(render_curve(f"Figure 5: P(correct diagnosis), load={load}", points))
        print()
    mobile = run_fig5_mobile()
    print(render_curve("Figure 5(d): mobile scenario, load=0.6", mobile))
    return results


if __name__ == "__main__":
    main()
