"""Figure 6: probability of misdiagnosis (false alarms) vs. sample size.

All nodes — including the tagged sender — are honest; every window that
diagnoses "malicious" is a misdiagnosis.  Panel (a): static grid at
loads 0.3 / 0.6 / 0.9.  Panel (b): mobile random-waypoint network at
load 0.6.  The paper reports the maximum misdiagnosis probability just
below 0.01 at sample size 10, falling with larger windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.experiments.fig5 import (
    SAMPLE_SIZES,
    ScenarioFactory,
    grid_factory,
    mobile_factory,
)
from repro.experiments.parallel import run_trials
from repro.experiments.reporting import format_series
from repro.experiments.runner import (
    detection_trial,
    scaled,
    windowed_detection_rate,
)
from repro.util.units import Seconds

DEFAULT_LOADS = (0.3, 0.6, 0.9)


@dataclass(frozen=True)
class MisdiagnosisPoint:
    """False-alarm probability for one (load, sample size)."""

    load: float
    sample_size: int
    misdiagnosis_probability: float
    windows: int


def run_misdiagnosis_curve(
    scenario_factory: ScenarioFactory,
    load: float,
    sample_sizes: Sequence[int] = SAMPLE_SIZES,
    windows: Optional[int] = None,
    alpha: float = 0.05,
    base_seed: int = 23,
    max_duration_s: Seconds = 300.0,
    runs: Optional[int] = None,
    jobs: Optional[int] = None,
) -> List[MisdiagnosisPoint]:
    """Misdiagnosis probability across sample sizes for one load.

    Pools windows across ``runs`` independent seeds (the paper's
    probabilities are averages over repeated runs); the seeded runs
    execute on the process pool (``jobs``/``REPRO_JOBS``).
    """
    windows = windows if windows is not None else scaled(10)
    runs = runs if runs is not None else scaled(3)
    target = windows * max(sample_sizes)
    tasks = [
        (
            scenario_factory,
            load,
            0,  # pm: everyone honest — every diagnosis is a misdiagnosis
            base_seed + 1000 * run_index,
            target,
            max_duration_s,
        )
        for run_index in range(runs)
    ]
    detectors = run_trials(detection_trial, tasks, jobs=jobs)
    points = []
    for size in sample_sizes:
        hits = 0.0
        total_windows = 0
        for detector in detectors:
            rate, n_windows = windowed_detection_rate(
                detector, size, alpha=alpha, include_deterministic=False
            )
            if n_windows:
                hits += rate * n_windows
                total_windows += n_windows
        pooled = hits / total_windows if total_windows else float("nan")
        points.append(
            MisdiagnosisPoint(
                load=load,
                sample_size=size,
                misdiagnosis_probability=pooled,
                windows=total_windows,
            )
        )
    return points


def run_fig6_static(loads: Sequence[float] = DEFAULT_LOADS, **kwargs: Any) -> Dict[float, List[MisdiagnosisPoint]]:
    """Panel (a): static grid, one curve per load."""
    return {
        load: run_misdiagnosis_curve(grid_factory, load, **kwargs)
        for load in loads
    }


def run_fig6_mobile(load: float = 0.6, **kwargs: Any) -> List[MisdiagnosisPoint]:
    """Panel (b): mobile scenario at load 0.6."""
    return run_misdiagnosis_curve(mobile_factory, load, **kwargs)


def render_curves(title: str, curves: Mapping[float, Sequence[MisdiagnosisPoint]]) -> str:
    sizes = sorted({p.sample_size for points in curves.values() for p in points})
    series: Dict[str, List[float]] = {}
    for load, points in curves.items():
        by_size = {p.sample_size: p.misdiagnosis_probability for p in points}
        series[f"load={load}"] = [by_size.get(s, float("nan")) for s in sizes]
    return format_series(title, "sample size", sizes, series)


def main() -> Dict[float, List[MisdiagnosisPoint]]:
    static = run_fig6_static()
    print(render_curves("Figure 6(a): P(misdiagnosis), static grid", static))
    mobile = run_fig6_mobile()
    print(
        render_curves(
            "Figure 6(b): P(misdiagnosis), mobile", {0.6: mobile}
        )
    )
    return static


if __name__ == "__main__":
    main()
