"""Impairment sweep: detection vs. false accusation under channel faults.

The detection figures assume monitors decode every tagged RTS they are
in range of.  Real channels do not cooperate, and :mod:`repro.faults`
lets us dial that in: this sweep raises the monitor-side decode-failure
probability from 0 to 0.5 and, at each intensity, measures

* the detection probability against a PM cheater (how much statistical
  power survives the thinner, gappier sample stream), and
* the false-accusation behavior against an honest sender — the
  deterministic verifiers must stay silent (a quarantined observation
  never feeds them) and the hypothesis-test false-alarm rate must stay
  near ``alpha``.

Honest and cheating runs share seeds at every sweep point, so the two
curves differ only in the sender's back-off policy.  Each trial
installs its own fault spec (via :func:`repro.faults.runtime.
set_fault_spec`) and the schedule's draws are pure hashes, so the sweep
is deterministic for any ``--jobs`` value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.parallel import run_trials
from repro.experiments.reporting import format_series
from repro.experiments.runner import (
    collect_detection_samples,
    scaled,
    windowed_detection_rate,
)
from repro.experiments.scenarios import GridScenario
from repro.util.units import Seconds

#: Monitor-side decode-failure probabilities swept by default.
DEFAULT_DECODE_SWEEP = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)

#: Seed of the fault schedule itself (distinct from the scenario seed).
DEFAULT_FAULT_SEED = 101


@dataclass(frozen=True)
class FaultSweepPoint:
    """One impairment intensity: paired honest/cheater outcomes.

    ``false_accusations`` counts deterministic violations raised against
    the *honest* sender across all runs at this intensity — the sweep's
    soundness check, expected to be exactly zero no matter how hard the
    channel is impaired.  ``quarantine_reasons`` pools the audit reason
    codes over both roles as sorted (reason, count) pairs.
    """

    decode: float
    pm: int
    detection_probability: float
    combined_probability: float
    windows: int
    cheater_samples: int
    cheater_quarantined: int
    false_alarm_probability: float
    honest_windows: int
    honest_samples: int
    honest_quarantined: int
    false_accusations: int
    quarantine_reasons: Tuple[Tuple[str, int], ...]


def fault_spec_text(decode: float, fault_seed: int = DEFAULT_FAULT_SEED) -> Optional[str]:
    """The ``--faults`` spec string for one sweep intensity (None = clean)."""
    if decode <= 0:
        return None
    return f"decode={decode:.4f},seed={fault_seed}"


def fault_trial(task: Tuple[Any, ...]) -> Dict[str, Any]:
    """One seeded run under an installed fault spec (picklable task).

    ``task`` is ``(load, pm, seed, spec_text, target_samples,
    max_duration_s, sample_size, alpha)``.  Installs ``spec_text`` for
    the duration of the run (restoring the previous spec after), so the
    trial is self-contained whether it executes serially or in a forked
    worker.  Returns a compact summary dict rather than the detector —
    cheap to pickle, and everything the sweep aggregates.
    """
    load, pm, seed, spec_text, target, max_duration_s, sample_size, alpha = task
    from repro.faults.runtime import installed_spec, set_fault_spec

    previous = installed_spec()
    set_fault_spec(spec_text)
    try:
        scenario = GridScenario(load=load, traffic="poisson", seed=seed)
        detector = collect_detection_samples(
            scenario,
            pm,
            target_samples=target,
            max_duration_s=max_duration_s,
        )
    finally:
        set_fault_spec(previous)
    stat_rate, windows = windowed_detection_rate(
        detector, sample_size, alpha=alpha, include_deterministic=False
    )
    combined_rate, _ = windowed_detection_rate(
        detector, sample_size, alpha=alpha, include_deterministic=True
    )
    return {
        "samples": detector.observation_count,
        "quarantined": dict(detector.quarantine_counts),
        "violations": len(detector.violations),
        "stat_rate": stat_rate,
        "combined_rate": combined_rate,
        "windows": windows,
    }


def run_fault_sweep(
    decode_probs: Sequence[float] = DEFAULT_DECODE_SWEEP,
    pm: int = 60,
    load: float = 0.6,
    sample_size: int = 25,
    alpha: float = 0.05,
    base_seed: int = 29,
    fault_seed: int = DEFAULT_FAULT_SEED,
    runs: Optional[int] = None,
    target_samples: Optional[int] = None,
    max_duration_s: Seconds = 120.0,
    jobs: Optional[int] = None,
) -> List[FaultSweepPoint]:
    """One :class:`FaultSweepPoint` per decode-failure probability.

    At every intensity the same seeds run twice — once honest, once
    with the PM cheat — so the detection and false-accusation curves
    are a paired comparison.  Trials execute on the process pool
    (``jobs``/``--jobs``/``REPRO_JOBS``) with identical results for any
    worker count.
    """
    runs = runs if runs is not None else scaled(2)
    target = (
        target_samples if target_samples is not None else sample_size * scaled(4)
    )
    tasks = []
    for p in decode_probs:
        spec = fault_spec_text(p, fault_seed)
        for role_pm in (0, pm):
            for run_index in range(runs):
                seed = base_seed + 7919 * run_index + int(round(p * 1000))
                tasks.append(
                    (load, role_pm, seed, spec, target, max_duration_s,
                     sample_size, alpha)
                )
    summaries = run_trials(fault_trial, tasks, jobs=jobs)
    points = []
    per_point = 2 * runs
    for index, p in enumerate(decode_probs):
        block = summaries[index * per_point : (index + 1) * per_point]
        honest, cheater = block[:runs], block[runs:]
        reasons: Dict[str, int] = {}
        for summary in block:
            for reason, count in summary["quarantined"].items():
                reasons[reason] = reasons.get(reason, 0) + count
        points.append(
            FaultSweepPoint(
                decode=p,
                pm=pm,
                detection_probability=_pooled(cheater, "stat_rate"),
                combined_probability=_pooled(cheater, "combined_rate"),
                windows=sum(s["windows"] for s in cheater),
                cheater_samples=sum(s["samples"] for s in cheater),
                cheater_quarantined=sum(
                    sum(s["quarantined"].values()) for s in cheater
                ),
                false_alarm_probability=_pooled(honest, "combined_rate"),
                honest_windows=sum(s["windows"] for s in honest),
                honest_samples=sum(s["samples"] for s in honest),
                honest_quarantined=sum(
                    sum(s["quarantined"].values()) for s in honest
                ),
                false_accusations=sum(s["violations"] for s in honest),
                quarantine_reasons=tuple(sorted(reasons.items())),
            )
        )
    return points


def _pooled(summaries: Sequence[Dict[str, Any]], key: str) -> float:
    """Window-weighted pooling of a per-run rate (nan if no windows)."""
    hits = 0.0
    total = 0
    for summary in summaries:
        if summary["windows"]:
            hits += summary[key] * summary["windows"]
            total += summary["windows"]
    return hits / total if total else float("nan")


def render_sweep(points: Sequence[FaultSweepPoint], title: str = "Fault sweep: detection vs. impairment") -> str:
    decode_values = [p.decode for p in points]
    pm = points[0].pm if points else 0
    series = {
        f"P(detect) pm={pm}": [p.combined_probability for p in points],
        "P(false alarm)": [p.false_alarm_probability for p in points],
    }
    return format_series(title, "decode", decode_values, series)


def main() -> List[FaultSweepPoint]:
    points = run_fault_sweep()
    print(render_sweep(points))
    return points


if __name__ == "__main__":
    main()
