"""Shared experiment plumbing: fidelity scaling and sample collection.

The paper averages over 20 runs (probability curves) and 10,000 runs
(detection probabilities).  The default bench fidelity is far lower so
the whole suite completes in minutes; set ``REPRO_SCALE`` (a float
multiplier, default 1.0) to raise trial counts and durations toward the
paper's, e.g. ``REPRO_SCALE=10 pytest benchmarks/``.

The fidelity helpers themselves live in :mod:`repro.util.fidelity`
(``obs`` needs them too and sits below ``experiments`` in the layering
DAG); they are re-exported here for compatibility.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.detector import BackoffMisbehaviorDetector, DetectorConfig
from repro.core.ranksum import rank_sum_test
from repro.util.fidelity import (  # noqa: F401  (re-exported)
    fidelity_scale,
    reset_fidelity_cache,
    scaled,
)
from repro.util.units import Seconds


def collect_detection_samples(
    scenario: Any,
    pm: float,
    detector_config: Optional[DetectorConfig] = None,
    target_samples: int = 500,
    max_duration_s: Seconds = 240.0,
    policies: Optional[Dict[int, Any]] = None,
    audit: Optional[Any] = None,
    provenance: Optional[Any] = None,
    use_observatory: bool = True,
) -> Any:
    """Run one scenario with a (possibly misbehaving) sender and collect
    the detector's raw sample stream.

    Returns the detector after the run; ``detector.observations`` holds
    the (dictated, estimated) pairs and ``detector.violations`` the
    deterministic catches.  The simulation stops as soon as
    ``target_samples`` observations exist (or at ``max_duration_s``).

    ``audit`` is an optional :class:`repro.obs.DecisionAuditLog` that
    receives one structured record per verdict (shared across monitor
    hand-offs in the mobile case); ``provenance`` is an optional
    :class:`repro.obs.ProvenanceLog` that receives the full evidence
    chain behind each of those verdicts.

    ``use_observatory`` selects the shared observation plane (one
    :class:`repro.core.observatory.SharedChannelObservatory` engine
    listener with the detector as a subscriber — the default) versus the
    legacy per-detector-listener wiring; both produce byte-identical
    results (see ``tests/test_observatory.py``), the legacy path exists
    as the equivalence/bench baseline.
    """
    from repro.core.handoff import MonitorHandoff
    from repro.core.observatory import SharedChannelObservatory
    from repro.mac.misbehavior import PercentageMisbehavior
    from repro.util.rng import RngStream

    sender_policies = dict(policies or {})
    detector_config = detector_config or DetectorConfig(
        sample_size=10_000, known_n=5, known_k=5
    )
    sim, sender, monitor = scenario.build(policies=None)
    if pm or sender_policies:
        # Rebuild with the malicious policy now that the sender is known.
        if pm:
            sender_policies[sender] = PercentageMisbehavior(pm)
        sim, sender, monitor = scenario.build(policies=sender_policies)
    mobile = bool(getattr(scenario, "mobile", False))
    observatory = None
    if use_observatory:
        observatory = SharedChannelObservatory()
        sim.add_listener(observatory)
    if mobile:
        # The paper's mobile protocol: when the monitor drifts out of
        # range, a random current neighbor takes over.
        detector = MonitorHandoff(
            sender,
            monitor,
            config=detector_config,
            rng=RngStream(getattr(scenario, "seed", 0), "monitor-handoff"),
            separation=getattr(scenario, "separation", None),
            audit=audit,
            observatory=observatory,
            provenance=provenance,
        )
        if observatory is None:
            sim.add_listener(detector)
    elif observatory is not None:
        detector = observatory.attach(
            monitor,
            sender,
            config=detector_config,
            separation=getattr(scenario, "separation", None),
            audit=audit,
            provenance=provenance,
        )
    else:
        detector = BackoffMisbehaviorDetector(
            monitor,
            sender,
            config=detector_config,
            separation=getattr(scenario, "separation", None),
            audit=audit,
            provenance=provenance,
        )
        sim.add_listener(detector)
    sim.run(
        max_duration_s,
        stop_condition=lambda: detector.observation_count >= target_samples,
    )
    return detector


def detection_trial(task: Tuple[Any, ...]) -> Any:
    """One seeded detection run, as a picklable task for ``run_trials``.

    ``task`` is ``(scenario_factory, load, pm, seed, target_samples,
    max_duration_s)`` with a module-level ``scenario_factory(load,
    seed)``; returns the detector (see
    :func:`collect_detection_samples`).
    """
    scenario_factory, load, pm, seed, target_samples, max_duration_s = task
    scenario = scenario_factory(load, seed)
    return collect_detection_samples(
        scenario,
        pm,
        target_samples=target_samples,
        max_duration_s=max_duration_s,
    )


def windowed_detection_rate(
    detector: Any,
    sample_size: int,
    alpha: float = 0.05,
    alternative: str = "less",
    include_deterministic: bool = True,
    max_attempt: Optional[int] = None,
    guard_band: Optional[float] = None,
) -> Tuple[float, int]:
    """Fraction of non-overlapping windows diagnosing the sender malicious.

    This mirrors the paper's per-run semantics: each window of
    ``sample_size`` samples yields one hypothesis-test decision; a
    deterministic violation inside the window's time span also counts
    as a (correct or false) malicious diagnosis.  ``max_attempt`` and
    ``guard_band`` default to the detector's configuration.
    """
    if max_attempt is None:
        max_attempt = detector.config.max_test_attempt
    if guard_band is None:
        guard_band = detector.config.guard_band
    observations = [
        o for o in detector.observations if o.attempt <= max_attempt
    ]
    if len(observations) < sample_size:
        return float("nan"), 0
    violation_slots = sorted(v.slot for v in detector.violations)
    detected = 0
    windows = 0
    for start in range(0, len(observations) - sample_size + 1, sample_size):
        window = observations[start : start + sample_size]
        x = [w.dictated / _norm(w) for w in window]
        y = [w.estimated / _norm(w) + guard_band for w in window]
        result = rank_sum_test(x, y, alternative)
        hit = result.p_value < alpha
        if include_deterministic and not hit:
            lo = window[0].slot
            hi = window[-1].slot
            hit = any(lo <= s <= hi for s in violation_slots)
        detected += 1 if hit else 0
        windows += 1
    return detected / windows, windows


def _norm(observation):
    """The CW normalizer for one observation (see DetectorConfig)."""
    from repro.mac.backoff import contention_window

    window = contention_window(min(observation.attempt, 7), 31, 1023)
    return window + 1.0


def split_seeds(base_seed: int, count: int) -> List[int]:
    """Deterministic distinct seeds for repeated trials."""
    return [base_seed * 10_007 + i for i in range(count)]
