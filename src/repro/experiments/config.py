"""Table 1: the paper's simulation parameters, as an executable config.

``TABLE1`` is the canonical instance; ``Table1Config.render()`` prints
the table in the paper's layout so the bench harness can regenerate it
verbatim alongside the values actually used by this reproduction.
"""

from __future__ import annotations

from typing import List, Tuple

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Table1Config:
    """All rows of the paper's Table 1."""

    simulator: str = "repro slotted DCF simulator (ns-2 2.26 in the paper)"
    topology_types: tuple = ("Grid", "Random")
    nodes_grid: int = 56
    nodes_random: int = 112
    area_m: tuple = (3000.0, 3000.0)
    grid_spacing_m: float = 240.0
    transmission_range_m: float = 250.0
    sensing_range_m: float = 550.0
    mobility_model: str = "Random waypoint"
    speed_range_mps: tuple = (0.0, 20.0)
    pause_times_s: tuple = (0, 50, 100, 200, 300)
    traffic_models: tuple = ("Poisson", "CBR")
    queue_length: int = 50
    packet_size_bytes: int = 512
    simulation_time_s: float = 300.0
    phy_mac: str = "IEEE 802.11 specs."
    routing_protocol: str = "AODV"
    transport_protocol: str = "UDP"

    def rows(self) -> List[Tuple[str, str]]:
        """The table rows as (parameter, value) string pairs."""
        return [
            ("Simulator", self.simulator),
            ("Topology types", ", ".join(self.topology_types)),
            (
                "Total number of nodes",
                f"{self.nodes_grid} (Grid topology) / "
                f"{self.nodes_random} (Random topology)",
            ),
            ("Topology Area", f"{self.area_m[0]:.0f}m X {self.area_m[1]:.0f}m"),
            (
                "Dist. between one-hop neighbors (Grid)",
                f"{self.grid_spacing_m:.0f}m",
            ),
            ("Transmission range", f"{self.transmission_range_m:.0f}m"),
            ("Sensing/Interference range", f"{self.sensing_range_m:.0f}m"),
            ("Mobility", self.mobility_model),
            (
                "Range of speed",
                f"{self.speed_range_mps[0]:.0f}-{self.speed_range_mps[1]:.0f} m/s",
            ),
            (
                "Pause times",
                ",".join(str(p) for p in self.pause_times_s) + " seconds",
            ),
            ("Traffic Model", ", ".join(self.traffic_models)),
            ("Queue length", str(self.queue_length)),
            ("Packet size", f"{self.packet_size_bytes} bytes"),
            ("Simulation time", f"{self.simulation_time_s:.0f}s"),
            ("Physical, MAC Layers", self.phy_mac),
            ("Routing protocol", self.routing_protocol),
            ("Transport protocol", self.transport_protocol),
        ]

    def render(self) -> str:
        """The table as printable text."""
        rows = self.rows()
        width = max(len(name) for name, _value in rows)
        lines = ["Table 1. Parameters used in simulations"]
        lines += [f"  {name.ljust(width)}  {value}" for name, value in rows]
        return "\n".join(lines)


#: The canonical Table 1 instance used across the experiment harness.
TABLE1 = Table1Config()
