"""Bandwidth-starvation measurement: what the attack actually steals.

The paper's motivation: "by simply manipulating the back-off timers ...
malicious nodes can cause a drastically reduced allocation of bandwidth
to well-behaved nodes."  This module quantifies it — per-node goodput,
the cheater's share of its contention neighborhood, and Jain's fairness
index — so the starvation claim is itself reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.sim.listeners import SimulationListener
from repro.util.units import Microseconds, Seconds, Slots
from repro.util.validation import check_positive


def jain_fairness_index(values: Iterable[float]) -> float:
    """Jain's index: 1.0 = perfectly fair, 1/n = one node takes all."""
    values = [float(v) for v in values]
    if not values:
        raise ValueError("jain_fairness_index needs at least one value")
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        return 1.0  # everyone got nothing: degenerate but equal
    return total * total / (len(values) * squares)


class GoodputTracker(SimulationListener):
    """Delivered payload bits per node, measured on the air."""

    def __init__(self, payload_bytes: int = 512) -> None:
        self.payload_bytes = int(check_positive(payload_bytes, "payload_bytes"))
        self.delivered_packets: Dict[int, int] = {}
        self.first_slot: Optional[Slots] = None
        self.last_slot: Slots = 0

    def on_transmission_end(self, slot: Slots, transmission: Any, success: bool, medium: Any) -> None:
        if self.first_slot is None:
            self.first_slot = transmission.start_slot
        self.last_slot = max(self.last_slot, transmission.end_slot)
        if success:
            sender = transmission.sender
            self.delivered_packets[sender] = (
                self.delivered_packets.get(sender, 0) + 1
            )

    def goodput_bps(self, node_id: int, slot_time_us: Microseconds = 20.0) -> float:
        """Delivered payload bits/second for one node."""
        if self.first_slot is None:
            return 0.0
        span_s = max((self.last_slot - self.first_slot) * slot_time_us / 1e6, 1e-9)
        packets = self.delivered_packets.get(node_id, 0)
        return packets * self.payload_bytes * 8 / span_s

    def share_of(self, node_id: int, population: Iterable[int]) -> float:
        """Node's fraction of the packets delivered by ``population``."""
        total = sum(self.delivered_packets.get(n, 0) for n in population)
        if total == 0:
            return 0.0
        return self.delivered_packets.get(node_id, 0) / total


@dataclass(frozen=True)
class StarvationPoint:
    """Throughput allocation at one misbehavior level."""

    pm: int
    cheater_share: float
    fair_share: float          # 1 / population size
    fairness_index: float
    cheater_packets: int
    neighbor_packets_mean: float


def measure_starvation(
    scenario_factory: Callable[[int], Any],
    pm: int,
    seed: int,
    duration_s: Seconds = 8.0,
) -> StarvationPoint:
    """Run one scenario and measure the cheater's bandwidth grab.

    The share is computed over the cheater and the flow sources inside
    its sensing neighborhood (the nodes it directly competes with).
    """
    from repro.mac.misbehavior import PercentageMisbehavior

    scenario = scenario_factory(seed)
    _sim, sender, _monitor = scenario.build()
    policies = {sender: PercentageMisbehavior(pm)} if pm else None
    sim, sender, monitor = scenario.build(policies=policies)
    tracker = GoodputTracker(payload_bytes=sim.config.timing.payload_bytes)
    sim.add_listener(tracker)
    sim.run(duration_s)

    competitors = [
        flow.source
        for flow in sim.flows
        if flow.source == sender
        or sim.medium.senses(flow.source, sender)
    ]
    deliveries = [tracker.delivered_packets.get(n, 0) for n in competitors]
    neighbors = [n for n in competitors if n != sender]
    neighbor_counts = [tracker.delivered_packets.get(n, 0) for n in neighbors]
    return StarvationPoint(
        pm=pm,
        cheater_share=tracker.share_of(sender, competitors),
        fair_share=1.0 / len(competitors) if competitors else float("nan"),
        fairness_index=jain_fairness_index(deliveries),
        cheater_packets=tracker.delivered_packets.get(sender, 0),
        neighbor_packets_mean=(
            sum(neighbor_counts) / len(neighbor_counts)
            if neighbor_counts
            else float("nan")
        ),
    )


def _starvation_trial(task: Tuple[Any, ...]) -> StarvationPoint:
    """One PM level, as a picklable task for ``run_trials``."""
    scenario_factory, pm, seed, duration_s = task
    return measure_starvation(scenario_factory, pm, seed, duration_s)


def run_starvation_sweep(
    scenario_factory: Callable[[int], Any],
    pm_values: Tuple[int, ...] = (0, 25, 50, 80, 100),
    seed: int = 201,
    duration_s: Seconds = 8.0,
    jobs: Optional[int] = None,
) -> List[StarvationPoint]:
    """The cheater's share and the fairness index across PM levels.

    PM levels are independent runs, so they execute on the process
    pool (``jobs``/``REPRO_JOBS``, see
    :mod:`repro.experiments.parallel`).
    """
    from repro.experiments.parallel import run_trials

    tasks = [
        (scenario_factory, pm, seed, duration_s) for pm in pm_values
    ]
    return run_trials(_starvation_trial, tasks, jobs=jobs)
