"""Scenario builders matching the paper's two evaluation setups.

Grid: 7x8 nodes, 240 m spacing, 30 source-destination pairs (each source
streams to a random one-hop neighbor); the monitored sender S and the
monitor R are the two adjacent nodes nearest the grid center, with S
sending to R (paper Section 5, "Simulation Measurements").

Random: 112 nodes uniform in 3000 m x 3000 m, same flow structure; S is
the node nearest the field center and R its nearest neighbor.  The
mobile variant runs the random waypoint model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.geometry.vectors import Point, distance
from repro.sim.network import Flow, Simulation, SimulationConfig
from repro.topology.mobility import RandomWaypoint
from repro.topology.placement import (
    center_pair_indices,
    constant_density_side,
    grid_positions,
    random_positions,
)
from repro.util.rng import RngStream
from repro.util.units import Meters

#: (simulation, sender, monitor) — what single-pair builders return.
BuildResult = Tuple[Simulation, int, int]
Policies = Optional[Dict[int, Any]]
MacOptions = Optional[Dict[str, Any]]


def _flow_sources(
    n_nodes: int, n_pairs: int, sender: int, monitor: int, rng: RngStream
) -> List[int]:
    """Pick ``n_pairs`` distinct flow sources, always including the
    monitored sender, never the monitor (it must be free to observe)."""
    candidates = [i for i in range(n_nodes) if i not in (sender, monitor)]
    rng.shuffle(candidates)
    return [sender] + candidates[: max(n_pairs - 1, 0)]


@dataclass
class GridScenario:
    """The paper's first experiment setup."""

    rows: int = 7
    cols: int = 8
    spacing: Meters = 240.0
    n_pairs: int = 30
    load: float = 0.6
    traffic: str = "poisson"      # "poisson" | "cbr"
    seed: int = 1
    medium_index: str = "auto"    # "auto" | "grid" | "brute"
    tile_partition: bool = False

    def build(self, policies: Policies = None, mac_options: MacOptions = None) -> BuildResult:
        """Returns ``(simulation, sender, monitor)``."""
        positions = grid_positions(self.rows, self.cols, self.spacing)
        sender, monitor = center_pair_indices(self.rows, self.cols)
        rng = RngStream(self.seed, "grid-flow-sources")
        sources = _flow_sources(
            len(positions), self.n_pairs, sender, monitor, rng
        )
        flows = [
            Flow(
                source=src,
                destination=monitor if src == sender else None,
                kind=self.traffic,
                load=self.load,
            )
            for src in sources
        ]
        sim = Simulation(
            positions,
            flows=flows,
            policies=policies,
            config=SimulationConfig(
                seed=self.seed,
                medium_index=self.medium_index,
                tile_partition=self.tile_partition,
            ),
            mac_options=mac_options,
        )
        return sim, sender, monitor

    @property
    def separation(self) -> Meters:
        return self.spacing


@dataclass
class RandomScenario:
    """The paper's second setup: random placement, optionally mobile."""

    n_nodes: int = 112
    width: Meters = 3000.0
    height: Meters = 3000.0
    n_pairs: int = 30
    load: float = 0.6
    traffic: str = "cbr"
    mobile: bool = False
    max_speed: float = 20.0
    pause_time: float = 0.0
    seed: int = 1
    medium_index: str = "auto"    # "auto" | "grid" | "brute"
    tile_partition: bool = False

    def build(self, policies: Policies = None, mac_options: MacOptions = None) -> BuildResult:
        """Returns ``(simulation, sender, monitor)``."""
        place_rng = RngStream(self.seed, "random-placement")
        positions = random_positions(
            self.n_nodes, self.width, self.height, rng=place_rng
        )
        sender, monitor = self._center_pair(positions)
        rng = RngStream(self.seed, "random-flow-sources")
        sources = _flow_sources(self.n_nodes, self.n_pairs, sender, monitor, rng)
        # Under mobility a fixed S -> R stream dies as soon as the pair
        # separates; the paper's sources pick an (in-range) neighbor, so
        # mobile flows re-choose per packet.
        flows = [
            Flow(
                source=src,
                destination=(
                    monitor if src == sender and not self.mobile else None
                ),
                kind=self.traffic,
                load=self.load,
                per_packet_destination=True if self.mobile else None,
            )
            for src in sources
        ]
        if self.mobile:
            topology = RandomWaypoint(
                positions,
                width=self.width,
                height=self.height,
                max_speed=self.max_speed,
                pause_time=self.pause_time,
                rng=RngStream(self.seed, "waypoints"),
            )
        else:
            topology = positions
        sim = Simulation(
            topology,
            flows=flows,
            policies=policies,
            config=SimulationConfig(
                seed=self.seed,
                medium_index=self.medium_index,
                tile_partition=self.tile_partition,
            ),
            mac_options=mac_options,
        )
        self._positions = positions
        return sim, sender, monitor

    def _center_pair(self, positions: Sequence[Point]) -> Tuple[int, int]:
        """Sender nearest the field center; monitor its nearest neighbor
        within decode range (falls back to nearest node outright)."""
        center = (self.width / 2.0, self.height / 2.0)
        sender = min(
            range(len(positions)), key=lambda i: distance(positions[i], center)
        )
        others = [
            (distance(positions[i], positions[sender]), i)
            for i in range(len(positions))
            if i != sender
        ]
        others.sort()
        self.pair_separation = others[0][0]
        return sender, others[0][1]

    @property
    def separation(self) -> Meters:
        return getattr(self, "pair_separation", 240.0)


@dataclass
class RandomWaypointScenario:
    """Constant-density random-waypoint topologies at 1k-10k nodes.

    The paper's mobile setup (random waypoint, per-packet neighbor
    destinations) scaled up: the field side grows with sqrt(n) so the
    local contention structure — ~12 nodes per 550 m sensing disk, the
    regime every detector number was calibrated in — is preserved at
    any size (see :func:`repro.topology.placement.constant_density_side`).
    Flow count scales the same way (the paper's 30 pairs per 112 nodes),
    keeping per-area offered load constant.

    ``n_nodes=1000`` and ``n_nodes=10000`` are the presets benchmarked
    by ``bench_engine.py``; they are only tractable on the medium's
    grid index (``medium_index="brute"`` exists as the equivalence and
    speedup baseline).
    """

    n_nodes: int = 1000
    n_pairs: Optional[int] = None   # None: scale the paper's 30/112
    load: float = 0.6
    traffic: str = "poisson"
    max_speed: float = 20.0
    pause_time: float = 0.0
    epoch_interval_s: float = 0.5
    seed: int = 1
    medium_index: str = "auto"      # "auto" | "grid" | "brute"
    tile_partition: bool = False

    @property
    def side(self) -> Meters:
        """Field side preserving the paper's reference density."""
        return constant_density_side(self.n_nodes)

    @property
    def flow_count(self) -> int:
        if self.n_pairs is not None:
            return self.n_pairs
        return max(round(30 * self.n_nodes / 112), 1)

    def build(
        self, policies: Policies = None, mac_options: MacOptions = None
    ) -> BuildResult:
        """Returns ``(simulation, sender, monitor)``."""
        side = self.side
        place_rng = RngStream(self.seed, "rwp-placement")
        positions = random_positions(self.n_nodes, side, side, rng=place_rng)
        center = (side / 2.0, side / 2.0)
        sender = min(
            range(len(positions)), key=lambda i: distance(positions[i], center)
        )
        others = sorted(
            (distance(positions[i], positions[sender]), i)
            for i in range(len(positions))
            if i != sender
        )
        self.pair_separation = others[0][0]
        monitor = others[0][1]
        rng = RngStream(self.seed, "rwp-flow-sources")
        sources = _flow_sources(
            self.n_nodes, self.flow_count, sender, monitor, rng
        )
        # Mobile flows re-pick an in-range neighbor per packet — a
        # fixed pair would separate within a handful of epochs.
        flows = [
            Flow(
                source=src,
                destination=None,
                kind=self.traffic,
                load=self.load,
                per_packet_destination=True,
            )
            for src in sources
        ]
        topology = RandomWaypoint(
            positions,
            width=side,
            height=side,
            max_speed=self.max_speed,
            pause_time=self.pause_time,
            rng=RngStream(self.seed, "rwp-waypoints"),
        )
        sim = Simulation(
            topology,
            flows=flows,
            policies=policies,
            config=SimulationConfig(
                seed=self.seed,
                epoch_interval_s=self.epoch_interval_s,
                medium_index=self.medium_index,
                tile_partition=self.tile_partition,
            ),
            mac_options=mac_options,
        )
        return sim, sender, monitor

    @property
    def mobile(self) -> bool:
        return True

    @property
    def separation(self) -> Meters:
        return getattr(self, "pair_separation", 240.0)


@dataclass
class MultiMonitorGridScenario:
    """Dense-monitor grid: M monitor nodes each watch the same C cheaters.

    The cooperative regime the shared observation plane exists for:
    every monitor runs one detector per tagged node, so a monitor
    node's busy timeline and estimator feeds are shared by C detectors
    (M x C detectors on M channels).  Monitors must *decode* every
    tagged node, so the default geometry tightens the grid spacing to
    110 m — the 2-hop knight-step diagonal is 110 * sqrt(5) ~ 246 m,
    just inside the 250 m decode range — and places the C = 4 tagged
    nodes in a 2 x 2 block at the grid center with the M = 4 monitors
    on the rows flanking the block.

    ``build`` returns ``(simulation, pairs)`` with the full
    (monitor, tagged) attach list in deterministic order.
    """

    rows: int = 7
    cols: int = 8
    spacing: Meters = 110.0
    n_pairs: int = 30
    load: float = 0.6
    traffic: str = "poisson"
    seed: int = 1
    #: tagged node indices; () picks the central 2x2 block
    tagged: Tuple[int, ...] = ()
    #: monitor node indices; () picks the rows flanking the block
    monitors: Tuple[int, ...] = ()

    def tagged_nodes(self) -> List[int]:
        """The tagged (monitored) node indices."""
        if self.tagged:
            return list(self.tagged)
        r, c = self.rows // 2, self.cols // 2
        return sorted(
            rr * self.cols + cc for rr in (r - 1, r) for cc in (c - 1, c)
        )

    def monitor_nodes(self) -> List[int]:
        """The monitor node indices."""
        if self.monitors:
            return list(self.monitors)
        r, c = self.rows // 2, self.cols // 2
        return sorted(
            rr * self.cols + cc for rr in (r - 2, r + 1) for cc in (c - 1, c)
        )

    def monitor_pairs(self) -> List[Tuple[int, int]]:
        """All (monitor, tagged) pairs, grouped by monitor node."""
        taggeds = self.tagged_nodes()
        return [
            (monitor, tagged)
            for monitor in self.monitor_nodes()
            for tagged in taggeds
        ]

    def build(
        self, policies: Policies = None, mac_options: MacOptions = None
    ) -> Tuple[Simulation, List[Tuple[int, int]]]:
        """Returns ``(simulation, pairs)``; tagged node i streams to
        monitor i % M, background flows fill up to ``n_pairs``."""
        positions = grid_positions(self.rows, self.cols, self.spacing)
        pairs = self.monitor_pairs()
        taggeds = self.tagged_nodes()
        monitors = self.monitor_nodes()
        reserved = set(taggeds) | set(monitors)
        candidates = [i for i in range(len(positions)) if i not in reserved]
        rng = RngStream(self.seed, "multi-monitor-flow-sources")
        rng.shuffle(candidates)
        background = candidates[: max(self.n_pairs - len(taggeds), 0)]
        flows = [
            Flow(
                source=tagged,
                destination=monitors[i % len(monitors)],
                kind=self.traffic,
                load=self.load,
            )
            for i, tagged in enumerate(taggeds)
        ] + [
            Flow(source=src, destination=None, kind=self.traffic, load=self.load)
            for src in background
        ]
        sim = Simulation(
            positions,
            flows=flows,
            policies=policies,
            config=SimulationConfig(seed=self.seed),
            mac_options=mac_options,
        )
        return sim, pairs

    @property
    def separation(self) -> Meters:
        return self.spacing


def build_grid_simulation(
    load: float = 0.6,
    traffic: str = "poisson",
    seed: int = 1,
    policies: Policies = None,
    n_pairs: int = 30,
) -> BuildResult:
    """Convenience wrapper returning ``(sim, sender, monitor)``."""
    scenario = GridScenario(load=load, traffic=traffic, seed=seed, n_pairs=n_pairs)
    return scenario.build(policies=policies)


def build_random_simulation(
    load: float = 0.6,
    traffic: str = "cbr",
    seed: int = 1,
    policies: Policies = None,
    mobile: bool = False,
    n_pairs: int = 30,
) -> BuildResult:
    """Convenience wrapper returning ``(sim, sender, monitor)``."""
    scenario = RandomScenario(
        load=load, traffic=traffic, seed=seed, mobile=mobile, n_pairs=n_pairs
    )
    return scenario.build(policies=policies)
