"""Experiment harness: reproduces every table and figure of the paper.

Each ``figN`` module exposes a ``run_*`` function returning structured
results plus a ``main()`` that prints the series the paper plots.  The
benchmarks in ``benchmarks/`` call these with scaled-down defaults; the
``REPRO_SCALE`` environment variable multiplies the fidelity knobs
(trial counts, durations) for full-fidelity runs.
"""

from repro.experiments.config import Table1Config, TABLE1
from repro.experiments.scenarios import (
    GridScenario,
    RandomScenario,
    build_grid_simulation,
    build_random_simulation,
)

__all__ = [
    "GridScenario",
    "RandomScenario",
    "TABLE1",
    "Table1Config",
    "build_grid_simulation",
    "build_random_simulation",
]
