"""Figure 3: conditional channel-view probabilities, grid + Poisson.

(a) p(S busy | R idle) and (b) p(S idle | R busy) versus traffic
intensity: the "Simulation" series is measured from ground-truth joint
busy/idle processes at S and R; the "Analysis" series evaluates paper
eqs. 3-4 at the measured traffic intensity with n = k = 5 (the values
the paper fixes for the grid).

The paper sweeps traffic intensity 0.1-0.8 and observes each point over
50,000 slots, averaged over 20 runs.  We sweep the per-flow offered
load and *measure* the resulting intensity at the monitor, so the x
axis is the realized rho — the quantity the equations are defined on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.core.observation import ChannelObserver, joint_state_counts
from repro.core.sysstate import SystemStateEstimator
from repro.experiments.parallel import run_trials
from repro.experiments.reporting import format_table
from repro.experiments.runner import scaled, split_seeds
from repro.experiments.scenarios import GridScenario, RandomScenario
from repro.geometry.regions import RegionModel
from repro.util.units import Meters, Slots

ScenarioFactory = Callable[[float, int], Any]

#: Offered per-flow loads chosen so measured intensity spans ~0.1-0.85.
DEFAULT_LOAD_SWEEP = (0.005, 0.01, 0.02, 0.04, 0.08, 0.15, 0.3, 0.6)


@dataclass(frozen=True)
class ProbabilityPoint:
    """One x-axis point of Figure 3/4."""

    offered_load: float
    rho: float                 # measured traffic intensity at the monitor
    sim_p_busy_given_idle: float
    ana_p_busy_given_idle: float
    sim_p_idle_given_busy: float
    ana_p_idle_given_busy: float


def _measure_seed(task: Tuple[Any, ...]) -> Optional[Tuple[float, float, float]]:
    """One seeded observation run: measured (rho, p(B|I), p(I|B)).

    ``task`` is ``(scenario_factory, load, seed, observe_slots)``.
    Returns ``None`` when the run is unusable (a degenerate channel
    with no busy or no idle slots at the monitor).
    """
    scenario_factory, load, seed, observe_slots = task
    scenario = scenario_factory(load, seed)
    sim, sender, monitor = scenario.build()
    obs_r = ChannelObserver(monitor, sender)
    obs_s = ChannelObserver(sender, monitor)
    sim.add_listener(obs_r)
    sim.add_listener(obs_s)
    sim.run_slots(observe_slots)
    counts = joint_state_counts(obs_r, obs_s, 0, sim.engine.now)
    total = sum(counts.values())
    r_idle = counts["II"] + counts["IB"]
    r_busy = counts["BI"] + counts["BB"]
    if total == 0 or r_idle == 0 or r_busy == 0:
        return None
    return (r_busy / total, counts["IB"] / r_idle, counts["BI"] / r_busy)


def _aggregate_point(
    load: float,
    samples: Sequence[Optional[Tuple[float, float, float]]],
    n: int = 5,
    k: int = 5,
    separation: Meters = 240.0,
) -> ProbabilityPoint:
    """Average per-seed samples (in seed order) into a ProbabilityPoint."""
    estimator = SystemStateEstimator(RegionModel(separation=separation))
    sums = {"rho": 0.0, "sbi": 0.0, "sib": 0.0}
    used = 0
    for sample in samples:
        if sample is None:
            continue
        rho, sbi, sib = sample
        sums["rho"] += rho
        sums["sbi"] += sbi
        sums["sib"] += sib
        used += 1
    if used == 0:
        raise RuntimeError(f"no usable runs at load {load}")
    rho = sums["rho"] / used
    probs = estimator.probabilities(rho, n, k)
    return ProbabilityPoint(
        offered_load=load,
        rho=rho,
        sim_p_busy_given_idle=sums["sbi"] / used,
        ana_p_busy_given_idle=probs.p_busy_given_idle,
        sim_p_idle_given_busy=sums["sib"] / used,
        ana_p_idle_given_busy=probs.p_idle_given_busy,
    )


def measure_point(
    scenario_factory: ScenarioFactory,
    load: float,
    seeds: Sequence[int],
    observe_slots: Slots = 50_000,
    n: int = 5,
    k: int = 5,
    separation: Meters = 240.0,
    jobs: Optional[int] = None,
) -> ProbabilityPoint:
    """Average the measured and analytical probabilities over seeds."""
    tasks = [(scenario_factory, load, seed, observe_slots) for seed in seeds]
    samples = run_trials(_measure_seed, tasks, jobs=jobs)
    return _aggregate_point(load, samples, n=n, k=k, separation=separation)


def run_probability_sweep(
    scenario_factory: ScenarioFactory,
    loads: Sequence[float] = DEFAULT_LOAD_SWEEP,
    runs: Optional[int] = None,
    observe_slots: Optional[Slots] = None,
    base_seed: int = 3,
    separation: Meters = 240.0,
    jobs: Optional[int] = None,
) -> List[ProbabilityPoint]:
    """The full Figure 3/4 sweep; returns a list of ProbabilityPoint.

    All (load, seed) trials are flattened into one task list so the
    process pool (``jobs``/``REPRO_JOBS``, see
    :mod:`repro.experiments.parallel`) stays saturated across the
    whole sweep; per-load aggregation order matches the serial loop,
    so the points are identical for any worker count.
    """
    runs = runs if runs is not None else scaled(4)
    observe_slots = observe_slots if observe_slots is not None else scaled(
        25_000, minimum=5_000
    )
    tasks: List[Tuple[Any, ...]] = []
    spans = []
    for load in loads:
        seeds = split_seeds(base_seed + int(load * 10_000), runs)
        start = len(tasks)
        tasks.extend(
            (scenario_factory, load, seed, observe_slots) for seed in seeds
        )
        spans.append((load, start, len(tasks)))
    samples = run_trials(_measure_seed, tasks, jobs=jobs)
    return [
        _aggregate_point(load, samples[start:stop], separation=separation)
        for load, start, stop in spans
    ]


def grid_poisson_factory(load: float, seed: int) -> GridScenario:
    return GridScenario(load=load, traffic="poisson", seed=seed)


def run_fig3(**kwargs: Any) -> List[ProbabilityPoint]:
    """Figure 3 (both panels): Poisson traffic, grid topology."""
    return run_probability_sweep(grid_poisson_factory, **kwargs)


def render_points(title: str, points: Sequence[ProbabilityPoint]) -> str:
    rows = [
        (
            p.offered_load,
            p.rho,
            p.sim_p_busy_given_idle,
            p.ana_p_busy_given_idle,
            p.sim_p_idle_given_busy,
            p.ana_p_idle_given_busy,
        )
        for p in points
    ]
    return format_table(
        title,
        ["offered", "rho", "sim p(B|I)", "ana p(B|I)", "sim p(I|B)", "ana p(I|B)"],
        rows,
    )


def main() -> List[ProbabilityPoint]:
    points = run_fig3()
    print(render_points("Figure 3: grid topology, Poisson traffic", points))
    return points


if __name__ == "__main__":
    main()
