"""repro — reproduction of "Detecting MAC Layer Back-off Timer Violations
in Mobile Ad Hoc Networks" (Lolla, Law, Krishnamurthy, Ravishankar,
Manjunath; IEEE ICDCS 2006).

Quick start::

    from repro import (
        Simulation, Flow, grid_positions, BackoffMisbehaviorDetector,
        PercentageMisbehavior,
    )

    positions = grid_positions()                 # the paper's 7x8 grid
    sender, monitor = 27, 28
    sim = Simulation(
        positions,
        flows=[Flow(source=sender, load=0.6)],
        policies={sender: PercentageMisbehavior(pm=50)},
    )
    detector = BackoffMisbehaviorDetector(monitor, sender)
    sim.add_listener(detector)
    sim.run(duration_s=5.0)
    print(detector.latest_verdict)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core import (
    ArmaTrafficEstimator,
    BackoffHypothesisTest,
    BackoffMisbehaviorDetector,
    BackoffObservation,
    BianchiModel,
    ChannelObserver,
    CompetingTerminalEstimator,
    DetectorConfig,
    MonitorHandoff,
    NodeDensityEstimator,
    SystemStateEstimator,
    Verdict,
    rank_sum_test,
)
from repro.core.records import Diagnosis
from repro.geometry import RegionModel, SensingRegions
from repro.mac import (
    AdaptiveLoadCheat,
    AlienDistributionBackoff,
    DcfMac,
    FixedBackoff,
    HonestBackoff,
    IntermittentMisbehavior,
    MacTiming,
    NoExponentialBackoff,
    PercentageMisbehavior,
    RtsFrame,
    VerifiableBackoffPrng,
)
from repro.obs import (
    AuditRecord,
    DecisionAuditLog,
    MetricsListener,
    MetricsRegistry,
    RunManifest,
    disable_metrics,
    enable_metrics,
    metrics_enabled,
    shared_registry,
)
from repro.sim import Flow, Simulation, SimulationConfig, StatsCollector
from repro.topology import (
    RandomWaypoint,
    StaticMobility,
    center_pair_indices,
    grid_positions,
    random_positions,
)
from repro.util import RngStream

__version__ = "1.0.0"

__all__ = [
    "AdaptiveLoadCheat",
    "AlienDistributionBackoff",
    "ArmaTrafficEstimator",
    "AuditRecord",
    "BackoffHypothesisTest",
    "BackoffMisbehaviorDetector",
    "BackoffObservation",
    "BianchiModel",
    "ChannelObserver",
    "CompetingTerminalEstimator",
    "DcfMac",
    "DecisionAuditLog",
    "DetectorConfig",
    "Diagnosis",
    "FixedBackoff",
    "Flow",
    "HonestBackoff",
    "IntermittentMisbehavior",
    "MacTiming",
    "MetricsListener",
    "MetricsRegistry",
    "MonitorHandoff",
    "NoExponentialBackoff",
    "NodeDensityEstimator",
    "PercentageMisbehavior",
    "RandomWaypoint",
    "RegionModel",
    "RngStream",
    "RtsFrame",
    "RunManifest",
    "SensingRegions",
    "Simulation",
    "SimulationConfig",
    "StaticMobility",
    "StatsCollector",
    "SystemStateEstimator",
    "Verdict",
    "VerifiableBackoffPrng",
    "center_pair_indices",
    "disable_metrics",
    "enable_metrics",
    "grid_positions",
    "metrics_enabled",
    "random_positions",
    "rank_sum_test",
    "shared_registry",
    "__version__",
]
