"""repro.obs — zero-dependency observability for the simulator.

Four cooperating pieces:

* :mod:`repro.obs.registry` — :class:`MetricsRegistry` with counters,
  gauges and fixed-bucket histograms.  Snapshots are plain dicts with
  deterministically ordered keys, so two runs with the same seed
  produce byte-identical JSON.
* :mod:`repro.obs.listener` — :class:`MetricsListener`, a
  :class:`repro.sim.listeners.SimulationListener` that feeds a registry
  from the engine's ``on_event``/``on_slot_end`` hooks.  The engine only
  dispatches those hooks to listeners that override them, so runs
  without metrics pay nothing.
* :mod:`repro.obs.audit` — the detector decision audit log: every
  :class:`repro.core.detector.BackoffMisbehaviorDetector` verdict as a
  structured :class:`AuditRecord` (which rule fired, deterministic vs.
  statistical, p-value/statistic/threshold), exportable to JSONL.
* :mod:`repro.obs.manifest` — :class:`RunManifest`, the machine-readable
  record written next to experiment/bench output: seed, config,
  ``REPRO_SCALE``, package version, wall-clock duration and the final
  metric snapshot.

:mod:`repro.obs.profile` (the only module besides nothing else allowed
to read the host clock — see the RPR003 allowlist in
:mod:`repro.checks.lint`) adds a slot-throughput profiler; import it
explicitly.  :mod:`repro.obs.runtime` holds the process-wide switch the
CLI ``--metrics`` flag (or ``REPRO_METRICS=1``) flips; every
:class:`repro.sim.engine.SimulationEngine` built while it is on attaches
a listener bound to the shared registry.
"""

from repro.obs.audit import (
    AUDIT_RULES,
    AUDIT_SCHEMA,
    AuditRecord,
    DecisionAuditLog,
)
from repro.obs.listener import MetricsListener
from repro.obs.manifest import (
    MANIFEST_REQUIRED_KEYS,
    MANIFEST_SCHEMA,
    RunManifest,
    package_version,
    to_jsonable,
)
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.runtime import (
    disable_metrics,
    enable_metrics,
    metrics_enabled,
    reset_metrics,
    shared_registry,
)

__all__ = [
    "AUDIT_RULES",
    "AUDIT_SCHEMA",
    "AuditRecord",
    "Counter",
    "DecisionAuditLog",
    "Gauge",
    "Histogram",
    "MANIFEST_REQUIRED_KEYS",
    "MANIFEST_SCHEMA",
    "MetricsListener",
    "MetricsRegistry",
    "RunManifest",
    "disable_metrics",
    "enable_metrics",
    "metrics_enabled",
    "package_version",
    "reset_metrics",
    "shared_registry",
    "to_jsonable",
]
