"""repro.obs — zero-dependency observability for the simulator.

Four cooperating pieces:

* :mod:`repro.obs.registry` — :class:`MetricsRegistry` with counters,
  gauges and fixed-bucket histograms.  Snapshots are plain dicts with
  deterministically ordered keys, so two runs with the same seed
  produce byte-identical JSON.
* :mod:`repro.obs.listener` — :class:`MetricsListener`, a
  :class:`repro.sim.listeners.SimulationListener` that feeds a registry
  from the engine's ``on_event``/``on_slot_end`` hooks.  The engine only
  dispatches those hooks to listeners that override them, so runs
  without metrics pay nothing.
* :mod:`repro.obs.audit` — the detector decision audit log: every
  :class:`repro.core.detector.BackoffMisbehaviorDetector` verdict as a
  structured :class:`AuditRecord` (which rule fired, deterministic vs.
  statistical, p-value/statistic/threshold), exportable to JSONL.
* :mod:`repro.obs.manifest` — :class:`RunManifest`, the machine-readable
  record written next to experiment/bench output: seed, config,
  ``REPRO_SCALE``, package version, wall-clock duration and the final
  metric snapshot.
* :mod:`repro.obs.trace` — :class:`SpanTracer`, the deterministic
  slot-clocked flight recorder behind the CLI ``--trace`` flag; exports
  Chrome trace-event JSON (Perfetto-loadable).
* :mod:`repro.obs.provenance` — :class:`ProvenanceLog` and
  :func:`explain`: the full evidence chain (observations, window
  bounds, rank-sum inputs, ARMA state, quarantine drops) behind every
  detector verdict.
* :mod:`repro.obs.history` — the ``BENCH_HISTORY.jsonl`` perf-trajectory
  ledger and its ``python -m repro.obs.history check`` regression gate.

:mod:`repro.obs.profile` (the only module besides nothing else allowed
to read the host clock — see the RPR003 allowlist in
:mod:`repro.checks.lint`) adds a slot-throughput profiler; import it
explicitly.  :mod:`repro.obs.runtime` holds the process-wide switch the
CLI ``--metrics`` flag (or ``REPRO_METRICS=1``) flips; every
:class:`repro.sim.engine.SimulationEngine` built while it is on attaches
a listener bound to the shared registry.
"""

from repro.obs.audit import (
    AUDIT_RULES,
    AUDIT_SCHEMA,
    AuditRecord,
    DecisionAuditLog,
)
from repro.obs.listener import MetricsListener
from repro.obs.manifest import (
    MANIFEST_REQUIRED_KEYS,
    MANIFEST_SCHEMA,
    RunManifest,
    package_version,
    to_jsonable,
)
from repro.obs.provenance import (
    PROVENANCE_FIELDS,
    PROVENANCE_SCHEMA,
    ProvenanceLog,
    ProvenanceRecord,
    explain,
    render_explanation,
)
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.runtime import (
    disable_metrics,
    enable_metrics,
    metrics_enabled,
    reset_metrics,
    shared_registry,
)
from repro.obs.trace import (
    SpanTracer,
    TraceEvent,
    TraceListener,
    active_tracer,
    disable_tracing,
    enable_tracing,
    reset_tracer,
    shared_tracer,
    tracing_enabled,
)

__all__ = [
    "AUDIT_RULES",
    "AUDIT_SCHEMA",
    "AuditRecord",
    "Counter",
    "DecisionAuditLog",
    "Gauge",
    "Histogram",
    "MANIFEST_REQUIRED_KEYS",
    "MANIFEST_SCHEMA",
    "MetricsListener",
    "MetricsRegistry",
    "PROVENANCE_FIELDS",
    "PROVENANCE_SCHEMA",
    "ProvenanceLog",
    "ProvenanceRecord",
    "RunManifest",
    "SpanTracer",
    "TraceEvent",
    "TraceListener",
    "active_tracer",
    "disable_metrics",
    "disable_tracing",
    "enable_metrics",
    "enable_tracing",
    "explain",
    "metrics_enabled",
    "package_version",
    "render_explanation",
    "reset_metrics",
    "reset_tracer",
    "shared_registry",
    "shared_tracer",
    "to_jsonable",
    "tracing_enabled",
]
