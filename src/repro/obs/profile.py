"""Hot-loop wall-clock profiling.

This is the ONLY module in the package allowed to read the host clock:
``repro.checks.lint`` bans wall-clock reads everywhere else (rule
RPR003) precisely so that simulation logic can never depend on real
time, and this module is the single allowlisted exception (see
``WALL_CLOCK_ALLOWLIST`` in :mod:`repro.checks.lint`, and the test that
proves the allowlist exact).  Keep every ``time.perf_counter`` call in
the repository inside this file.

Two tools:

* :class:`Stopwatch` — a trivial elapsed-seconds timer the CLI uses to
  stamp manifests with a run's wall-clock duration.
* :class:`EngineProfiler` — wraps one engine's two hot phases
  (``_process_batch`` and ``_reconcile``) with timing shims and reports
  slots/sec, events/sec and seconds per phase.  Instrumentation is
  per-instance attribute shadowing, so an uninstrumented engine is
  untouched and pays nothing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - import-time only
    from repro.sim.engine import SimulationEngine


class Stopwatch:
    """Elapsed wall-clock seconds since construction."""

    def __init__(self) -> None:
        self._start = time.perf_counter()
        self._stopped: Optional[float] = None

    def stop(self) -> float:
        """Freeze and return the elapsed time (idempotent)."""
        if self._stopped is None:
            self._stopped = time.perf_counter() - self._start
        return self._stopped

    @property
    def elapsed(self) -> float:
        """Elapsed seconds so far (without freezing)."""
        if self._stopped is not None:
            return self._stopped
        return time.perf_counter() - self._start


@dataclass(frozen=True)
class ProfileReport:
    """Throughput summary of one profiled engine run."""

    wall_seconds: float
    slots: int
    events: int
    phase_seconds: Dict[str, float]

    @property
    def slots_per_second(self) -> float:
        return self.slots / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def events_per_second(self) -> float:
        return self.events / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "wall_seconds": self.wall_seconds,
            "slots": self.slots,
            "events": self.events,
            "slots_per_second": self.slots_per_second,
            "events_per_second": self.events_per_second,
            "phase_seconds": dict(sorted(self.phase_seconds.items())),
        }

    def render(self) -> str:
        lines = [
            "profile:",
            f"  wall time      {self.wall_seconds:.3f} s",
            f"  slots          {self.slots} ({self.slots_per_second:,.0f} slots/s)",
            f"  events         {self.events} ({self.events_per_second:,.0f} events/s)",
        ]
        for phase, seconds in sorted(self.phase_seconds.items()):
            share = seconds / self.wall_seconds if self.wall_seconds > 0 else 0.0
            lines.append(f"  phase {phase:<14s} {seconds:.3f} s ({share:5.1%})")
        return "\n".join(lines)


class EngineProfiler:
    """Times an engine's event-dispatch and reconcile phases.

    Usage::

        profiler = EngineProfiler()
        profiler.instrument(sim.engine)
        sim.run(seconds)
        report = profiler.finish()
    """

    def __init__(self) -> None:
        self.phase_seconds: Dict[str, float] = {"events": 0.0, "reconcile": 0.0}
        self.events = 0
        self._engine: Optional["SimulationEngine"] = None
        self._watch: Optional[Stopwatch] = None

    def instrument(self, engine: "SimulationEngine") -> None:
        if self._engine is not None:
            raise RuntimeError("EngineProfiler already instruments an engine")
        self._engine = engine
        phases = self.phase_seconds

        def wrap(
            phase: str, original: Callable[..., Any]
        ) -> Callable[..., Any]:
            count_events = phase == "events"

            def timed(*args: Any) -> Any:
                if count_events:
                    self.events += len(args[1])
                start = time.perf_counter()
                result = original(*args)
                phases[phase] += time.perf_counter() - start
                return result

            return timed

        # The engine installs the shims itself (instance attributes
        # shadowing the class methods, this engine only): observation
        # code stays read-only over simulation state (rule RPR703).
        engine.instrument_phases(wrap)
        self._watch = Stopwatch()

    def finish(self) -> ProfileReport:
        """Stop timing and summarize (the engine keeps running untimed)."""
        if self._engine is None or self._watch is None:
            raise RuntimeError("EngineProfiler.finish() before instrument()")
        wall = self._watch.stop()
        phases = dict(self.phase_seconds)
        phases["other"] = max(wall - sum(phases.values()), 0.0)
        return ProfileReport(
            wall_seconds=wall,
            slots=self._engine.now,
            events=self.events,
            phase_seconds=phases,
        )
