"""Metric primitives: counters, gauges, fixed-bucket histograms.

Everything here is deliberately boring: plain Python ints and floats,
no background threads, no clock reads, no third-party client library.
The registry exists so that a simulation fed by the seeded RNG streams
produces *byte-identical* snapshots across runs — snapshot dicts are
built in sorted-key order and contain only JSON-representable values.

Instruments are created on first use (``registry.counter(name)``) and
cached, so hot-loop call sites can hold the instrument object and pay a
single attribute increment per event.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple, cast

#: Default histogram bucket upper bounds (inclusive); the last implicit
#: bucket is +inf.  Chosen to resolve slot-scale durations.
DEFAULT_BUCKET_BOUNDS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0,
)


_PROMETHEUS_ILLEGAL = re.compile(r"[^a-zA-Z0-9_:]")


def _prometheus_name(name: str) -> str:
    """A registry instrument name as a legal Prometheus metric name."""
    sanitized = _PROMETHEUS_ILLEGAL.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prometheus_value(value: float) -> str:
    """A float rendered the way Prometheus text format expects."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A point-in-time numeric value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """A fixed-bucket histogram.

    ``bounds`` are inclusive upper edges in strictly increasing order; a
    final overflow bucket catches everything above the last bound, so
    ``counts`` always has ``len(bounds) + 1`` entries.  Buckets are
    fixed at construction — no dynamic rebinning — which keeps
    ``observe`` a single bisect and the snapshot stable across runs.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKET_BOUNDS) -> None:
        edges = tuple(float(b) for b in bounds)
        if not edges:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b >= a for b, a in zip(edges, edges[1:])):
            raise ValueError(f"bucket bounds must strictly increase, got {edges}")
        self.name = name
        self.bounds: Tuple[float, ...] = edges
        self.counts: List[int] = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, object]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count})"


class MetricsRegistry:
    """A named collection of counters, gauges and histograms."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument access -------------------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKET_BOUNDS
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, bounds)
        elif instrument.bounds != tuple(float(b) for b in bounds):
            raise ValueError(
                f"histogram {name!r} already registered with bounds "
                f"{instrument.bounds}"
            )
        return instrument

    # -- one-shot conveniences ---------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- merging -----------------------------------------------------------

    def merge_snapshot(self, snapshot: Dict[str, object]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Used by :mod:`repro.experiments.parallel` to combine per-trial
        worker registries: counters and histogram contents add, gauges
        are last-write-wins (callers merge snapshots in task order, so
        the surviving value matches the serial run's).  Histogram
        bucket bounds must agree — :meth:`histogram` raises otherwise.
        """
        counters = cast(Dict[str, int], snapshot.get("counters", {}))
        for name, value in counters.items():
            self.counter(name).inc(value)
        gauges = cast(Dict[str, float], snapshot.get("gauges", {}))
        for name, value in gauges.items():
            self.gauge(name).set(value)
        histograms = cast(
            Dict[str, Dict[str, Any]], snapshot.get("histograms", {})
        )
        for name, data in histograms.items():
            hist = self.histogram(name, data["bounds"])
            for index, count in enumerate(data["counts"]):
                hist.counts[index] += count
            hist.count += data["count"]
            hist.total += data["total"]
            other_min = data["min"]
            if other_min is not None and (hist.min is None or other_min < hist.min):
                hist.min = other_min
            other_max = data["max"]
            if other_max is not None and (hist.max is None or other_max > hist.max):
                hist.max = other_max

    # -- output ------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """The registry's full state as a deterministic plain dict."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].snapshot()
                for name in sorted(self._histograms)
            },
        }

    def render(self) -> str:
        """A grep-friendly plain-text dump (the ``--metrics`` printout)."""
        lines = ["metrics:"]
        for name in sorted(self._counters):
            lines.append(f"  {name} = {self._counters[name].value}")
        for name in sorted(self._gauges):
            lines.append(f"  {name} = {self._gauges[name].value:g}")
        for name in sorted(self._histograms):
            h = self._histograms[name]
            lines.append(
                f"  {name}: count={h.count} mean={h.mean:.2f} "
                f"min={h.min if h.min is not None else '-'} "
                f"max={h.max if h.max is not None else '-'}"
            )
        if len(lines) == 1:
            lines.append("  (empty)")
        return "\n".join(lines)

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format (v0.0.4).

        Counters become ``<name>_total``, gauges keep their name, and
        histograms expand to cumulative ``_bucket{le=...}`` series plus
        ``_sum``/``_count``.  Dots and other illegal characters in
        instrument names map to underscores; output order is sorted, so
        the exposition is byte-stable for a fixed registry state.  The
        CLI's ``--metrics-out`` writes exactly this string, ready for a
        scrape target or ``promtool check metrics``.
        """
        lines: List[str] = []
        for name in sorted(self._counters):
            metric = _prometheus_name(name) + "_total"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {self._counters[name].value}")
        for name in sorted(self._gauges):
            metric = _prometheus_name(name)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_prometheus_value(self._gauges[name].value)}")
        for name in sorted(self._histograms):
            hist = self._histograms[name]
            metric = _prometheus_name(name)
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for bound, count in zip(hist.bounds, hist.counts):
                cumulative += count
                lines.append(
                    f'{metric}_bucket{{le="{_prometheus_value(bound)}"}} '
                    f"{cumulative}"
                )
            lines.append(f'{metric}_bucket{{le="+Inf"}} {hist.count}')
            lines.append(f"{metric}_sum {_prometheus_value(hist.total)}")
            lines.append(f"{metric}_count {hist.count}")
        return "\n".join(lines) + "\n" if lines else ""

    def reset(self) -> None:
        """Drop every instrument (test isolation)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)
