"""The detector decision audit log.

Every verdict of :class:`repro.core.detector.BackoffMisbehaviorDetector`
is a statistical claim; this module makes each one auditable by
recording *which rule fired* as a structured record:

``seq_offset``
    the announced SeqOff# did not advance by a positive amount within
    the missed-frame allowance (deterministic);
``attempt_number``
    a reused Attempt#/digest pair, or a fresh digest not starting at
    attempt 1 (deterministic);
``blatant_countdown``
    the observed countdown budget was shorter than the dictated
    back-off over an interval with no estimation ambiguity
    (deterministic);
``rank_sum``
    a Wilcoxon rank-sum window evaluation, with its statistic, p-value
    and the alpha threshold it was judged against (statistical — the
    diagnosis may be ``well_behaved``);
``quarantine``
    an observation whose announced ``SeqOff#``/``Attempt#``/``MD``
    fields were missing or corrupt was excluded from the verifiers and
    the rank-sum window; ``detail`` carries the impairment reason code
    (see :mod:`repro.faults`) and the diagnosis is always
    ``insufficient_data``.  Emitted only when quarantine auditing is
    active (automatic whenever fault injection is, off otherwise so
    clean-run audit streams stay byte-identical to earlier versions).

Records are plain dataclasses serialized to JSON-lines with sorted
keys, so audit files are diffable and byte-stable for a fixed seed.
This module deliberately imports nothing from :mod:`repro.core` — the
detector depends on it, not the other way around.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

AUDIT_SCHEMA = "repro.obs/audit/v1"

#: Every rule identifier an AuditRecord may carry.
AUDIT_RULES: Tuple[str, ...] = (
    "seq_offset",
    "attempt_number",
    "blatant_countdown",
    "rank_sum",
    "quarantine",
)

#: The exact key set of a serialized record (the JSONL schema).
AUDIT_FIELDS: Tuple[str, ...] = (
    "slot",
    "monitor",
    "tagged",
    "rule",
    "diagnosis",
    "deterministic",
    "detail",
    "p_value",
    "statistic",
    "threshold",
    "sample_size",
)


@dataclass(frozen=True)
class AuditRecord:
    """One detector decision, with the evidence that produced it."""

    slot: int
    monitor: int
    tagged: int
    rule: str                          # one of AUDIT_RULES
    diagnosis: str                     # Diagnosis.value
    deterministic: bool
    detail: str = ""
    p_value: Optional[float] = None    # rank_sum only
    statistic: Optional[float] = None  # rank_sum only
    threshold: Optional[float] = None  # the alpha the p-value was judged at
    sample_size: int = 0

    def __post_init__(self) -> None:
        if self.rule not in AUDIT_RULES:
            raise ValueError(
                f"unknown audit rule {self.rule!r}; expected one of {AUDIT_RULES}"
            )

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "AuditRecord":
        unknown = sorted(set(data) - set(AUDIT_FIELDS))
        if unknown:
            raise ValueError(f"unknown audit record keys: {unknown}")
        return cls(**data)  # type: ignore[arg-type]


#: Placeholder occupying a reserved slot until :meth:`DecisionAuditLog.fill`
#: replaces it.  Identity-compared, never serialized: a batched-backend
#: flush always fills every reservation within the same dispatch.
_DEFERRED = AuditRecord(
    slot=-1,
    monitor=-1,
    tagged=-1,
    rule="rank_sum",
    diagnosis="deferred",
    deterministic=False,
)


class DecisionAuditLog:
    """An append-only list of :class:`AuditRecord`, JSONL in and out.

    The batched statistical backend evaluates rank-sum windows at the
    end of a dispatch rather than at ingest; :meth:`reserve` /
    :meth:`fill` let it keep each deferred record at the exact index an
    eager evaluation would have written, so audit streams stay
    byte-identical across backends.
    """

    def __init__(self, records: Optional[Iterable[AuditRecord]] = None) -> None:
        self.records: List[AuditRecord] = list(records or [])

    def record(self, entry: AuditRecord) -> None:
        self.records.append(entry)

    def reserve(self) -> int:
        """Claim the next index for a record to be filled in later."""
        self.records.append(_DEFERRED)
        return len(self.records) - 1

    def fill(self, index: int, entry: AuditRecord) -> None:
        """Replace the reserved placeholder at ``index`` with ``entry``."""
        if self.records[index] is not _DEFERRED:
            raise ValueError(f"audit index {index} was not reserved")
        self.records[index] = entry

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> "Iterable[AuditRecord]":
        return iter(self.records)

    # -- summaries ----------------------------------------------------------

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for entry in self.records:
            counts[entry.rule] = counts.get(entry.rule, 0) + 1
        return dict(sorted(counts.items()))

    @property
    def deterministic_count(self) -> int:
        return sum(1 for r in self.records if r.deterministic)

    @property
    def statistical_count(self) -> int:
        return sum(1 for r in self.records if not r.deterministic)

    # -- JSONL --------------------------------------------------------------

    def to_jsonl(self) -> str:
        """One compact, sorted-key JSON object per line."""
        return "\n".join(
            json.dumps(r.to_dict(), sort_keys=True, separators=(",", ":"))
            for r in self.records
        )

    def write_jsonl(self, path: Union[str, Path]) -> Path:
        target = Path(path)
        text = self.to_jsonl()
        target.write_text(text + "\n" if text else "", encoding="ascii")
        return target

    @classmethod
    def from_jsonl(cls, text: str) -> "DecisionAuditLog":
        records = [
            AuditRecord.from_dict(json.loads(line))
            for line in text.splitlines()
            if line.strip()
        ]
        return cls(records)

    @classmethod
    def read_jsonl(cls, path: Union[str, Path]) -> "DecisionAuditLog":
        return cls.from_jsonl(Path(path).read_text(encoding="ascii"))
