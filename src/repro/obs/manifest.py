"""Structured run manifests: what ran, under what knobs, what came out.

A :class:`RunManifest` is the machine-readable sibling of the plain-text
tables the experiments print: seed, full argument/config record, the
``REPRO_SCALE`` fidelity multiplier, the package version, the wall-clock
duration (measured by the caller — this module never reads the clock;
see :mod:`repro.obs.profile`), the final metric snapshot, the detector
audit entries, and the experiment's result rows.

Manifests round-trip: ``RunManifest.load(m.write(path)) == m``.  All
values pass through :func:`to_jsonable` at construction, so equality
after a JSON round trip is exact (NaN/inf are mapped to None — JSON has
no spelling for them that every parser accepts).
"""

from __future__ import annotations

import dataclasses
import enum
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

MANIFEST_SCHEMA = "repro.obs/manifest/v1"

#: Keys every manifest must carry (CI validates these).
MANIFEST_REQUIRED_KEYS = (
    "schema",
    "name",
    "seed",
    "config",
    "repro_scale",
    "version",
    "duration_s",
    "metrics",
)


def package_version() -> str:
    """The installed repro version (lazy import: no cycle at load time)."""
    from repro import __version__

    return __version__


def to_jsonable(value: object) -> object:
    """Recursively convert ``value`` into plain JSON-representable data.

    Handles dataclasses, enums, tuples/sets, Path, and numpy scalars
    (via their ``item()`` method); non-finite floats become None and
    mapping keys become strings, deterministically.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, enum.Enum):
        return to_jsonable(value.value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: to_jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(to_jsonable(v) for v in value)
    if isinstance(value, Path):
        return str(value)
    item = getattr(value, "item", None)
    if callable(item):  # numpy scalar
        return to_jsonable(item())
    return repr(value)


@dataclass
class RunManifest:
    """One run's machine-readable record."""

    name: str
    seed: Optional[int] = None
    config: Dict[str, object] = field(default_factory=dict)
    repro_scale: float = 1.0
    version: str = ""
    duration_s: Optional[float] = None
    metrics: Optional[Dict[str, object]] = None
    audit: Optional[List[Dict[str, object]]] = None
    profile: Optional[Dict[str, object]] = None
    results: Optional[object] = None
    schema: str = MANIFEST_SCHEMA
    #: Unknown top-level keys tolerated on load (forward compatibility):
    #: a manifest written by a newer repro with extra fields still loads
    #: here, and the extras survive a round trip unchanged.
    extras: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.version:
            self.version = package_version()
        self.config = dict(to_jsonable(self.config))  # type: ignore[arg-type]
        self.metrics = (
            None if self.metrics is None else to_jsonable(self.metrics)  # type: ignore[assignment]
        )
        self.audit = None if self.audit is None else to_jsonable(self.audit)  # type: ignore[assignment]
        self.profile = (
            None if self.profile is None else to_jsonable(self.profile)  # type: ignore[assignment]
        )
        self.results = to_jsonable(self.results)
        self.extras = dict(to_jsonable(self.extras))  # type: ignore[arg-type]

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "schema": self.schema,
            "name": self.name,
            "seed": self.seed,
            "config": self.config,
            "repro_scale": self.repro_scale,
            "version": self.version,
            "duration_s": self.duration_s,
            "metrics": self.metrics,
            "audit": self.audit,
            "profile": self.profile,
            "results": self.results,
        }
        for key, value in self.extras.items():
            data.setdefault(key, value)
        return data

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    def write(self, path: Union[str, Path]) -> Path:
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_json() + "\n", encoding="ascii")
        return target

    # -- deserialization ----------------------------------------------------

    #: Top-level keys :meth:`from_dict` interprets; anything else lands
    #: in :attr:`extras` untouched.
    _KNOWN_KEYS = frozenset(MANIFEST_REQUIRED_KEYS) | {
        "audit",
        "profile",
        "results",
    }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunManifest":
        missing = [k for k in MANIFEST_REQUIRED_KEYS if k not in data]
        if missing:
            raise ValueError(f"manifest missing required keys: {missing}")
        schema = data["schema"]
        if schema != MANIFEST_SCHEMA:
            raise ValueError(
                f"manifest key 'schema': unsupported manifest schema "
                f"{schema!r} (expected {MANIFEST_SCHEMA!r})"
            )
        extras = {
            key: data[key] for key in sorted(set(data) - cls._KNOWN_KEYS)
        }
        return cls(
            name=data["name"],  # type: ignore[arg-type]
            seed=data["seed"],  # type: ignore[arg-type]
            config=data["config"],  # type: ignore[arg-type]
            repro_scale=data["repro_scale"],  # type: ignore[arg-type]
            version=data["version"],  # type: ignore[arg-type]
            duration_s=data["duration_s"],  # type: ignore[arg-type]
            metrics=data.get("metrics"),  # type: ignore[arg-type]
            audit=data.get("audit"),  # type: ignore[arg-type]
            profile=data.get("profile"),  # type: ignore[arg-type]
            results=data.get("results"),
            extras=extras,
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunManifest":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="ascii")))
