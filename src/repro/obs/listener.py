"""MetricsListener: feed a :class:`MetricsRegistry` from engine hooks.

Attach one listener per engine.  It rides the low-level
``on_event``/``on_slot_end`` hooks (which the engine only dispatches to
listeners that override them — runs without a MetricsListener pay
nothing) plus the transmission callbacks, and harvests the per-node
back-off statistics kept by :class:`repro.mac.backoff.BackoffScheduler`.

Collected series:

* ``engine.slots`` / ``engine.events`` / ``engine.events.<kind>`` —
  slot batches processed and per-phase event counts;
* ``tx.starts`` / ``tx.successes`` / ``tx.rts_collisions`` — RTS
  outcomes, plus the ``tx.duration_slots`` and ``tx.attempt``
  histograms;
* ``backoff.draws`` / ``backoff.freezes`` / ``backoff.slots_frozen`` —
  folded in by :meth:`MetricsListener.harvest` (the engine calls it at
  the end of every ``run_until``; harvesting is delta-based, so calling
  it repeatedly never double-counts);
* ``mobility.epochs`` and the ``engine.final_slot`` / ``engine.nodes``
  gauges.

Everything counted is a pure function of the simulation's seeded event
stream: same seed, byte-identical snapshot.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

from repro.obs.registry import MetricsRegistry
from repro.sim.listeners import SimulationListener

if TYPE_CHECKING:  # pragma: no cover - import-time only
    from repro.phy.medium import Medium, Transmission
    from repro.sim.engine import SimulationEngine

Position = Tuple[float, float]

#: EventKind value -> metric suffix (see repro.sim.engine.EventKind).
_EVENT_NAMES: Dict[int, str] = {
    0: "transmission_phase",
    1: "mobility_epoch",
    2: "arrival",
    3: "countdown_complete",
}

#: Attempt numbers are small (retry limit 7); one bucket each.
ATTEMPT_BOUNDS: Tuple[float, ...] = (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0)

#: Transmission durations in slots (handshake ~ tens, exchange ~ hundreds).
DURATION_BOUNDS: Tuple[float, ...] = (
    10.0, 20.0, 50.0, 100.0, 200.0, 400.0, 800.0,
)


class MetricsListener(SimulationListener):
    """Counts engine activity into a (possibly shared) registry."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        reg = self.registry
        self._slots = reg.counter("engine.slots")
        self._events = reg.counter("engine.events")
        self._event_kinds = {
            kind: reg.counter(f"engine.events.{name}")
            for kind, name in _EVENT_NAMES.items()
        }
        self._tx_starts = reg.counter("tx.starts")
        self._tx_successes = reg.counter("tx.successes")
        self._tx_collisions = reg.counter("tx.rts_collisions")
        self._epochs = reg.counter("mobility.epochs")
        self._attempts = reg.histogram("tx.attempt", ATTEMPT_BOUNDS)
        self._durations = reg.histogram("tx.duration_slots", DURATION_BOUNDS)
        #: node id -> (draws, freezes, slots_frozen) already folded in
        self._harvested: Dict[int, Tuple[int, int, int]] = {}

    # -- low-level hooks -----------------------------------------------------

    def on_event(
        self, slot: int, kind: int, data: Any, engine: "SimulationEngine"
    ) -> None:
        self._events.inc()
        counter = self._event_kinds.get(kind)
        if counter is None:
            counter = self._event_kinds[kind] = self.registry.counter(
                f"engine.events.kind_{kind}"
            )
        counter.inc()

    def on_slot_end(self, slot: int, engine: "SimulationEngine") -> None:
        self._slots.inc()

    # -- transmission callbacks ----------------------------------------------

    def on_transmission_start(
        self, slot: int, transmission: "Transmission", medium: "Medium"
    ) -> None:
        self._tx_starts.inc()
        frame = transmission.frame
        if frame is not None:
            self._attempts.observe(frame.attempt)

    def on_transmission_end(
        self,
        slot: int,
        transmission: "Transmission",
        success: bool,
        medium: "Medium",
    ) -> None:
        if success:
            self._tx_successes.inc()
        else:
            self._tx_collisions.inc()
        self._durations.observe(transmission.duration)

    def on_positions_updated(
        self, slot: int, positions: Dict[int, Position], medium: "Medium"
    ) -> None:
        self._epochs.inc()

    # -- back-off statistics ---------------------------------------------------

    def harvest(self, engine: "SimulationEngine") -> None:
        """Fold the per-node back-off stats into the registry.

        Delta-based and therefore idempotent: only the growth since the
        previous harvest is added.  One listener must serve one engine
        (the deltas are keyed by node id).
        """
        reg = self.registry
        for node_id, mac in engine.macs.items():
            backoff = mac.backoff
            now = (backoff.draws, backoff.freezes, backoff.slots_frozen)
            prev = self._harvested.get(node_id, (0, 0, 0))
            if now != prev:
                reg.inc("backoff.draws", now[0] - prev[0])
                reg.inc("backoff.freezes", now[1] - prev[1])
                reg.inc("backoff.slots_frozen", now[2] - prev[2])
                self._harvested[node_id] = now
        reg.set_gauge("engine.final_slot", engine.now)
        reg.set_gauge("engine.nodes", len(engine.macs))
