"""Process-wide switch for metrics collection.

Mirrors :mod:`repro.checks.runtime`: the simulation engine consults this
module at construction time and, when enabled, attaches a
:class:`repro.obs.listener.MetricsListener` bound to the shared registry
— so one ``--metrics`` flag (or ``REPRO_METRICS=1``) instruments every
engine a command builds, including the many short-lived engines inside
an experiment sweep, and their counts accumulate in one place.

Kept import-light (only the registry) so the engine can depend on it
without cycles.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.obs.registry import MetricsRegistry

_TRUTHY = frozenset({"1", "true", "yes", "on"})

_enabled = False
_registry: Optional[MetricsRegistry] = None


def enable_metrics() -> None:
    """Attach a metrics listener to every engine built from now on."""
    global _enabled
    _enabled = True


def disable_metrics() -> None:
    """Stop auto-attaching metrics listeners (env var still wins)."""
    global _enabled
    _enabled = False


def metrics_enabled() -> bool:
    """True if new engines should feed the shared registry."""
    if _enabled:
        return True
    return os.environ.get("REPRO_METRICS", "").strip().lower() in _TRUTHY


def shared_registry() -> MetricsRegistry:
    """The process-wide registry (created on first use)."""
    global _registry
    if _registry is None:
        _registry = MetricsRegistry()
    return _registry


def reset_metrics() -> MetricsRegistry:
    """Replace the shared registry with a fresh one and return it.

    Call before a run whose snapshot must not contain earlier counts
    (the CLI does this for every ``--metrics`` invocation).
    """
    global _registry
    _registry = MetricsRegistry()
    return _registry
