"""Deterministic, slot-clocked span tracing (the "flight recorder").

A :class:`SpanTracer` records spans and instant events on a timeline
measured in *simulated* time — ``slot x slot_time_us`` microseconds —
never the host clock (:mod:`repro.obs.profile` stays the only module
allowed to read that).  Two runs with the same seed therefore produce
byte-identical traces, and a trace can be diffed like any other
artifact.

Events live in a bounded ring (``capacity`` newest events are kept, the
oldest are dropped and counted), so tracing a multi-hour run costs a
fixed amount of memory: the recorder always holds the most recent
window of activity, which is exactly what you want when something goes
wrong at slot forty million.

Instrumented layers (each emits only when tracing is enabled):

* the engine slot loop — per-slot event counters and transmission spans
  via :class:`TraceListener`, attached automatically by
  :class:`repro.sim.engine.SimulationEngine` when tracing is on;
* the medium reachability reconcile
  (:meth:`repro.phy.medium.Medium.update_positions`);
* the shared-observatory ingest/demux
  (:class:`repro.core.observatory.SharedChannelObservatory`);
* rank-sum evaluation and verdict publication in
  :class:`repro.core.detector.BackoffMisbehaviorDetector`.

The export format is Chrome trace-event JSON (``--trace out.json`` on
the CLI): load the file in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing`` and every node becomes a track of its handshake /
exchange busy periods, with detector verdicts and rank-sum windows on
per-monitor tracks below.  Events are exported sorted by timestamp, so
the file is monotone in simulated time.

The process-wide switch mirrors :mod:`repro.obs.runtime`: the CLI
``--trace OUT`` flag (or ``REPRO_TRACE=1``) flips it, and every engine
built while it is on attaches a :class:`TraceListener` bound to the
shared tracer.
"""

from __future__ import annotations

import json
import os
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Deque, Dict, List, Optional, Set, Tuple, Union

from repro.sim.listeners import SimulationListener
from repro.util.caches import register_cache_reset
from repro.util.units import DEFAULT_SLOT_TIME_US, Microseconds, Slots

if TYPE_CHECKING:  # pragma: no cover - import-time only
    from repro.phy.medium import Medium, Transmission
    from repro.sim.engine import SimulationEngine

#: Default ring capacity (events kept; older ones are dropped, counted).
DEFAULT_CAPACITY = 65_536

#: Chrome trace ``pid`` values — one per instrumented plane, so Perfetto
#: groups the tracks: per-node transmissions, the engine slot loop, and
#: the detection layer.
PID_SIM = 0
PID_ENGINE = 1
PID_DETECTION = 2

_PROCESS_NAMES: Dict[int, str] = {
    PID_SIM: "medium (per-node transmissions)",
    PID_ENGINE: "engine (slot loop)",
    PID_DETECTION: "detection (per-monitor verdicts)",
}


@dataclass(frozen=True)
class TraceEvent:
    """One recorded trace event (slot-clocked, wall-clock-free)."""

    name: str
    phase: str                  # "X" span | "i" instant | "C" counter
    ts_us: Microseconds         # slot * slot_time_us
    dur_us: Microseconds        # spans only; 0 otherwise
    pid: int
    tid: int
    category: str
    args: Optional[Dict[str, object]] = None

    def to_chrome(self) -> Dict[str, object]:
        """The Chrome trace-event JSON object for this event."""
        event: Dict[str, object] = {
            "name": self.name,
            "ph": self.phase,
            "ts": self.ts_us,
            "pid": self.pid,
            "tid": self.tid,
            "cat": self.category,
        }
        if self.phase == "X":
            event["dur"] = self.dur_us
        if self.phase == "i":
            event["s"] = "t"  # thread-scoped instant
        if self.args is not None:
            event["args"] = self.args
        return event


class SpanTracer:
    """A bounded, deterministic recorder of slot-clocked trace events.

    All timestamps derive from integer slots; the tracer never reads
    the host clock, so same-seed runs emit byte-identical traces.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        slot_time_us: Microseconds = DEFAULT_SLOT_TIME_US,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"tracer capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.slot_time_us = float(slot_time_us)
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        #: total events ever emitted (``emitted - len(self)`` dropped)
        self.emitted = 0
        #: the engine's current slot, advanced by :class:`TraceListener`;
        #: instruments without a slot of their own (the medium reconcile)
        #: stamp their events with it.
        self.cursor: Slots = 0

    def __len__(self) -> int:
        return len(self._events)

    @property
    def dropped(self) -> int:
        """Events evicted from the ring (oldest-first flight recording)."""
        return max(self.emitted - len(self._events), 0)

    def mark_slot(self, slot: Slots) -> None:
        """Advance the tracer's slot cursor (monotone)."""
        if slot > self.cursor:
            self.cursor = slot

    # -- emission ----------------------------------------------------------

    def _emit(self, event: TraceEvent) -> None:
        self._events.append(event)
        self.emitted += 1

    def span(
        self,
        name: str,
        start_slot: Slots,
        end_slot: Slots,
        tid: int = 0,
        pid: int = PID_SIM,
        category: str = "sim",
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        """Record a complete span covering ``[start_slot, end_slot]``."""
        stu = self.slot_time_us
        self._emit(
            TraceEvent(
                name=name,
                phase="X",
                ts_us=start_slot * stu,
                dur_us=max(end_slot - start_slot, 0) * stu,
                pid=pid,
                tid=tid,
                category=category,
                args=args,
            )
        )

    def instant(
        self,
        name: str,
        slot: Optional[Slots] = None,
        tid: int = 0,
        pid: int = PID_SIM,
        category: str = "sim",
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        """Record an instant event (``slot=None`` uses the cursor)."""
        at = self.cursor if slot is None else slot
        self._emit(
            TraceEvent(
                name=name,
                phase="i",
                ts_us=at * self.slot_time_us,
                dur_us=0.0,
                pid=pid,
                tid=tid,
                category=category,
                args=args,
            )
        )

    def counter(
        self,
        name: str,
        slot: Slots,
        values: Dict[str, float],
        tid: int = 0,
        pid: int = PID_ENGINE,
        category: str = "engine",
    ) -> None:
        """Record a counter sample (rendered as a filled series)."""
        self._emit(
            TraceEvent(
                name=name,
                phase="C",
                ts_us=slot * self.slot_time_us,
                dur_us=0.0,
                pid=pid,
                tid=tid,
                category=category,
                args=dict(values),
            )
        )

    # -- export ------------------------------------------------------------

    def events(self) -> List[TraceEvent]:
        """The retained events, in emission order (a copy)."""
        return list(self._events)

    def to_chrome_trace(self) -> Dict[str, object]:
        """The full Chrome trace-event JSON document.

        ``traceEvents`` is sorted by timestamp (stable on emission
        order), so exported slot timestamps are monotone; process and
        thread name metadata records come first.
        """
        ordered = sorted(self._events, key=lambda e: e.ts_us)
        seen: Set[Tuple[int, int]] = {(e.pid, e.tid) for e in ordered}
        metadata: List[Dict[str, object]] = []
        for pid in sorted({p for p, _t in seen}):
            metadata.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": _PROCESS_NAMES.get(pid, f"pid {pid}")},
                }
            )
        for pid, tid in sorted(seen):
            label = "monitor" if pid == PID_DETECTION else "node"
            metadata.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": f"{label} {tid}"},
                }
            )
        return {
            "traceEvents": metadata + [e.to_chrome() for e in ordered],
            "displayTimeUnit": "ms",
            "otherData": {
                "clock": "slots",
                "slot_time_us": self.slot_time_us,
                "events_emitted": self.emitted,
                "events_dropped": self.dropped,
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.to_chrome_trace(), sort_keys=True)

    def write(self, path: Union[str, Path]) -> Path:
        """Write the Chrome trace JSON to ``path`` (Perfetto-loadable)."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_json() + "\n", encoding="ascii")
        return target


class TraceListener(SimulationListener):
    """Engine-side instrumentation: slot loop and transmission spans.

    Attached automatically by the engine when tracing is enabled.  Pure
    observer: it only appends to the tracer's ring, so the simulated
    run (verdicts, metrics, audit) is byte-identical with or without it
    — the golden-fingerprint suite pins that.
    """

    def __init__(self, tracer: SpanTracer) -> None:
        self.tracer = tracer
        self._batch_events = 0

    def on_event(
        self, slot: Slots, kind: int, data: Any, engine: "SimulationEngine"
    ) -> None:
        self.tracer.mark_slot(slot)
        self._batch_events += 1

    def on_slot_end(self, slot: Slots, engine: "SimulationEngine") -> None:
        if self._batch_events:
            self.tracer.counter(
                "engine.events", slot, {"events": float(self._batch_events)}
            )
            self._batch_events = 0

    def on_transmission_end(
        self,
        slot: Slots,
        transmission: "Transmission",
        success: bool,
        medium: "Medium",
    ) -> None:
        frame = transmission.frame
        args: Dict[str, object] = {
            "receiver": transmission.receiver,
            "success": success,
            "corrupted": transmission.corrupted,
            "duration_slots": transmission.duration,
        }
        if frame is not None:
            seq_off = getattr(frame, "seq_off", None)
            attempt = getattr(frame, "attempt", None)
            if seq_off is not None:
                args["seq_off"] = seq_off
            if attempt is not None:
                args["attempt"] = attempt
        self.tracer.span(
            f"tx.{transmission.kind}",
            transmission.start_slot,
            transmission.end_slot,
            tid=transmission.sender,
            pid=PID_SIM,
            category="tx",
            args=args,
        )

    def on_positions_updated(
        self,
        slot: Slots,
        positions: Dict[int, Tuple[float, float]],
        medium: "Medium",
    ) -> None:
        self.tracer.instant(
            "mobility.epoch",
            slot=slot,
            pid=PID_ENGINE,
            category="engine",
            args={"nodes": len(positions)},
        )


# -- process-wide switch (mirrors repro.obs.runtime) -----------------------

_TRUTHY = frozenset({"1", "true", "yes", "on"})

_enabled = False
_tracer: Optional[SpanTracer] = None


def enable_tracing() -> None:
    """Attach a trace listener to every engine built from now on."""
    global _enabled
    _enabled = True


def disable_tracing() -> None:
    """Stop auto-attaching trace listeners (env var still wins)."""
    global _enabled
    _enabled = False


def tracing_enabled() -> bool:
    """True if new engines should feed the shared tracer."""
    if _enabled:
        return True
    return os.environ.get("REPRO_TRACE", "").strip().lower() in _TRUTHY


def shared_tracer() -> SpanTracer:
    """The process-wide tracer (created on first use)."""
    global _tracer
    if _tracer is None:
        _tracer = SpanTracer()
    return _tracer


def active_tracer() -> Optional[SpanTracer]:
    """The shared tracer when tracing is on, else None.

    The one-liner every instrumented layer guards its emission with::

        tracer = active_tracer()
        if tracer is not None:
            tracer.instant(...)
    """
    return shared_tracer() if tracing_enabled() else None


def reset_tracer(capacity: int = DEFAULT_CAPACITY) -> SpanTracer:
    """Replace the shared tracer with a fresh one and return it."""
    global _tracer
    _tracer = SpanTracer(capacity=capacity)
    return _tracer


@register_cache_reset
def reset_tracing() -> None:
    """Forget the shared tracer and switch tracing off (test isolation)."""
    global _enabled, _tracer
    _enabled = False
    _tracer = None
