"""Benchmark manifest emission.

Every benchmark writes its measured points to ``BENCH_<name>.json`` (in
``REPRO_BENCH_DIR``, default the current directory) via the shared
:class:`repro.obs.manifest.RunManifest` writer, so the perf/accuracy
trajectory of the reproduction accumulates as machine-readable
artifacts instead of only scrollback text.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Optional

from repro.obs.manifest import RunManifest

#: Environment variable selecting where BENCH_*.json files land.
BENCH_DIR_ENV = "REPRO_BENCH_DIR"


def bench_output_dir() -> Path:
    """The directory benchmark manifests are written to."""
    return Path(os.environ.get(BENCH_DIR_ENV) or ".")


def write_bench_manifest(
    name: str,
    results: object,
    seed: Optional[int] = None,
    config: Optional[Dict[str, object]] = None,
    duration_s: Optional[float] = None,
) -> Path:
    """Write ``BENCH_<name>.json`` and return its path.

    ``results`` may be dataclasses/lists/dicts — anything
    :func:`repro.obs.manifest.to_jsonable` handles.
    """
    from repro.util.fidelity import fidelity_scale

    manifest = RunManifest(
        name=f"bench_{name}",
        seed=seed,
        config=dict(config or {}),
        repro_scale=fidelity_scale(),
        duration_s=duration_s,
        results=results,
    )
    return manifest.write(bench_output_dir() / f"BENCH_{name}.json")
