"""Verdict provenance: the evidence chain behind every detector decision.

An accusation is a statistical claim; the audit log
(:mod:`repro.obs.audit`) records *that* a rule fired, this module
records *why*: which observations entered the rank-sum window, the
window's slot bounds, the exact (dictated, estimated) inputs the
statistic ranked, the ARMA traffic-intensity state at evaluation time,
and the quarantine drops accumulated along the way.  Every verdict the
:class:`repro.core.detector.BackoffMisbehaviorDetector` publishes —
accusations, exonerations, and deterministic-verifier catches alike —
appends one :class:`ProvenanceRecord` to an attached
:class:`ProvenanceLog`.

Records link to the audit log through their shared coordinates
``(slot, monitor, tagged, rule)`` — provenance never changes the audit
schema, so clean-run audit streams stay byte-identical whether or not
provenance is attached.

:func:`explain` reconstructs the causal chain of one verdict id as a
structured dict (observations -> window -> rank-sum -> verdict), and
:func:`render_explanation` turns it into a human-readable narrative.
Export is JSONL (``demo --provenance OUT`` on the CLI), one sorted-key
object per line, byte-stable for a fixed seed.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

PROVENANCE_SCHEMA = "repro.obs/provenance/v1"

#: The exact key set of a serialized record (the JSONL schema).
PROVENANCE_FIELDS = (
    "verdict_id",
    "slot",
    "monitor",
    "tagged",
    "rule",
    "diagnosis",
    "deterministic",
    "detail",
    "observation_ids",
    "observation_slots",
    "window_start",
    "window_end",
    "dictated",
    "estimated",
    "statistic",
    "p_value",
    "threshold",
    "sample_size",
    "rho",
    "arma_alpha",
    "quarantine_drops",
    "skipped_samples",
)


@dataclass(frozen=True)
class ProvenanceRecord:
    """One verdict's full evidence chain.

    ``observation_ids`` index into the detector's accepted-observation
    list (``detector.observations``); ``observation_slots`` are the RTS
    start slots of the same samples, i.e. the window's timeline.
    Deterministic verdicts carry empty window lists (the violation's
    ``detail`` names the trigger); ``dictated``/``estimated`` hold the
    rank-sum inputs exactly as ranked (CW-normalized, guard band
    applied).
    """

    verdict_id: str
    slot: int
    monitor: int
    tagged: int
    rule: str
    diagnosis: str
    deterministic: bool
    detail: str = ""
    observation_ids: List[int] = field(default_factory=list)
    observation_slots: List[int] = field(default_factory=list)
    window_start: Optional[int] = None
    window_end: Optional[int] = None
    dictated: List[float] = field(default_factory=list)
    estimated: List[float] = field(default_factory=list)
    statistic: Optional[float] = None
    p_value: Optional[float] = None
    threshold: Optional[float] = None
    sample_size: int = 0
    rho: float = 0.0
    arma_alpha: float = 0.0
    quarantine_drops: Dict[str, int] = field(default_factory=dict)
    skipped_samples: int = 0

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ProvenanceRecord":
        unknown = sorted(set(data) - set(PROVENANCE_FIELDS))
        if unknown:
            raise ValueError(f"unknown provenance record keys: {unknown}")
        return cls(**data)  # type: ignore[arg-type]


#: Placeholder occupying a reserved slot until :meth:`ProvenanceLog.fill`
#: replaces it.  Identity-compared, never serialized: a batched-backend
#: flush always fills every reservation within the same dispatch.
_DEFERRED = ProvenanceRecord(
    verdict_id="<deferred>",
    slot=-1,
    monitor=-1,
    tagged=-1,
    rule="rank_sum",
    diagnosis="deferred",
    deterministic=False,
)


class ProvenanceLog:
    """An append-only list of :class:`ProvenanceRecord`, JSONL in/out.

    :meth:`reserve` / :meth:`fill` mirror the audit log's deferred-slot
    protocol: the batched backend reserves a record's index when a
    window becomes ready and fills it at the dispatch-end flush, keeping
    record order byte-identical to the eager scalar backend.
    """

    def __init__(
        self, records: Optional[Iterable[ProvenanceRecord]] = None
    ) -> None:
        self.records: List[ProvenanceRecord] = list(records or [])

    def record(self, entry: ProvenanceRecord) -> None:
        self.records.append(entry)

    def reserve(self) -> int:
        """Claim the next index for a record to be filled in later."""
        self.records.append(_DEFERRED)
        return len(self.records) - 1

    def fill(self, index: int, entry: ProvenanceRecord) -> None:
        """Replace the reserved placeholder at ``index`` with ``entry``."""
        if self.records[index] is not _DEFERRED:
            raise ValueError(f"provenance index {index} was not reserved")
        self.records[index] = entry

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> "Iterable[ProvenanceRecord]":
        return iter(self.records)

    def find(self, verdict_id: str) -> ProvenanceRecord:
        """The record with ``verdict_id`` (raises KeyError if absent)."""
        for entry in self.records:
            if entry.verdict_id == verdict_id:
                return entry
        raise KeyError(
            f"no provenance record with verdict_id {verdict_id!r} "
            f"({len(self.records)} records in log)"
        )

    def verdict_ids(self) -> List[str]:
        """Every verdict id in the log, in publication order."""
        return [entry.verdict_id for entry in self.records]

    def accusations(self) -> List[ProvenanceRecord]:
        """The records whose diagnosis is an accusation."""
        return [r for r in self.records if r.diagnosis == "malicious"]

    def explain(self, verdict_id: str) -> Dict[str, object]:
        """See :func:`explain`."""
        return explain(self, verdict_id)

    # -- JSONL --------------------------------------------------------------

    def to_jsonl(self) -> str:
        """One compact, sorted-key JSON object per line."""
        return "\n".join(
            json.dumps(r.to_dict(), sort_keys=True, separators=(",", ":"))
            for r in self.records
        )

    def write_jsonl(self, path: Union[str, Path]) -> Path:
        target = Path(path)
        text = self.to_jsonl()
        target.write_text(text + "\n" if text else "", encoding="ascii")
        return target

    @classmethod
    def from_jsonl(cls, text: str) -> "ProvenanceLog":
        records = [
            ProvenanceRecord.from_dict(json.loads(line))
            for line in text.splitlines()
            if line.strip()
        ]
        return cls(records)

    @classmethod
    def read_jsonl(cls, path: Union[str, Path]) -> "ProvenanceLog":
        return cls.from_jsonl(Path(path).read_text(encoding="ascii"))


def explain(
    provenance: Union[ProvenanceLog, str, Path], verdict_id: str
) -> Dict[str, object]:
    """Reconstruct the causal chain behind one verdict.

    ``provenance`` is a :class:`ProvenanceLog` or a path to a JSONL
    dump of one.  Returns the chain as a structured dict::

        observations -> window -> rank_sum -> verdict

    Raises ``KeyError`` when ``verdict_id`` is not in the log.
    """
    log = (
        provenance
        if isinstance(provenance, ProvenanceLog)
        else ProvenanceLog.read_jsonl(provenance)
    )
    record = log.find(verdict_id)
    observations = [
        {
            "id": obs_id,
            "slot": slot,
            "dictated": x,
            "estimated": y,
        }
        for obs_id, slot, x, y in zip(
            record.observation_ids,
            record.observation_slots,
            record.dictated,
            record.estimated,
        )
    ]
    rank_sum: Optional[Dict[str, object]] = None
    if record.rule == "rank_sum":
        rank_sum = {
            "statistic": record.statistic,
            "p_value": record.p_value,
            "threshold": record.threshold,
            "x": list(record.dictated),
            "y": list(record.estimated),
        }
    return {
        "verdict_id": record.verdict_id,
        "slot": record.slot,
        "monitor": record.monitor,
        "tagged": record.tagged,
        "rule": record.rule,
        "diagnosis": record.diagnosis,
        "deterministic": record.deterministic,
        "detail": record.detail,
        "observations": observations,
        "window": {
            "start": record.window_start,
            "end": record.window_end,
            "size": record.sample_size,
        },
        "rank_sum": rank_sum,
        "arma": {"rho": record.rho, "alpha": record.arma_alpha},
        "quarantine_drops": dict(record.quarantine_drops),
        "skipped_samples": record.skipped_samples,
    }


def render_explanation(chain: Dict[str, object]) -> str:
    """A human-readable narrative of one :func:`explain` chain."""
    window = chain["window"]
    lines = [
        f"verdict {chain['verdict_id']}: {chain['diagnosis']} "
        f"({chain['rule']}, "
        f"{'deterministic' if chain['deterministic'] else 'statistical'}) "
        f"at slot {chain['slot']}",
        f"  monitor {chain['monitor']} observing node {chain['tagged']}",
    ]
    observations = chain["observations"]
    if observations:
        lines.append(
            f"  window: {len(observations)} observations over slots "
            f"[{window['start']}, {window['end']}]"
        )
        first, last = observations[0], observations[-1]
        lines.append(
            f"    first obs #{first['id']} @ slot {first['slot']} "
            f"(dictated {first['dictated']:.4g}, estimated {first['estimated']:.4g})"
        )
        lines.append(
            f"    last  obs #{last['id']} @ slot {last['slot']} "
            f"(dictated {last['dictated']:.4g}, estimated {last['estimated']:.4g})"
        )
    rank_sum = chain["rank_sum"]
    if rank_sum is not None:
        lines.append(
            f"  rank-sum: statistic {rank_sum['statistic']:.6g}, "
            f"p={rank_sum['p_value']:.6g} vs alpha={rank_sum['threshold']}"
        )
    arma = chain["arma"]
    lines.append(f"  ARMA traffic intensity rho={arma['rho']:.4f}")
    drops = chain["quarantine_drops"]
    if drops:
        total = sum(drops.values())
        lines.append(f"  quarantine drops along the way: {total} ({drops})")
    if chain["skipped_samples"]:
        lines.append(f"  skipped samples: {chain['skipped_samples']}")
    if chain["detail"]:
        lines.append(f"  detail: {chain['detail']}")
    return "\n".join(lines)
