"""The benchmark perf-trajectory ledger and its regression gate.

Every benchmark writes a ``BENCH_<name>.json`` manifest
(:mod:`repro.obs.bench`), but a single manifest is a point, not a
trajectory.  This module accumulates the throughput headline of each
manifest as one JSONL line in ``BENCH_HISTORY.jsonl`` — committed to
the repository, so the perf story of the reproduction (PR 3's 1.55x
engine speedup, PR 4's 2.76x detection speedup, ...) is a first-class,
diffable artifact instead of scrollback.

``python -m repro.obs.history`` is the gate:

* ``append MANIFEST [MANIFEST ...] [--history PATH]`` extracts each
  manifest's throughput metrics (``*_per_sec``/``*_per_second`` keys
  and ``speedup``, found recursively in the results) and appends one
  entry per manifest;
* ``check [--history PATH] [--tolerance T]`` compares, per benchmark
  name, the newest entry against the baseline (oldest) entry recorded
  at the *same* ``repro_scale`` — cross-fidelity numbers are not
  comparable — and exits nonzero when any shared throughput metric
  regressed by more than ``tolerance`` (default 15%).

Wall-clock throughput is host-dependent, which is why entries compare
only within one history lineage: the committed baseline was measured
where the history is maintained, and CI re-checks the committed file's
internal consistency on every run (the benchmark-smoke job also appends
its own low-fidelity manifests to a scratch copy and gates on those).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

HISTORY_SCHEMA = "repro.obs/history/v1"

#: The committed trajectory ledger, at the repository root.
DEFAULT_HISTORY_PATH = "BENCH_HISTORY.jsonl"

#: Maximum tolerated fractional throughput drop newest-vs-baseline.
DEFAULT_TOLERANCE = 0.15

#: Result keys treated as throughput (higher is better).
_THROUGHPUT_SUFFIXES = ("_per_sec", "_per_second")
_THROUGHPUT_NAMES = frozenset(
    {"slots_per_second", "events_per_second", "speedup"}
)


def _is_throughput_key(key: str) -> bool:
    return key in _THROUGHPUT_NAMES or key.endswith(_THROUGHPUT_SUFFIXES)


def throughput_metrics(results: object, prefix: str = "") -> Dict[str, float]:
    """Extract throughput metrics from a manifest's results, recursively.

    Nested dict keys are joined with ``.`` (``m4x4.speedup``); only
    finite numeric values are kept.  Deterministic: keys come out
    sorted.
    """
    found: Dict[str, float] = {}
    if isinstance(results, dict):
        for key in sorted(results, key=str):
            value = results[key]
            path = f"{prefix}.{key}" if prefix else str(key)
            if isinstance(value, (dict, list)):
                found.update(throughput_metrics(value, path))
            elif (
                _is_throughput_key(str(key))
                and isinstance(value, (int, float))
                and not isinstance(value, bool)
            ):
                found[path] = float(value)
    elif isinstance(results, list):
        for index, value in enumerate(results):
            if isinstance(value, (dict, list)):
                found.update(throughput_metrics(value, f"{prefix}[{index}]"))
    return dict(sorted(found.items()))


def entry_from_manifest(manifest: Union[Dict[str, object], str, Path]) -> Dict[str, object]:
    """One history entry (a plain dict) from a bench manifest.

    ``manifest`` is a loaded manifest dict or a path to a
    ``BENCH_*.json`` file.
    """
    if not isinstance(manifest, dict):
        data = json.loads(Path(manifest).read_text(encoding="ascii"))
    else:
        data = manifest
    for key in ("name", "repro_scale"):
        if key not in data:
            raise ValueError(f"manifest missing required key {key!r}")
    return {
        "schema": HISTORY_SCHEMA,
        "name": data["name"],
        "seed": data.get("seed"),
        "repro_scale": data["repro_scale"],
        "version": data.get("version", ""),
        "duration_s": data.get("duration_s"),
        "throughput": throughput_metrics(data.get("results")),
    }


def load_history(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Parse a history JSONL file into entry dicts (validating schema)."""
    entries: List[Dict[str, object]] = []
    for lineno, line in enumerate(
        Path(path).read_text(encoding="ascii").splitlines(), start=1
    ):
        if not line.strip():
            continue
        entry = json.loads(line)
        schema = entry.get("schema")
        if schema != HISTORY_SCHEMA:
            raise ValueError(
                f"{path}:{lineno}: entry key 'schema': unsupported value "
                f"{schema!r} (expected {HISTORY_SCHEMA!r})"
            )
        entries.append(entry)
    return entries


def append_entries(
    history_path: Union[str, Path],
    manifests: Sequence[Union[Dict[str, object], str, Path]],
) -> List[Dict[str, object]]:
    """Append one entry per manifest to the history file; returns them."""
    entries = [entry_from_manifest(m) for m in manifests]
    target = Path(history_path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "a", encoding="ascii") as handle:
        for entry in entries:
            handle.write(
                json.dumps(entry, sort_keys=True, separators=(",", ":")) + "\n"
            )
    return entries


@dataclass(frozen=True)
class Comparison:
    """Newest-vs-baseline for one (benchmark, scale, metric) triple."""

    name: str
    repro_scale: float
    metric: str
    baseline: float
    newest: float

    @property
    def change(self) -> float:
        """Fractional change (+0.10 = 10% faster, -0.20 = 20% slower)."""
        if self.baseline == 0:
            return 0.0
        return self.newest / self.baseline - 1.0

    def regressed(self, tolerance: float) -> bool:
        return self.baseline > 0 and self.newest < self.baseline * (1.0 - tolerance)


@dataclass
class CheckResult:
    """Outcome of one history regression check."""

    tolerance: float
    comparisons: List[Comparison] = field(default_factory=list)
    failures: List[Comparison] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [
            f"perf history: {len(self.comparisons)} comparisons, "
            f"tolerance {self.tolerance:.0%}"
        ]
        for comp in self.comparisons:
            verdict = "REGRESSED" if comp in self.failures else "ok"
            lines.append(
                f"  {verdict:>9s}  {comp.name} @scale {comp.repro_scale:g}: "
                f"{comp.metric} {comp.baseline:,.2f} -> {comp.newest:,.2f} "
                f"({comp.change:+.1%})"
            )
        if not self.comparisons:
            lines.append("  (no comparable entry pairs)")
        return "\n".join(lines)


def check_history(
    path: Union[str, Path], tolerance: float = DEFAULT_TOLERANCE
) -> CheckResult:
    """Compare each benchmark's newest entry against its baseline.

    Entries group by ``(name, repro_scale)``; within a group the oldest
    entry is the committed baseline and the newest is the candidate.
    Every throughput metric present in both is compared; a metric more
    than ``tolerance`` below baseline is a failure.
    """
    entries = load_history(path)
    result = CheckResult(tolerance=tolerance)
    groups: Dict[Tuple[str, float], List[Dict[str, object]]] = {}
    for entry in entries:
        key = (str(entry["name"]), float(entry["repro_scale"]))  # type: ignore[arg-type]
        groups.setdefault(key, []).append(entry)
    for (name, scale) in sorted(groups):
        group = groups[(name, scale)]
        if len(group) < 2:
            continue
        baseline, newest = group[0], group[-1]
        base_metrics = baseline.get("throughput") or {}
        new_metrics = newest.get("throughput") or {}
        for metric in sorted(set(base_metrics) & set(new_metrics)):
            comp = Comparison(
                name=name,
                repro_scale=scale,
                metric=metric,
                baseline=float(base_metrics[metric]),  # type: ignore[arg-type]
                newest=float(new_metrics[metric]),  # type: ignore[arg-type]
            )
            result.comparisons.append(comp)
            if comp.regressed(tolerance):
                result.failures.append(comp)
    return result


# -- CLI (python -m repro.obs.history) -------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.history",
        description="Accumulate BENCH_*.json manifests into the perf "
        "trajectory ledger and gate on throughput regressions.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p_append = sub.add_parser(
        "append", help="append one entry per BENCH_*.json manifest"
    )
    p_append.add_argument("manifests", nargs="+", metavar="MANIFEST")
    p_append.add_argument(
        "--history", default=DEFAULT_HISTORY_PATH, metavar="PATH"
    )
    p_check = sub.add_parser(
        "check", help="fail on >tolerance throughput regression"
    )
    p_check.add_argument(
        "--history", default=DEFAULT_HISTORY_PATH, metavar="PATH"
    )
    p_check.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="max tolerated fractional drop (default 0.15)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "append":
        try:
            entries = append_entries(args.history, args.manifests)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        for entry in entries:
            print(
                f"appended {entry['name']} @scale {entry['repro_scale']} "
                f"({len(entry['throughput'])} throughput metrics) "  # type: ignore[arg-type]
                f"to {args.history}"
            )
        return 0
    try:
        result = check_history(args.history, tolerance=args.tolerance)
    except FileNotFoundError:
        print(f"error: history file not found: {args.history}", file=sys.stderr)
        return 2
    except (ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(result.render())
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
