"""Runtime invariant checking for the slot-exact simulation engine.

The engine's docstring promises a set of timing and determinism
contracts — integer event times that never run backwards, within-slot
processing in :class:`~repro.sim.engine.EventKind` order, back-off
countdowns that never go negative, stale completion events discarded
via the generation counter, and carrier sensing that prevents a node
from transmitting into air it can hear is busy.  This module turns
those promises into machine-checked assertions: install an
:class:`InvariantChecker` as a listener (the engine does it for you
when :func:`repro.checks.runtime.runtime_checks_enabled` is true) and
every run becomes a race detector for the reconcile pass.

The checker observes; it never mutates simulation state.  In strict
mode (the default) the first violation raises :class:`InvariantError`
with a precise description; in collecting mode violations accumulate in
:attr:`InvariantChecker.violations` for post-mortem inspection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set, Tuple

from repro.sim.listeners import SimulationListener

if TYPE_CHECKING:  # pragma: no cover - import-time only
    from repro.phy.medium import Medium, Transmission
    from repro.sim.engine import SimulationEngine


@dataclass(frozen=True)
class InvariantViolation:
    """One broken engine contract, pinned to a slot."""

    slot: int
    kind: str
    detail: str

    def render(self) -> str:
        return f"slot {self.slot}: [{self.kind}] {self.detail}"


class InvariantError(AssertionError):
    """Raised in strict mode when a simulation invariant is violated."""

    def __init__(self, violation: InvariantViolation) -> None:
        super().__init__(violation.render())
        self.violation = violation


class InvariantChecker(SimulationListener):
    """Listener asserting the engine's documented invariants per slot.

    Parameters
    ----------
    strict:
        When True (default), raise :class:`InvariantError` at the first
        violation; when False, collect violations without interrupting
        the run.
    """

    def __init__(self, strict: bool = True) -> None:
        self.strict = strict
        self.violations: List[InvariantViolation] = []
        self.events_checked = 0
        self.slots_checked = 0
        self._last_slot: Optional[int] = None
        self._last_kind: Optional[int] = None
        # Nodes whose COUNTDOWN_COMPLETE this slot was fresh (acted on)
        # vs. stale (must be discarded by the engine).
        self._fresh: Set[Any] = set()
        self._stale: Set[Any] = set()

    # -- plumbing ----------------------------------------------------------

    def attach(self, engine: "SimulationEngine") -> "InvariantChecker":
        """Register on ``engine``; returns self for chaining."""
        engine.add_listener(self)
        return self

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        state = "ok" if self.ok else f"{len(self.violations)} violation(s)"
        return (
            f"invariant checks: {state} "
            f"({self.events_checked} events, {self.slots_checked} slots)"
        )

    def _fail(self, slot: int, kind: str, detail: str) -> None:
        violation = InvariantViolation(slot=int(slot), kind=kind, detail=detail)
        self.violations.append(violation)
        if self.strict:
            raise InvariantError(violation)

    # -- event stream invariants -------------------------------------------

    def on_event(
        self, slot: int, kind: int, data: Any, engine: "SimulationEngine"
    ) -> None:
        """Called by the engine before each event is dispatched."""
        self.events_checked += 1
        if slot != int(slot):
            self._fail(
                slot, "integer-slot-clock", f"event timestamp {slot!r} is not integral"
            )
        if slot < engine.now:
            self._fail(
                slot,
                "event-time-monotonicity",
                f"event at slot {slot} scheduled behind engine time {engine.now}",
            )
        if self._last_slot is not None and slot < self._last_slot:
            self._fail(
                slot,
                "event-time-monotonicity",
                f"event at slot {slot} processed after slot {self._last_slot}",
            )
        if slot != self._last_slot:
            # New slot batch: reset the within-slot bookkeeping.
            self._last_kind = None
            self._fresh = set()
            self._stale = set()
        self._last_slot = slot
        if self._last_kind is not None and kind < self._last_kind:
            self._fail(
                slot,
                "within-slot-ordering",
                f"EventKind {kind} processed after EventKind {self._last_kind} "
                "in the same slot (must be non-decreasing)",
            )
        self._last_kind = kind

        # EventKind.COUNTDOWN_COMPLETE payloads are (node_id, generation):
        # classify the event as fresh or stale *before* the handler runs,
        # so on_transmission_start can verify the discard contract.
        from repro.sim.engine import EventKind

        if kind == EventKind.COUNTDOWN_COMPLETE:
            node_id, generation = data
            mac = engine.macs.get(node_id)
            if mac is None:
                self._fail(
                    slot, "unknown-node", f"countdown completion for unknown node "
                    f"{node_id!r}"
                )
                return
            if mac.backoff.generation == generation and mac.backoff.counting:
                self._fresh.add(node_id)
            else:
                self._stale.add(node_id)

    # -- transmission invariants -------------------------------------------

    def on_transmission_start(
        self, slot: int, transmission: "Transmission", medium: "Medium"
    ) -> None:
        sender = transmission.sender
        if transmission.start_slot != slot:
            self._fail(
                slot,
                "transmission-timestamps",
                f"node {sender} transmission stamped start_slot="
                f"{transmission.start_slot} at slot {slot}",
            )
        if transmission.end_slot <= transmission.start_slot:
            self._fail(
                slot,
                "transmission-timestamps",
                f"node {sender} transmission has non-positive duration "
                f"({transmission.start_slot} -> {transmission.end_slot})",
            )
        if sender in self._stale and sender not in self._fresh:
            self._fail(
                slot,
                "stale-completion-discard",
                f"node {sender} transmitted on a stale countdown completion "
                "(generation counter moved on; the event must be discarded)",
            )
        elif sender not in self._fresh:
            self._fail(
                slot,
                "stale-completion-discard",
                f"node {sender} transmitted without a fresh countdown "
                "completion this slot",
            )
        # Carrier-sense contract: the reconcile pass must have frozen any
        # countdown whose owner senses busy air, so a node may only start
        # transmitting alongside *same-slot* starters (a genuine DCF
        # collision), never into a transmission already on the air.
        for _tx_id, other in medium.active_items():
            if other is transmission or other.sender == sender:
                continue
            if other.start_slot < slot and medium.senses(other.sender, sender):
                self._fail(
                    slot,
                    "carrier-sense",
                    f"node {sender} transmitted while sensing node "
                    f"{other.sender}'s transmission (started slot "
                    f"{other.start_slot}, ends {other.end_slot}): the "
                    "reconcile pass failed to freeze its countdown",
                )

    def on_transmission_end(
        self,
        slot: int,
        transmission: "Transmission",
        success: bool,
        medium: "Medium",
    ) -> None:
        if transmission.end_slot != slot:
            self._fail(
                slot,
                "transmission-timestamps",
                f"node {transmission.sender} transmission ended at slot {slot} "
                f"but was stamped end_slot={transmission.end_slot}",
            )

    # -- per-slot state invariants -----------------------------------------

    def on_slot_end(self, slot: int, engine: "SimulationEngine") -> None:
        """Called by the engine after a slot's batch and reconcile pass."""
        self.slots_checked += 1
        transmitting = {t.sender for t in engine.medium.active_transmissions()}
        for node_id, mac in engine.macs.items():
            backoff = mac.backoff
            if backoff.remaining is not None and backoff.remaining < 0:
                self._fail(
                    slot,
                    "non-negative-backoff",
                    f"node {node_id} back-off counter is negative "
                    f"({backoff.remaining})",
                )
            if (
                backoff.remaining is not None
                and backoff.initial is not None
                and backoff.remaining > backoff.initial
            ):
                self._fail(
                    slot,
                    "non-negative-backoff",
                    f"node {node_id} back-off counter grew "
                    f"({backoff.remaining} > initial {backoff.initial})",
                )
            if backoff.counting and backoff.completion_slot <= slot:
                self._fail(
                    slot,
                    "missed-completion",
                    f"node {node_id} countdown completion at slot "
                    f"{backoff.completion_slot} lies in the past",
                )
            is_transmitting = mac.state.value == "transmitting"
            if is_transmitting and node_id not in transmitting:
                self._fail(
                    slot,
                    "medium-consistency",
                    f"node {node_id} MAC is transmitting but the medium has "
                    "no active transmission for it",
                )
            if not is_transmitting and node_id in transmitting:
                self._fail(
                    slot,
                    "medium-consistency",
                    f"node {node_id} has an active transmission on the medium "
                    "but its MAC is not in the transmitting state",
                )
