"""``--explain RPR<code>``: the rule catalogue's long-form docs.

One entry per rule code, shown verbatim by ``python -m repro.checks
--explain <code>``.  A test asserts every registered rule (fast lint
and deep passes alike) has an explanation, so a new rule cannot ship
undocumented.
"""

from __future__ import annotations

from typing import Dict, Optional

EXPLANATIONS: Dict[str, str] = {
    "RPR001": """\
RPR001 — stdlib `random` outside util/rng.py

Every random draw must flow through the seeded stream machinery in
repro.util.rng so that trials are bit-for-bit reproducible from their
seed.  A stray `import random` draws from untracked global state and
silently breaks replay.

Fix: take a SeedStream (repro.util.rng) as a parameter, or derive a
child stream with derive_stream().""",
    "RPR002": """\
RPR002 — numpy.random outside util/rng.py

Same contract as RPR001: numpy's global RNG (np.random.*) and ad-hoc
default_rng() calls bypass the seeded streams and make trial results
depend on import order and process history.

Fix: route draws through repro.util.rng.""",
    "RPR003": """\
RPR003 — wall-clock read outside the allowlist

Simulation time is the integer slot clock.  Reading the host clock
(time.time, perf_counter, datetime.now, ...) inside simulation or
verdict code couples results to the machine running them.  Only the
throughput profiler (obs/profile.py) is allowlisted, and a test pins
the allowlist to reality.

Fix: use the engine's slot clock; convert with repro.util.units.""",
    "RPR101": """\
RPR101 — float literal in slot arithmetic

Slot timestamps are integers by design (the paper's timing claims are
slot-exact).  `slot + 0.5` re-introduces the floating-point event-time
drift the integer clock exists to prevent.

Fix: express the offset in whole slots, or convert via
microseconds_to_slots().""",
    "RPR102": """\
RPR102 — ==/!= between a slot value and a float literal

Exact equality against a float is either always false or accidentally
true; either way the comparison does not mean what it says for an
integer slot clock.

Fix: compare against an integer slot count.""",
    "RPR201": """\
RPR201 — mutable default argument

A list/dict/set default is evaluated once and shared across calls —
state leaks between engines and between trials, breaking run
isolation.

Fix: default to None and allocate inside the function.""",
    "RPR202": """\
RPR202 — bare `except:`

Bare except swallows KeyboardInterrupt/SystemExit and hides the
assertion failures the invariant checker raises on purpose.

Fix: catch the narrowest exception type that the handler can actually
handle.""",
    "RPR301": """\
RPR301 — public function missing type annotations

The annotated scopes (core/, mac/, sim/, obs/, phy/, geometry/,
routing/, experiments/) carry the engine-detector contract and the
unit-flow analysis (RPR5xx) reads their annotations as ground truth.
An unannotated public function is a hole in both.

Fix: annotate every parameter and the return type; use the unit
NewTypes (Slots, Microseconds, Seconds, Meters) from repro.util.units
for timing/geometry quantities.""",
    "RPR401": """\
RPR401 — module-level cache without a registered reset hook

Process-wide caches survive between trials unless
repro.util.caches.register_cache_reset knows how to clear them; a
stale cache makes trial N's result depend on trial N-1.

Fix: register a reset hook with @register_cache_reset in the module
that owns the cache.""",
    "RPR501": """\
RPR501 — mixed-unit arithmetic or comparison

The unit-flow pass tracked both operands to different physical units
(e.g. slots + microseconds, or seconds < meters).  Such expressions
are the canonical silent-corruption bug: the result is a number, just
the wrong one, and every rank-sum window built on it inherits the
error.

Fix: convert explicitly at the boundary with repro.util.units
(microseconds_to_slots, slots_to_microseconds, seconds_to_slots, ...)
so the conversion factor is visible and testable.  If the analyzer
mis-inferred a unit from a name suffix, rename the variable — the
suffix conventions (_slots, _us, _s/_seconds, _meters/_range) are part
of the codebase's contract.""",
    "RPR502": """\
RPR502 — call-argument unit mismatch

A value with one inferred unit is passed to a parameter declared (by
NewType annotation or name suffix) with a different unit.  The
resolution is whole-program: the callee may live in another module.

Fix: convert at the call site via repro.util.units, or fix the
callee's annotation if it is wrong.""",
    "RPR503": """\
RPR503 — float contamination of a slot-typed value

A structurally float expression (true division, float literal, or
float()-returning call) flows into a slot-typed target.  Slot counts
are integers; a float slot makes event ordering depend on rounding.

Fix: use // for slot division, or microseconds_to_slots() which owns
the ceil-to-int policy in one place.""",
    "RPR504": """\
RPR504 — declared unit violated by a binding or return

An annotated name (or a function with a unit return annotation) is
assigned/returns a value the dataflow traced to a *different* unit.
One of the two is lying; either is a latent bug.

Fix: correct the conversion, or correct the annotation — never
both-sides-cast to silence the finding.""",
    "RPR601": """\
RPR601 — shared mutable state reachable from parallel workers

run_trials() promises byte-identical results for any worker count,
which requires trial functions to be pure functions of their task
tuple.  This function is reachable from a worker entrypoint (a
function handed to run_trials, or an engine/observatory on_* hook) and
writes module-level state that is neither registered with
repro.util.caches.register_cache_reset nor part of the approved merge
machinery (repro.experiments.parallel, repro.obs.runtime/registry,
whose snapshots merge deterministically in task order).

In a forked worker such writes diverge silently: the parent never sees
them, and serial vs parallel runs stop agreeing.

Fix: thread the state through the task tuple and return value, merge
explicitly via MetricsRegistry.merge_snapshot, or register a reset
hook so every trial starts clean.""",
    "RPR602": """\
RPR602 — unsorted set iteration on a verdict/audit path

Set iteration order depends on the interpreter's hash seed.  Inside
repro.core and repro.obs — the code that computes verdicts and writes
audit trails — any value derived from that order (including float
accumulation order) is not reproducible across runs.

Fix: wrap the iterable in sorted(); if the elements are unorderable,
sort by a stable key.""",
    "RPR603": """\
RPR603 — os.environ mutation

The environment is process-wide state inherited by forked workers:
writing it from library code leaks configuration across trials,
invisibly to the run manifest that records inputs for replay.

Fix: pass configuration through task tuples or explicit parameters;
reserve environment variables for process-entry configuration read
once (os.environ.get is fine).""",
    "RPR701": """\
RPR701 — import against the layer DAG

The packages form a dependency DAG:

    util < geometry/traffic < phy/topology < mac < faults < sim
         < routing < core < experiments < analysis < cli

A lower layer importing a higher one (e.g. obs importing experiments)
creates a cycle-in-waiting and lets infrastructure depend on policy.
`if TYPE_CHECKING:` imports are exempt (they vanish at runtime), and
the cross-cutting planes repro.obs / repro.checks may be imported
lazily (inside a function) from anywhere — that is how the engine
attaches metrics without depending on them at import time.

Fix: move the shared code down to the layer both sides may use (see
repro.util.fidelity for the pattern), or invert the dependency with a
hook/callback.""",
    "RPR702": """\
RPR702 — detector code reads Medium internals

Detectors model the paper's monitor, whose whole point is *limited*
observability: it judges a sender only through what its own radio
senses.  Reaching into medium._* from repro.core grants the detector
channel-state omniscience the physical monitor cannot have, and every
detection-probability number measured with it overstates the paper.

Fix: consume the public observation API (ChannelObserver and the
handoff records); if data is genuinely observable, add a public
accessor to the Medium instead.""",
    "RPR703": """\
RPR703 — observation plane writes simulation state

repro.obs is read-only by contract: listeners and profilers may
observe any event but must not assign to engine/medium/network/mac
attributes.  A writing observer perturbs the run it measures, so
enabling --metrics would change the results being measured.

Fix: keep derived state on the observer object; if the engine must
expose a knob, put it on the engine's public API and call it from the
experiment layer, not from an observer.""",
}


def explain(code: str) -> Optional[str]:
    """Long-form documentation for a rule code, or None if unknown."""
    return EXPLANATIONS.get(code.upper())
