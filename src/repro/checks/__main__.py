"""CLI entry point: ``python -m repro.checks [paths...]``.

Fast mode (default) lints the given files/directories against the
single-file rules; ``--deep`` additionally builds the whole-program
index and runs the cross-module passes (unit flow, determinism races,
layering).  Exits nonzero if any non-baselined finding is reported, so
either mode can gate CI.

Output:

* default — one ``path:line:col: CODE message`` line per finding;
* ``--json`` — a JSON array of finding objects;
* ``--sarif FILE`` — additionally write a SARIF 2.1.0 document;
* ``--explain RPR501`` — print a rule's long-form documentation;
* ``--baseline FILE`` — suppress findings listed (with justification)
  in the baseline; ``--write-baseline`` regenerates the file from the
  current findings.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.checks.baseline import (
    DEFAULT_BASELINE,
    BaselineError,
    apply_baseline,
    load_baseline,
    render_baseline,
)
from repro.checks.deep import ALL_RULES, DEEP_RULES, run_deep
from repro.checks.explain import explain
from repro.checks.lint import RULES, lint_paths
from repro.checks.sarif import to_sarif, validate_sarif, write_sarif


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.checks",
        description="Repo-native static analysis for the slot-exact simulator",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        nargs="*",
        metavar="CODE",
        help="only report these rule codes (e.g. RPR001 RPR501)",
    )
    parser.add_argument(
        "--deep",
        action="store_true",
        help="also run the whole-program passes (unit flow, races, layering)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit findings as a JSON array on stdout",
    )
    parser.add_argument(
        "--sarif",
        metavar="FILE",
        help="write findings as a SARIF 2.1.0 document to FILE",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=DEFAULT_BASELINE,
        help=f"baseline suppression file (default: {DEFAULT_BASELINE}; "
        "missing file means empty baseline)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file entirely",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate the baseline file from the current findings and exit",
    )
    parser.add_argument(
        "--explain",
        metavar="CODE",
        help="print a rule's long-form documentation and exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.explain:
        text = explain(args.explain)
        if text is None:
            print(
                f"repro.checks: unknown rule code: {args.explain} "
                "(see --list-rules)",
                file=sys.stderr,
            )
            return 2
        print(text)
        return 0
    if args.list_rules:
        for rule in RULES:
            print(f"{rule.code}  {rule.summary}")
        for rule in DEEP_RULES:
            print(f"{rule.code}  {rule.summary}  [--deep]")
        return 0
    if args.select:
        known = {rule.code for rule in ALL_RULES} | {"RPR000"}
        unknown = sorted(set(args.select) - known)
        if unknown:
            print(
                f"repro.checks: unknown rule code(s): {', '.join(unknown)} "
                "(see --list-rules)",
                file=sys.stderr,
            )
            return 2
    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        for path in missing:
            print(
                f"repro.checks: no such file or directory: {path}",
                file=sys.stderr,
            )
        return 2

    findings = lint_paths(args.paths, select=args.select)
    if args.deep:
        findings = sorted(
            findings + run_deep(args.paths, select=args.select),
            key=lambda f: (f.path, f.line, f.col, f.code),
        )

    if args.write_baseline:
        Path(args.baseline).write_text(render_baseline(findings))
        print(
            f"repro.checks: wrote {len(findings)} finding(s) to "
            f"{args.baseline} — fill in every justification",
            file=sys.stderr,
        )
        return 0

    suppressed_count = 0
    if not args.no_baseline:
        try:
            baseline = load_baseline(args.baseline)
        except BaselineError as exc:
            print(f"repro.checks: {exc}", file=sys.stderr)
            return 2
        findings, suppressed, stale = apply_baseline(findings, baseline)
        suppressed_count = len(suppressed)
        if args.deep:
            # Staleness is only meaningful for a full deep run; a fast
            # lint of one subdirectory never reports deep findings.
            for key in stale:
                print(
                    f"repro.checks: stale baseline entry (no longer "
                    f"reported): {key}",
                    file=sys.stderr,
                )

    if args.sarif:
        document = to_sarif(findings, ALL_RULES)
        problems = validate_sarif(document)
        if problems:
            for problem in problems:
                print(f"repro.checks: invalid SARIF: {problem}", file=sys.stderr)
            return 2
        write_sarif(args.sarif, document)

    if args.as_json:
        print(
            json.dumps(
                [
                    {
                        "path": f.path,
                        "line": f.line,
                        "col": f.col,
                        "code": f.code,
                        "message": f.message,
                    }
                    for f in findings
                ],
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.render())
    noun = "finding" if len(findings) == 1 else "findings"
    suffix = (
        f" ({suppressed_count} baselined)" if suppressed_count else ""
    )
    print(f"repro.checks: {len(findings)} {noun}{suffix}", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # stdout went away (e.g. `... --explain RPR501 | head`); mirror
        # the conventional CLI response instead of a traceback.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        sys.exit(1)
