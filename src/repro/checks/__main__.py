"""CLI entry point: ``python -m repro.checks [paths...]``.

Lints the given files/directories (default: ``src``) against the repo's
static rules and exits nonzero if any finding is reported, so the pass
can gate CI.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.checks.lint import RULES, lint_paths


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.checks",
        description="Repo-native static analysis for the slot-exact simulator",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        nargs="*",
        metavar="CODE",
        help="only report these rule codes (e.g. RPR001 RPR101)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in RULES:
            print(f"{rule.code}  {rule.summary}")
        return 0
    if args.select:
        known = {rule.code for rule in RULES} | {"RPR000"}
        unknown = sorted(set(args.select) - known)
        if unknown:
            print(
                f"repro.checks: unknown rule code(s): {', '.join(unknown)} "
                "(see --list-rules)",
                file=sys.stderr,
            )
            return 2
    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        for path in missing:
            print(
                f"repro.checks: no such file or directory: {path}",
                file=sys.stderr,
            )
        return 2
    findings = lint_paths(args.paths, select=args.select)
    for finding in findings:
        print(finding.render())
    noun = "finding" if len(findings) == 1 else "findings"
    print(f"repro.checks: {len(findings)} {noun}", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
