"""Deep pass 1 — unit-flow analysis (rules RPR5xx).

The engine's verdicts hinge on slot-exact integer timing: a single
``slots``-vs-``µs`` mix-up silently corrupts every rank-sum window built
on top of it.  This pass propagates *units* through assignments, calls
and arithmetic, whole-program:

* **sources** — parameter/return annotations using the
  :mod:`repro.util.units` NewTypes (``Slots``, ``Microseconds``,
  ``Seconds``, ``Meters``), plus a conservative name-suffix convention
  (``*_slots``/``*_slot`` -> slots, ``*_us`` -> microseconds,
  ``*_seconds``/``*_s`` -> seconds, ``*_meters``/``*_range`` -> meters)
  for code the annotations have not reached yet;
* **propagation** — assignments carry units; ``+``/``-`` of like units
  stays that unit; multiplying by a dimensionless value (or by a slot
  *count*) keeps the other operand's unit; dividing like units cancels
  to dimensionless; anything else degrades to *unknown*, never to a
  guess;
* **sinks** — mixed-unit arithmetic, call arguments whose unit differs
  from the callee's declared parameter unit (resolved through the
  project index, so the check crosses module boundaries), float-tainted
  expressions flowing into slot-typed targets, and returns that violate
  the declared return unit.

Rules
-----

==========  ============================================================
``RPR501``  arithmetic or comparison mixing two different units
``RPR502``  call argument whose unit differs from the parameter's
``RPR503``  float-producing expression bound to a slot-typed target
``RPR504``  return value whose unit differs from the declared return
==========  ============================================================

Unknown units never fire: the pass only reports when *both* sides carry
a confidently inferred, conflicting unit.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Sequence, Tuple

from repro.checks.index import FunctionInfo, ModuleInfo, ProjectIndex
from repro.checks.lint import Finding

SLOTS = "slots"
MICROSECONDS = "us"
SECONDS = "seconds"
METERS = "meters"
#: Dimensionless values (literals, counts); mixes freely with any unit.
SCALAR = "scalar"

#: NewType names (repro.util.units) -> unit.
UNIT_TYPE_NAMES: Dict[str, str] = {
    "Slots": SLOTS,
    "Microseconds": MICROSECONDS,
    "Seconds": SECONDS,
    "Meters": METERS,
}

_HUMAN = {
    SLOTS: "slots",
    MICROSECONDS: "microseconds",
    SECONDS: "seconds",
    METERS: "meters",
}

#: Identifier-suffix conventions, checked in order (first match wins).
_SUFFIX_RULES: Tuple[Tuple[re.Pattern, str], ...] = (
    (re.compile(r"(?:^|_)slots?$", re.IGNORECASE), SLOTS),
    (re.compile(r"(?:^|_)us$|(?:^|_)microseconds$", re.IGNORECASE), MICROSECONDS),
    # `_s` needs a stem of >= 2 chars: `time_s` is seconds, `d_s` is
    # "distance to sender".
    (re.compile(r"(?:^|_)seconds$|[a-z0-9]{2}_s$", re.IGNORECASE), SECONDS),
    (re.compile(r"(?:^|_)meters$|._ranges?$", re.IGNORECASE), METERS),
)

#: Calls that keep their (single) argument's unit.
_UNIT_PRESERVING_CALLS = frozenset(
    {"int", "round", "abs", "float", "max", "min", "sum", "sorted"}
)

#: Calls whose result is integral (stops float-taint propagation).
_INT_COERCING_CALLS = frozenset({"int", "round", "len", "floor", "ceil"})

_ARITH_OPS = (ast.Add, ast.Sub)
_ORDER_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)


def annotation_unit(annotation: Optional[ast.expr]) -> Optional[str]:
    """The unit an annotation expression declares, if exactly one."""
    if annotation is None:
        return None
    found = set()
    for sub in ast.walk(annotation):
        name: Optional[str] = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            # String annotations: "Slots", "Optional[Slots]", ...
            for type_name in UNIT_TYPE_NAMES:
                if re.search(rf"\b{type_name}\b", sub.value):
                    found.add(UNIT_TYPE_NAMES[type_name])
        if name in UNIT_TYPE_NAMES:
            found.add(UNIT_TYPE_NAMES[name])
    if len(found) == 1:
        return found.pop()
    return None


def name_unit(identifier: str) -> Optional[str]:
    """The unit an identifier's suffix conventionally declares."""
    for pattern, unit in _SUFFIX_RULES:
        if pattern.search(identifier):
            return unit
    return None


def _literal_value(node: ast.expr) -> Optional[float]:
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        return float(node.value)
    return None


def _conversion_unit(node: ast.BinOp, left: Optional[str], right: Optional[str]) -> Optional[str]:
    """Recognize literal 1e6 factors as µs <-> seconds conversions."""
    if isinstance(node.op, ast.Div):
        if left == MICROSECONDS and _literal_value(node.right) == 1e6:
            return SECONDS
        if left == SECONDS and _literal_value(node.right) == 1e-6:
            return MICROSECONDS
    if isinstance(node.op, ast.Mult):
        if left == SECONDS and _literal_value(node.right) == 1e6:
            return MICROSECONDS
        if right == SECONDS and _literal_value(node.left) == 1e6:
            return MICROSECONDS
    return None


def _combine(op: ast.operator, left: Optional[str], right: Optional[str]) -> Optional[str]:
    """Resulting unit of ``left <op> right`` (None = unknown)."""
    if isinstance(op, _ARITH_OPS) or isinstance(op, ast.Mod):
        if left == SCALAR:
            return right
        if right == SCALAR:
            return left
        if left is not None and left == right:
            return left
        return None
    if isinstance(op, ast.Mult):
        operands = {left, right}
        if SCALAR in operands:
            operands.discard(SCALAR)
            return operands.pop() if operands else SCALAR
        # A slot count acts as a dimensionless multiplier
        # (slots * slot_time_us -> microseconds).
        if SLOTS in operands and len(operands) > 1:
            operands.discard(SLOTS)
            return operands.pop()
        return None
    if isinstance(op, (ast.Div, ast.FloorDiv)):
        if right == SCALAR:
            return left
        if left is not None and left is not SCALAR and left == right:
            return SCALAR  # like units cancel
        return None
    return None


class _ScopeAnalyzer:
    """Unit dataflow over one function body (or a module body)."""

    def __init__(
        self,
        pass_: "UnitFlowPass",
        module: ModuleInfo,
        function: Optional[FunctionInfo],
    ) -> None:
        self.pass_ = pass_
        self.module = module
        self.function = function
        self.env: Dict[str, Optional[str]] = {}
        self.declared_return: Optional[str] = None
        if function is not None:
            for param in function.params:
                unit = annotation_unit(param.annotation) or name_unit(param.name)
                if unit is not None:
                    self.env[param.name] = unit
            self.declared_return = annotation_unit(function.returns)

    # -- reporting ---------------------------------------------------------

    def _add(self, node: ast.AST, code: str, message: str) -> None:
        scope = self.function.qualname if self.function else self.module.name
        self.pass_.add(self.module, node, code, message, scope)

    # -- expression units --------------------------------------------------

    def lookup_name(self, name: str) -> Optional[str]:
        if name in self.env:
            return self.env[name]
        target = self.module.imports.get(name)
        if target is not None:
            # Imported constant: unit from its name in the source module.
            tail = target.rsplit(".", 1)[-1]
            unit = name_unit(tail)
            if unit is not None:
                return unit
        if name in self.module.globals:
            return name_unit(name)
        return name_unit(name)

    def _call_unit(self, node: ast.Call) -> Optional[str]:
        callee = self.pass_.index.resolve_callable(
            self.module, node, self.function
        )
        self._check_call(node, callee)
        func = node.func
        func_name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if callee is not None:
            unit = annotation_unit(callee.returns)
            if unit is not None:
                return unit
            if callee.name == "__init__":
                return None
        if func_name in _UNIT_PRESERVING_CALLS and node.args:
            arg_units = {self.expr_unit(a) for a in node.args}
            arg_units.discard(SCALAR)
            if not arg_units:
                return SCALAR
            if len(arg_units) == 1:
                return arg_units.pop()
            return None
        # Evaluate remaining arguments for nested findings.
        for arg in node.args:
            self.expr_unit(arg)
        for kw in node.keywords:
            if kw.value is not None:
                self.expr_unit(kw.value)
        if callee is not None:
            return name_unit(callee.name)
        if func_name is not None and func_name not in ("range",):
            return name_unit(func_name)
        return None

    def expr_unit(self, node: Optional[ast.expr]) -> Optional[str]:
        """Infer a unit, emitting findings for conflicts along the way."""
        if node is None:
            return None
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return None
            if isinstance(node.value, (int, float)):
                return SCALAR
            return None
        if isinstance(node, ast.Name):
            return self.lookup_name(node.id)
        if isinstance(node, ast.Attribute):
            self.expr_unit(node.value)
            prop_unit = self.pass_.property_unit(node.attr)
            if prop_unit is not None:
                return prop_unit
            return name_unit(node.attr)
        if isinstance(node, ast.UnaryOp):
            return self.expr_unit(node.operand)
        if isinstance(node, ast.BinOp):
            left = self.expr_unit(node.left)
            right = self.expr_unit(node.right)
            converted = _conversion_unit(node, left, right)
            if converted is not None:
                return converted
            if (
                isinstance(node.op, _ARITH_OPS)
                and left is not None
                and right is not None
                and SCALAR not in (left, right)
                and left != right
            ):
                self._add(
                    node,
                    "RPR501",
                    f"mixed-unit arithmetic: {_HUMAN[left]} "
                    f"{'+' if isinstance(node.op, ast.Add) else '-'} "
                    f"{_HUMAN[right]} (convert explicitly via repro.util.units)",
                )
                return None
            return _combine(node.op, left, right)
        if isinstance(node, ast.Compare):
            operands = [node.left, *node.comparators]
            units = [self.expr_unit(o) for o in operands]
            for op, (lu, ru) in zip(node.ops, zip(units, units[1:])):
                if (
                    isinstance(op, _ORDER_OPS)
                    and lu is not None
                    and ru is not None
                    and SCALAR not in (lu, ru)
                    and lu != ru
                ):
                    self._add(
                        node,
                        "RPR501",
                        f"mixed-unit comparison: {_HUMAN[lu]} vs {_HUMAN[ru]} "
                        "(convert explicitly via repro.util.units)",
                    )
            return None
        if isinstance(node, ast.Call):
            return self._call_unit(node)
        if isinstance(node, ast.IfExp):
            self.expr_unit(node.test)
            a = self.expr_unit(node.body)
            b = self.expr_unit(node.orelse)
            return a if a == b else None
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for elt in node.elts:
                self.expr_unit(elt)
            return None
        if isinstance(node, ast.Starred):
            return self.expr_unit(node.value)
        # Comprehensions, subscripts, lambdas, f-strings...: walk nested
        # expressions so conflicts inside still surface, result unknown.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.expr_unit(child)
            elif isinstance(child, ast.comprehension):
                self.expr_unit(child.iter)
                for cond in child.ifs:
                    self.expr_unit(cond)
        return None

    # -- float taint -------------------------------------------------------

    def is_float_tainted(self, node: ast.expr) -> bool:
        """True when the expression's value is structurally float."""
        if isinstance(node, ast.Constant):
            return type(node.value) is float
        if isinstance(node, ast.UnaryOp):
            return self.is_float_tainted(node.operand)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Div):
                return True
            return self.is_float_tainted(node.left) or self.is_float_tainted(
                node.right
            )
        if isinstance(node, ast.Call):
            func = node.func
            func_name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if func_name in _INT_COERCING_CALLS:
                return False
            if func_name == "float":
                return True
            if func_name in _UNIT_PRESERVING_CALLS:
                return any(self.is_float_tainted(a) for a in node.args)
            callee = self.pass_.index.resolve_callable(
                self.module, node, self.function
            )
            if callee is not None and callee.returns is not None:
                ret = callee.returns
                if isinstance(ret, ast.Name):
                    if ret.id in ("float", "Microseconds", "Seconds", "Meters"):
                        return True
            return False
        if isinstance(node, ast.IfExp):
            return self.is_float_tainted(node.body) or self.is_float_tainted(
                node.orelse
            )
        return False

    def _check_slot_taint(self, node: ast.AST, value: ast.expr, label: str) -> None:
        if self.is_float_tainted(value):
            self._add(
                node,
                "RPR503",
                f"float-contaminated expression flows into slot-typed {label}: "
                "slot counts are integers (use // or "
                "repro.util.units.microseconds_to_slots)",
            )

    # -- calls -------------------------------------------------------------

    def _check_call(self, node: ast.Call, callee: Optional[FunctionInfo]) -> None:
        if callee is None:
            return
        params = callee.positional_params()
        if any(isinstance(a, ast.Starred) for a in node.args):
            return
        pairs: List[Tuple[str, Optional[ast.expr], ast.expr]] = []
        for param, arg in zip(params, node.args):
            pairs.append((param.name, param.annotation, arg))
        by_name = {p.name: p for p in params}
        for kw in node.keywords:
            if kw.arg is not None and kw.arg in by_name:
                param = by_name[kw.arg]
                pairs.append((param.name, param.annotation, kw.value))
        for param_name, param_annotation, arg in pairs:
            param_unit = annotation_unit(param_annotation) or name_unit(param_name)
            if param_unit is None:
                continue
            arg_unit = self.expr_unit(arg)
            if (
                arg_unit is not None
                and SCALAR not in (arg_unit, param_unit)
                and arg_unit != param_unit
            ):
                self._add(
                    arg,
                    "RPR502",
                    f"unit mismatch in call to {callee.name}(): argument "
                    f"`{param_name}` expects {_HUMAN[param_unit]} but the "
                    f"value carries {_HUMAN[arg_unit]}",
                )
            if param_unit == SLOTS:
                self._check_slot_taint(arg, arg, f"parameter `{param_name}`")

    # -- statements --------------------------------------------------------

    def _bind(self, target: ast.expr, unit: Optional[str], value: Optional[ast.expr]) -> None:
        if isinstance(target, ast.Name):
            declared = self.env.get(target.id) or name_unit(target.id)
            if (
                value is not None
                and declared is not None
                and unit is not None
                and SCALAR not in (declared, unit)
                and declared != unit
            ):
                self._add(
                    value,
                    "RPR504",
                    f"`{target.id}` carries {_HUMAN[declared]} but is assigned "
                    f"a value in {_HUMAN[unit]}",
                )
                self.env[target.id] = declared
                return
            self.env[target.id] = unit if unit is not None else declared
            if declared == SLOTS and value is not None:
                self._check_slot_taint(value, value, f"name `{target.id}`")
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, None, None)

    def handle_statements(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self.handle_statement(stmt)

    def handle_statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            unit = self.expr_unit(stmt.value)
            for target in stmt.targets:
                self._bind(target, unit, stmt.value)
            return
        if isinstance(stmt, ast.AnnAssign):
            declared = annotation_unit(stmt.annotation)
            unit = self.expr_unit(stmt.value) if stmt.value else None
            if isinstance(stmt.target, ast.Name):
                if (
                    declared is not None
                    and unit is not None
                    and SCALAR not in (declared, unit)
                    and declared != unit
                    and stmt.value is not None
                ):
                    self._add(
                        stmt.value,
                        "RPR504",
                        f"`{stmt.target.id}` is declared "
                        f"{_HUMAN[declared]} but assigned a value in "
                        f"{_HUMAN[unit]}",
                    )
                self.env[stmt.target.id] = declared or unit
                if declared == SLOTS and stmt.value is not None:
                    self._check_slot_taint(
                        stmt.value, stmt.value, f"name `{stmt.target.id}`"
                    )
            return
        if isinstance(stmt, ast.AugAssign):
            target_unit = None
            if isinstance(stmt.target, ast.Name):
                target_unit = self.lookup_name(stmt.target.id)
            elif isinstance(stmt.target, ast.Attribute):
                target_unit = name_unit(stmt.target.attr)
            value_unit = self.expr_unit(stmt.value)
            if (
                isinstance(stmt.op, _ARITH_OPS)
                and target_unit is not None
                and value_unit is not None
                and SCALAR not in (target_unit, value_unit)
                and target_unit != value_unit
            ):
                self._add(
                    stmt,
                    "RPR501",
                    f"mixed-unit arithmetic: {_HUMAN[target_unit]} "
                    f"augmented with {_HUMAN[value_unit]}",
                )
            if target_unit == SLOTS:
                self._check_slot_taint(stmt, stmt.value, "augmented target")
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                unit = self.expr_unit(stmt.value)
                if (
                    self.declared_return is not None
                    and unit is not None
                    and SCALAR not in (unit, self.declared_return)
                    and unit != self.declared_return
                ):
                    self._add(
                        stmt,
                        "RPR504",
                        f"return declared {_HUMAN[self.declared_return]} but "
                        f"the value carries {_HUMAN[unit]}",
                    )
                if self.declared_return == SLOTS:
                    self._check_slot_taint(stmt, stmt.value, "return value")
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are analyzed via the function table
        if isinstance(stmt, ast.For):
            self.expr_unit(stmt.iter)
            self._bind(stmt.target, None, None)
            self.handle_statements(stmt.body)
            self.handle_statements(stmt.orelse)
            return
        if isinstance(stmt, (ast.While, ast.If)):
            self.expr_unit(stmt.test)
            self.handle_statements(stmt.body)
            self.handle_statements(stmt.orelse)
            return
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                self.expr_unit(item.context_expr)
            self.handle_statements(stmt.body)
            return
        if isinstance(stmt, ast.Try):
            self.handle_statements(stmt.body)
            for handler in stmt.handlers:
                self.handle_statements(handler.body)
            self.handle_statements(stmt.orelse)
            self.handle_statements(stmt.finalbody)
            return
        # Generic statements: evaluate their direct expressions.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self.expr_unit(child)


class UnitFlowPass:
    """Runs the RPR5xx unit-flow analysis over a project index."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.findings: List[Finding] = []
        self._property_units: Optional[Dict[str, Optional[str]]] = None

    def add(
        self, module: ModuleInfo, node: ast.AST, code: str, message: str, scope: str
    ) -> None:
        self.findings.append(
            Finding(
                path=module.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                code=code,
                message=f"{message} [in {scope}]",
            )
        )

    def property_unit(self, attr: str) -> Optional[str]:
        """Unit of ``x.attr`` when every def of ``attr`` agrees on one."""
        if self._property_units is None:
            table: Dict[str, Optional[str]] = {}
            for name, fns in self.index.methods_by_name.items():
                units = {annotation_unit(fn.returns) for fn in fns}
                if len(units) == 1:
                    table[name] = units.pop()
                else:
                    table[name] = None
            self._property_units = table
        return self._property_units.get(attr)

    def run(self) -> List[Finding]:
        for mod_name in sorted(self.index.modules):
            module = self.index.modules[mod_name]
            _ScopeAnalyzer(self, module, None).handle_statements(module.tree.body)
            for fn in module.functions:
                analyzer = _ScopeAnalyzer(self, module, fn)
                body = getattr(fn.node, "body", [])
                analyzer.handle_statements(body)
        return sorted(
            self.findings, key=lambda f: (f.path, f.line, f.col, f.code)
        )
