"""Project-wide AST index and call graph for the deep analysis passes.

The single-file lint pass (:mod:`repro.checks.lint`) sees one module at
a time; the deep passes (unit flow, determinism races, layering) need
whole-program facts: which function a call resolves to, what a callee's
parameter annotations declare, which module-level state a worker
entrypoint can reach.  This module parses every source file once and
builds:

* a **module table** — per module: its AST, its import aliases (local
  name -> fully qualified target), its import *edges* (for the layering
  pass, with module/function/TYPE_CHECKING scoping), its module-level
  assignments, and whether it references the cache-reset registry;
* a **function table** — every ``def`` keyed by dotted qualname
  (``repro.mac.constants.MacTiming.difs_slots``), with parameter and
  return annotations;
* a **call graph** — best-effort resolved edges between qualnames.
  Resolution is deliberately conservative: direct calls resolve through
  the import table, ``self.method()`` resolves within the class, and a
  bare ``obj.method()`` resolves only when the method name is unique
  project-wide.  Unresolved calls simply contribute no edge.

Everything is derived from stable inputs (sorted file list, AST order),
so two runs over the same tree produce identical indexes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.checks.lint import iter_python_files

_FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)


@dataclass(frozen=True)
class Param:
    """One formal parameter: its name and (optional) annotation."""

    name: str
    annotation: Optional[ast.expr]


@dataclass
class FunctionInfo:
    """One ``def``, with enough signature detail for cross-module checks."""

    module: str
    qualname: str
    name: str
    class_name: Optional[str]
    node: ast.AST
    params: List[Param]
    returns: Optional[ast.expr]
    lineno: int

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    def positional_params(self) -> List[Param]:
        """Parameters in call-matching order, ``self``/``cls`` stripped."""
        params = self.params
        if self.is_method and params and params[0].name in ("self", "cls"):
            return params[1:]
        return params


@dataclass(frozen=True)
class ImportEdge:
    """One import statement, as a module-to-module dependency edge."""

    module: str
    target: str
    lineno: int
    col: int
    #: "module" for top-level imports, "function" for lazy imports.
    scope: str
    #: True when the import sits under ``if TYPE_CHECKING:``.
    type_checking: bool


@dataclass(frozen=True)
class GlobalVar:
    """One module-level assignment target."""

    module: str
    name: str
    lineno: int
    col: int
    #: True when the bound value is a mutable container / class instance.
    mutable: bool


@dataclass
class ModuleInfo:
    """Everything the deep passes need to know about one module."""

    name: str
    path: str
    tree: ast.Module
    #: local alias -> fully qualified dotted target.
    imports: Dict[str, str] = field(default_factory=dict)
    import_edges: List[ImportEdge] = field(default_factory=list)
    globals: Dict[str, GlobalVar] = field(default_factory=dict)
    functions: List[FunctionInfo] = field(default_factory=list)
    #: class name -> method name -> FunctionInfo
    classes: Dict[str, Dict[str, FunctionInfo]] = field(default_factory=dict)
    #: class name -> base-class name strings (dotted, unresolved)
    class_bases: Dict[str, List[str]] = field(default_factory=dict)
    references_cache_registry: bool = False


#: AST nodes whose value makes a module-level binding mutable state.
_MUTABLE_VALUE_NODES = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)
_MUTABLE_CONSTRUCTOR_NAMES = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter",
     "OrderedDict"}
)


def module_name_for_path(path: str) -> str:
    """Dotted module name for ``path``.

    Rooted at the ``repro`` package when present (``.../src/repro/mac/
    dcf.py`` -> ``repro.mac.dcf``); otherwise the path's parts are used
    verbatim (``mac/dcf.py`` -> ``mac.dcf``) so synthetic corpus trees
    index naturally.  ``__init__.py`` maps to the package itself.
    """
    parts = list(path.replace("\\", "/").split("/"))
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "repro" in parts:
        parts = parts[parts.index("repro") :]
    parts = [p for p in parts if p not in ("", ".")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or "<root>"


def _value_is_mutable(value: Optional[ast.expr]) -> bool:
    if value is None:
        return False
    if isinstance(value, _MUTABLE_VALUE_NODES):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        if isinstance(func, ast.Name) and func.id in _MUTABLE_CONSTRUCTOR_NAMES:
            return True
        if isinstance(func, ast.Attribute) and func.attr in _MUTABLE_CONSTRUCTOR_NAMES:
            return True
    return False


def _annotation_is_mutable(annotation: Optional[ast.expr]) -> bool:
    """True when an annotated-only binding declares a mutable container."""
    if annotation is None:
        return False
    for sub in ast.walk(annotation):
        name = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        if name in ("List", "Dict", "Set", "list", "dict", "set", "DefaultDict",
                    "Deque", "MutableMapping", "MutableSequence", "MutableSet"):
            return True
    return False


class _ModuleScanner(ast.NodeVisitor):
    """Single traversal populating a :class:`ModuleInfo`."""

    def __init__(self, info: ModuleInfo) -> None:
        self.info = info
        self._scope: List[str] = []  # stack of "class:<Name>" / "function"
        self._type_checking_depth = 0

    # -- helpers -----------------------------------------------------------

    def _enclosing_class(self) -> Optional[str]:
        for marker in reversed(self._scope):
            if marker == "function":
                return None
            if marker.startswith("class:"):
                return marker[len("class:") :]
        return None

    def _import_scope(self) -> str:
        return "function" if "function" in self._scope else "module"

    def _add_edge(self, node: ast.AST, target: str) -> None:
        self.info.import_edges.append(
            ImportEdge(
                module=self.info.name,
                target=target,
                lineno=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                scope=self._import_scope(),
                type_checking=self._type_checking_depth > 0,
            )
        )

    # -- imports -----------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            self.info.imports.setdefault(local, alias.name)
            self._add_edge(node, alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = node.module or ""
        if node.level:
            # Relative import: resolve against this module's package.
            pkg_parts = self.info.name.split(".")[: -node.level]
            base = ".".join(pkg_parts + ([node.module] if node.module else []))
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            target = f"{base}.{alias.name}" if base else alias.name
            self.info.imports.setdefault(local, target)
            if alias.name == "register_cache_reset":
                self.info.references_cache_registry = True
        if base:
            self._add_edge(node, base)
        self.generic_visit(node)

    # -- module-level state ------------------------------------------------

    def _record_global(self, target: ast.expr, node: ast.stmt, mutable: bool) -> None:
        if not isinstance(target, ast.Name) or self._scope:
            return
        name = target.id
        existing = self.info.globals.get(name)
        if existing is None or (mutable and not existing.mutable):
            self.info.globals[name] = GlobalVar(
                module=self.info.name,
                name=name,
                lineno=node.lineno,
                col=node.col_offset,
                mutable=mutable,
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_global(target, node, _value_is_mutable(node.value))
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        mutable = _value_is_mutable(node.value) or (
            node.value is None and _annotation_is_mutable(node.annotation)
        )
        self._record_global(node.target, node, mutable)
        self.generic_visit(node)

    # -- scoping -----------------------------------------------------------

    def visit_If(self, node: ast.If) -> None:
        is_type_checking = (
            isinstance(node.test, ast.Name) and node.test.id == "TYPE_CHECKING"
        ) or (
            isinstance(node.test, ast.Attribute)
            and node.test.attr == "TYPE_CHECKING"
        )
        if is_type_checking:
            self._type_checking_depth += 1
            for child in node.body:
                self.visit(child)
            self._type_checking_depth -= 1
            for child in node.orelse:
                self.visit(child)
        else:
            self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if not self._scope:  # only index top-level classes
            self.info.classes.setdefault(node.name, {})
            bases = []
            for base in node.bases:
                dotted = _dotted(base)
                if dotted:
                    bases.append(dotted)
            self.info.class_bases[node.name] = bases
        self._scope.append(f"class:{node.name}")
        self.generic_visit(node)
        self._scope.pop()

    def _visit_function(self, node: ast.AST) -> None:
        assert isinstance(node, _FunctionNode)
        class_name = self._enclosing_class()
        nested = "function" in self._scope
        if not nested:
            args = node.args
            params = [
                Param(a.arg, a.annotation)
                for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
            ]
            qual = (
                f"{self.info.name}.{class_name}.{node.name}"
                if class_name
                else f"{self.info.name}.{node.name}"
            )
            info = FunctionInfo(
                module=self.info.name,
                qualname=qual,
                name=node.name,
                class_name=class_name,
                node=node,
                params=params,
                returns=node.returns,
                lineno=node.lineno,
            )
            self.info.functions.append(info)
            if class_name:
                self.info.classes.setdefault(class_name, {})[node.name] = info
        self._scope.append("function")
        self.generic_visit(node)
        self._scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_Name(self, node: ast.Name) -> None:
        if node.id == "register_cache_reset":
            self.info.references_cache_registry = True
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr == "register_cache_reset":
            self.info.references_cache_registry = True
        self.generic_visit(node)


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ProjectIndex:
    """The whole-program index the deep passes query."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.methods_by_name: Dict[str, List[FunctionInfo]] = {}
        #: caller qualname -> set of callee qualnames
        self.calls: Dict[str, Set[str]] = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, paths: Iterable[str]) -> "ProjectIndex":
        """Index every Python file under the given files/directories."""
        sources = []
        for path in iter_python_files(paths):
            try:
                sources.append((str(path), path.read_text()))
            except OSError:
                continue
        return cls.build_from_sources(sources)

    @classmethod
    def build_from_sources(
        cls, sources: Sequence[Tuple[str, str]]
    ) -> "ProjectIndex":
        """Index in-memory ``(path, source)`` pairs (corpus/test entry)."""
        index = cls()
        for path, source in sources:
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError:
                continue
            name = module_name_for_path(path)
            info = ModuleInfo(name=name, path=path, tree=tree)
            _ModuleScanner(info).visit(tree)
            index.modules[name] = info
            for fn in info.functions:
                index.functions[fn.qualname] = fn
                index.methods_by_name.setdefault(fn.name, []).append(fn)
        index._build_call_graph()
        return index

    # -- call resolution ---------------------------------------------------

    def resolve_callable(
        self, module: ModuleInfo, call: ast.Call, caller: Optional[FunctionInfo]
    ) -> Optional[FunctionInfo]:
        """Best-effort resolution of a call expression to a FunctionInfo."""
        func = call.func
        if isinstance(func, ast.Name):
            # Module-level function in the same module.
            fn = self.functions.get(f"{module.name}.{func.id}")
            if fn is not None and fn.class_name is None:
                return fn
            # Class constructor in the same module -> its __init__.
            if func.id in module.classes:
                return module.classes[func.id].get("__init__")
            target = module.imports.get(func.id)
            if target is not None:
                resolved = self.functions.get(target)
                if resolved is not None:
                    return resolved
                # Imported class -> constructor.
                mod, _, cls_name = target.rpartition(".")
                mod_info = self.modules.get(mod)
                if mod_info is not None and cls_name in mod_info.classes:
                    return mod_info.classes[cls_name].get("__init__")
            return None
        if isinstance(func, ast.Attribute):
            dotted = _dotted(func)
            if dotted is not None:
                head, _, rest = dotted.partition(".")
                target = module.imports.get(head)
                if target is not None and rest:
                    resolved = self.functions.get(f"{target}.{rest}")
                    if resolved is not None:
                        return resolved
            # self.method() within the defining class.
            if (
                caller is not None
                and caller.class_name is not None
                and isinstance(func.value, ast.Name)
                and func.value.id in ("self", "cls")
            ):
                methods = self.modules[caller.module].classes.get(
                    caller.class_name, {}
                )
                if func.attr in methods:
                    return methods[func.attr]
            # Unique method name anywhere in the project.
            candidates = self.methods_by_name.get(func.attr, [])
            if len(candidates) == 1:
                return candidates[0]
        return None

    def _build_call_graph(self) -> None:
        for mod in self.modules.values():
            for fn in mod.functions:
                edges = self.calls.setdefault(fn.qualname, set())
                for sub in ast.walk(fn.node):
                    if not isinstance(sub, ast.Call):
                        continue
                    callee = self.resolve_callable(mod, sub, fn)
                    if callee is not None and callee.qualname != fn.qualname:
                        edges.add(callee.qualname)

    def reachable_from(self, roots: Iterable[str]) -> Set[str]:
        """Transitive closure of the call graph from the given qualnames."""
        seen: Set[str] = set()
        stack = [r for r in roots if r in self.functions]
        while stack:
            qual = stack.pop()
            if qual in seen:
                continue
            seen.add(qual)
            stack.extend(self.calls.get(qual, ()))
        return seen
