"""Deep pass 2 — determinism race detection (rules RPR6xx).

:mod:`repro.experiments.parallel` promises byte-identical output for
any worker count, which only holds if trial functions are pure
functions of their task tuple.  This pass walks the call graph from
the *worker entrypoints* — every function handed to ``run_trials`` plus
every ``on_*`` engine/observatory hook — and flags hidden process-wide
state on those paths:

* **RPR601** — a reachable function writes module-level mutable state
  whose module neither registers with
  :func:`repro.util.caches.register_cache_reset` nor belongs to the
  approved merge machinery (the parallel pool itself and the metrics
  registry, whose snapshots are folded back deterministically via
  ``MetricsRegistry.merge_snapshot``).  Such state silently diverges
  between forked workers and the parent.
* **RPR602** — iteration over a ``set`` (literal, comprehension,
  ``set()``/``frozenset()`` call, set algebra, or a ``Set``-annotated
  parameter) without ``sorted()`` inside verdict/audit code
  (``repro.core``/``repro.obs``).  Set order is hash-seed dependent;
  any verdict derived from it is not reproducible.
* **RPR603** — mutating ``os.environ`` (anywhere): environment writes
  leak across trials and workers and are invisible to the manifest.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.checks.index import FunctionInfo, ModuleInfo, ProjectIndex
from repro.checks.lint import Finding

#: Functions whose first argument is executed in pool workers.
WORKER_DISPATCHERS = frozenset({"run_trials", "fork_map"})

#: Modules allowed to keep process-wide state: the pool machinery
#: itself and the metrics plumbing whose snapshots are merged back in
#: task order (``MetricsRegistry.merge_snapshot``).
APPROVED_STATE_MODULES = frozenset(
    {
        "repro.util.caches",
        "repro.util.pool",
        "repro.experiments.parallel",
        "repro.obs.runtime",
        "repro.obs.registry",
    }
)

#: Method calls that mutate their receiver in place.
_MUTATING_METHODS = frozenset(
    {
        "append",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "extend",
        "insert",
        "remove",
        "discard",
        "appendleft",
        "__setitem__",
    }
)

#: Environ methods that mutate the process environment.
_ENVIRON_MUTATORS = frozenset({"update", "setdefault", "pop", "popitem", "clear"})

#: Module prefixes whose iteration order feeds verdicts/audit trails.
_ORDER_SENSITIVE_PREFIXES = ("repro.core", "repro.obs")

_SET_METHODS = frozenset(
    {"difference", "union", "intersection", "symmetric_difference", "copy"}
)


def _is_environ(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "environ"
        and isinstance(node.value, ast.Name)
        and node.value.id == "os"
    )


class RacePass:
    """Runs the RPR6xx determinism analysis over a project index."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.findings: List[Finding] = []

    # -- reporting ---------------------------------------------------------

    def _add(self, module: ModuleInfo, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(
            Finding(
                path=module.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                code=code,
                message=message,
            )
        )

    # -- worker entrypoints ------------------------------------------------

    def worker_roots(self) -> Set[str]:
        """Qualnames executed inside pool workers or engine hooks."""
        roots: Set[str] = set()
        for module in self.index.modules.values():
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                name = (
                    func.id
                    if isinstance(func, ast.Name)
                    else func.attr
                    if isinstance(func, ast.Attribute)
                    else None
                )
                if name not in WORKER_DISPATCHERS or not node.args:
                    continue
                arg = node.args[0]
                if isinstance(arg, ast.Name):
                    qual = self._resolve_function_name(module, arg.id)
                    if qual is not None:
                        roots.add(qual)
        for qual, fn in self.index.functions.items():
            if fn.name.startswith("on_") and fn.is_method:
                roots.add(qual)
        return roots

    def _resolve_function_name(self, module: ModuleInfo, name: str) -> Optional[str]:
        local = f"{module.name}.{name}"
        if local in self.index.functions:
            return local
        target = module.imports.get(name)
        if target is not None and target in self.index.functions:
            return target
        return None

    # -- RPR601: shared mutable state -------------------------------------

    def _module_exempt(self, module: ModuleInfo) -> bool:
        return (
            module.name in APPROVED_STATE_MODULES
            or module.references_cache_registry
        )

    def _local_names(self, fn: FunctionInfo) -> Tuple[Set[str], Set[str]]:
        """(names declared ``global``, names bound locally) in ``fn``."""
        declared: Set[str] = set()
        local: Set[str] = {p.name for p in fn.params}
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Global):
                declared.update(node.names)
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name):
                            local.add(sub.id)
            elif isinstance(node, (ast.For, ast.comprehension)):
                for sub in ast.walk(node.target):
                    if isinstance(sub, ast.Name):
                        local.add(sub.id)
        return declared, local - declared

    def _global_writes(
        self, module: ModuleInfo, fn: FunctionInfo
    ) -> Iterator[Tuple[ast.AST, str, str]]:
        """Yield (node, global name, kind) for writes to module state."""
        declared, local = self._local_names(fn)

        def is_shared(name: str) -> bool:
            if name in declared:
                return True
            return name in module.globals and name not in local

        for node in ast.walk(fn.node):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name) and target.id in declared:
                        yield node, target.id, "rebinding"
                    elif isinstance(target, ast.Subscript) and isinstance(
                        target.value, ast.Name
                    ):
                        if is_shared(target.value.id):
                            yield node, target.value.id, "item assignment"
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    base = target
                    if isinstance(base, ast.Subscript):
                        base = base.value
                    if isinstance(base, ast.Name) and is_shared(base.id):
                        yield node, base.id, "deletion"
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATING_METHODS
                    and isinstance(func.value, ast.Name)
                    and is_shared(func.value.id)
                    and func.value.id in module.globals
                    and module.globals[func.value.id].mutable
                ):
                    yield node, func.value.id, f".{func.attr}() mutation"

    def _check_shared_state(self) -> None:
        roots = self.worker_roots()
        reachable = self.index.reachable_from(roots)
        by_qual: Dict[str, FunctionInfo] = self.index.functions
        for qual in sorted(reachable):
            fn = by_qual[qual]
            module = self.index.modules.get(fn.module)
            if module is None or self._module_exempt(module):
                continue
            for node, name, kind in self._global_writes(module, fn):
                self._add(
                    module,
                    node,
                    "RPR601",
                    f"{fn.qualname} is reachable from a parallel worker "
                    f"entrypoint but performs {kind} of module-level state "
                    f"`{name}`; register it with repro.util.caches."
                    "register_cache_reset or merge results explicitly",
                )

    # -- RPR602: unordered iteration --------------------------------------

    def _set_annotated_params(self, fn: FunctionInfo) -> Set[str]:
        names: Set[str] = set()
        for param in fn.params:
            if param.annotation is None:
                continue
            for sub in ast.walk(param.annotation):
                label = None
                if isinstance(sub, ast.Name):
                    label = sub.id
                elif isinstance(sub, ast.Attribute):
                    label = sub.attr
                elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                    label = sub.value
                if label in ("Set", "FrozenSet", "set", "frozenset", "AbstractSet"):
                    names.add(param.name)
                    break
        return names

    def _is_set_expr(self, node: ast.expr, set_names: Set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in set_names
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
                return self._is_set_expr(func.value, set_names)
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left, set_names) or self._is_set_expr(
                node.right, set_names
            )
        return False

    def _check_unordered_iteration(self) -> None:
        for mod_name in sorted(self.index.modules):
            if not mod_name.startswith(_ORDER_SENSITIVE_PREFIXES):
                continue
            module = self.index.modules[mod_name]
            for fn in module.functions:
                set_names = self._set_annotated_params(fn)
                # Track local names bound to set-producing expressions.
                for node in ast.walk(fn.node):
                    if isinstance(node, ast.Assign):
                        if self._is_set_expr(node.value, set_names):
                            for target in node.targets:
                                if isinstance(target, ast.Name):
                                    set_names.add(target.id)
                for node in ast.walk(fn.node):
                    iters: List[ast.expr] = []
                    if isinstance(node, ast.For):
                        iters.append(node.iter)
                    elif isinstance(
                        node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
                    ):
                        iters.extend(gen.iter for gen in node.generators)
                    for iter_expr in iters:
                        if self._is_set_expr(iter_expr, set_names):
                            self._add(
                                module,
                                iter_expr,
                                "RPR602",
                                f"{fn.qualname} iterates over a set on a "
                                "verdict/audit path; set order is hash-seed "
                                "dependent — wrap the iterable in sorted()",
                            )

    # -- RPR603: environment mutation --------------------------------------

    def _check_environ(self) -> None:
        for mod_name in sorted(self.index.modules):
            module = self.index.modules[mod_name]
            for node in ast.walk(module.tree):
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        if isinstance(target, ast.Subscript) and _is_environ(
                            target.value
                        ):
                            self._add(
                                module,
                                node,
                                "RPR603",
                                "os.environ assignment leaks across trials "
                                "and forked workers; pass configuration "
                                "through task tuples instead",
                            )
                elif isinstance(node, ast.Delete):
                    for target in node.targets:
                        if isinstance(target, ast.Subscript) and _is_environ(
                            target.value
                        ):
                            self._add(
                                module,
                                node,
                                "RPR603",
                                "del os.environ[...] mutates process-wide "
                                "state shared with forked workers",
                            )
                elif isinstance(node, ast.Call):
                    func = node.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr in _ENVIRON_MUTATORS
                        and _is_environ(func.value)
                    ):
                        self._add(
                            module,
                            node,
                            "RPR603",
                            f"os.environ.{func.attr}() mutates process-wide "
                            "state shared with forked workers",
                        )
                    elif (
                        isinstance(func, ast.Attribute)
                        and func.attr == "putenv"
                        and isinstance(func.value, ast.Name)
                        and func.value.id == "os"
                    ):
                        self._add(
                            module,
                            node,
                            "RPR603",
                            "os.putenv() mutates process-wide state shared "
                            "with forked workers",
                        )

    # -- entry -------------------------------------------------------------

    def run(self) -> List[Finding]:
        self._check_shared_state()
        self._check_unordered_iteration()
        self._check_environ()
        return sorted(
            self.findings, key=lambda f: (f.path, f.line, f.col, f.code)
        )
