"""SARIF 2.1.0 export for repro.checks findings.

SARIF (Static Analysis Results Interchange Format) is what code-scanning
UIs ingest; emitting it lets CI upload the deep pass's findings as a
reviewable artifact.  Only the small, stable core of the spec is
produced: one run, one driver, one result per finding with a single
physical location.

Because the container has no SARIF toolchain to validate against,
:func:`validate_sarif` re-implements the handful of structural
invariants the consumers we target actually rely on; CI runs it over
the emitted file so a malformed document fails the build rather than
uploading garbage.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.checks.lint import Finding, LintRule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

TOOL_NAME = "repro.checks"
TOOL_URI = "https://example.invalid/repro-checks"


def to_sarif(
    findings: Sequence[Finding], rules: Sequence[LintRule], tool_version: str = "2.0.0"
) -> Dict[str, Any]:
    """Build a SARIF 2.1.0 document from findings + the rule catalogue."""
    rule_ids = [rule.code for rule in rules]
    rule_index = {code: i for i, code in enumerate(rule_ids)}
    results: List[Dict[str, Any]] = []
    for finding in findings:
        result: Dict[str, Any] = {
            "ruleId": finding.code,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        if finding.code in rule_index:
            result["ruleIndex"] = rule_index[finding.code]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": TOOL_URI,
                        "version": tool_version,
                        "rules": [
                            {
                                "id": rule.code,
                                "shortDescription": {"text": rule.summary},
                                "defaultConfiguration": {"level": "error"},
                            }
                            for rule in rules
                        ],
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }


def write_sarif(path: str, document: Dict[str, Any]) -> None:
    """Serialize a SARIF document to disk (trailing newline, sorted keys)."""
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def validate_sarif(document: Any) -> List[str]:
    """Structural validation; returns a list of problems (empty = valid)."""
    problems: List[str] = []
    if not isinstance(document, dict):
        return ["document is not a JSON object"]
    if document.get("version") != SARIF_VERSION:
        problems.append(f"version must be {SARIF_VERSION!r}")
    runs = document.get("runs")
    if not isinstance(runs, list) or not runs:
        problems.append("runs must be a non-empty array")
        return problems
    for run_index, run in enumerate(runs):
        label = f"runs[{run_index}]"
        if not isinstance(run, dict):
            problems.append(f"{label} is not an object")
            continue
        driver = run.get("tool", {}).get("driver") if isinstance(run.get("tool"), dict) else None
        if not isinstance(driver, dict) or not driver.get("name"):
            problems.append(f"{label}.tool.driver.name is required")
            continue
        rule_ids = set()
        for rule in driver.get("rules", []):
            if not isinstance(rule, dict) or not rule.get("id"):
                problems.append(f"{label}: rule without an id")
                continue
            rule_ids.add(rule["id"])
        results = run.get("results")
        if not isinstance(results, list):
            problems.append(f"{label}.results must be an array")
            continue
        for i, result in enumerate(results):
            rlabel = f"{label}.results[{i}]"
            if not isinstance(result, dict):
                problems.append(f"{rlabel} is not an object")
                continue
            rule_id = result.get("ruleId")
            if not rule_id:
                problems.append(f"{rlabel}.ruleId is required")
            elif rule_ids and rule_id not in rule_ids:
                problems.append(
                    f"{rlabel}.ruleId {rule_id!r} is not in the driver's rules"
                )
            message = result.get("message")
            if not isinstance(message, dict) or not isinstance(
                message.get("text"), str
            ):
                problems.append(f"{rlabel}.message.text is required")
            for j, location in enumerate(result.get("locations", [])):
                phys = (
                    location.get("physicalLocation")
                    if isinstance(location, dict)
                    else None
                )
                if not isinstance(phys, dict):
                    problems.append(
                        f"{rlabel}.locations[{j}].physicalLocation is required"
                    )
                    continue
                artifact = phys.get("artifactLocation")
                if not isinstance(artifact, dict) or not artifact.get("uri"):
                    problems.append(
                        f"{rlabel}.locations[{j}]: artifactLocation.uri is required"
                    )
                region = phys.get("region")
                if isinstance(region, dict):
                    start = region.get("startLine")
                    if not isinstance(start, int) or start < 1:
                        problems.append(
                            f"{rlabel}.locations[{j}]: region.startLine must be >= 1"
                        )
    return problems
