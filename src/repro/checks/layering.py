"""Deep pass 3 — architectural layering enforcement (rules RPR7xx).

The package layering is a DAG the reproduction's determinism and
auditability guarantees lean on: detectors judge senders *only* through
what a real monitor could observe, and the observation plane never
feeds back into the simulation.  Those properties are invisible to unit
tests — a single convenience import can quietly destroy them — so this
pass checks the declared DAG on every run:

.. code-block:: text

    util < geometry/traffic < phy/topology < mac < faults < sim
         < routing < core < experiments < analysis/serve < cli

* **RPR701** — a module imports from a *higher* layer (module scope;
  ``if TYPE_CHECKING:`` imports and lazy function-scoped imports of
  the cross-cutting planes ``repro.obs``/``repro.checks`` are allowed,
  since those exist to be pluggable from anywhere).
* **RPR702** — ``repro.core`` (detectors/verdicts) touches a private
  attribute of the Medium.  Detectors must consume the public
  observation API; reaching into ``medium._*`` would grant them
  channel-state omniscience the paper's monitor does not have.
* **RPR703** — ``repro.obs`` (the observation plane) assigns to or
  mutates simulation state (``engine``/``medium``/``network``/
  ``mac``).  Observers are read-only by contract; a writing observer
  makes metrics collection perturb the run it measures.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from repro.checks.index import ModuleInfo, ProjectIndex
from repro.checks.lint import Finding

#: Package -> layer rank.  Imports must flow from higher ranks to
#: lower ones; same-rank packages may import each other.
LAYER_RANKS: Dict[str, int] = {
    "repro.util": 0,
    "repro.geometry": 1,
    "repro.traffic": 1,
    "repro.phy": 2,
    "repro.topology": 2,
    "repro.mac": 3,
    "repro.faults": 4,
    "repro.sim": 5,
    "repro.routing": 6,
    "repro.obs": 6,
    "repro.checks": 6,
    "repro.core": 7,
    "repro.experiments": 8,
    "repro.analysis": 9,
    "repro.serve": 9,
    "repro.cli": 10,
}

#: Cross-cutting planes: importable from any layer, but only lazily
#: (function scope) when the importer sits below them.
CROSS_CUTTING = ("repro.obs", "repro.checks")

#: Names conventionally bound to live simulation state.
_SIM_STATE_NAMES = frozenset({"engine", "medium", "network", "mac", "sim"})


def layer_of(module_name: str) -> Optional[int]:
    """Layer rank of a dotted module name (None when outside the DAG)."""
    parts = module_name.split(".")
    for depth in (2, 1):
        prefix = ".".join(parts[:depth])
        if prefix in LAYER_RANKS:
            return LAYER_RANKS[prefix]
    if module_name == "repro" or module_name.startswith("repro."):
        # repro/__init__ and any future top-level module: treat like cli.
        return LAYER_RANKS["repro.cli"] if module_name != "repro" else None
    return None


def _package_of(module_name: str) -> str:
    parts = module_name.split(".")
    return ".".join(parts[:2]) if len(parts) >= 2 else module_name


def _receiver_name(node: ast.expr) -> Optional[str]:
    """`medium` for ``medium.x`` and ``self.medium.x`` receivers."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        if node.value.id == "self":
            return node.attr
    return None


class LayeringPass:
    """Runs the RPR7xx layering analysis over a project index."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.findings: List[Finding] = []

    def _add(self, module: ModuleInfo, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(
            Finding(
                path=module.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                code=code,
                message=message,
            )
        )

    # -- RPR701 ------------------------------------------------------------

    def _check_import_dag(self) -> None:
        for mod_name in sorted(self.index.modules):
            module = self.index.modules[mod_name]
            src_rank = layer_of(mod_name)
            if src_rank is None:
                continue
            src_pkg = _package_of(mod_name)
            for edge in module.import_edges:
                if edge.type_checking:
                    continue
                dst_rank = layer_of(edge.target)
                if dst_rank is None or dst_rank <= src_rank:
                    continue
                dst_pkg = _package_of(edge.target)
                if dst_pkg == src_pkg:
                    continue
                if dst_pkg in CROSS_CUTTING and edge.scope == "function":
                    continue  # lazy plug-in of a cross-cutting plane
                self._add(
                    module,
                    _EdgeNode(edge.lineno, edge.col),
                    "RPR701",
                    f"layering violation: {src_pkg} (layer {src_rank}) "
                    f"imports {edge.target} ({dst_pkg} is layer "
                    f"{dst_rank}); dependencies must flow "
                    "util -> geometry/traffic -> phy/topology -> mac -> "
                    "faults -> sim -> routing -> core -> experiments -> "
                    "analysis -> cli",
                )

    # -- RPR702 ------------------------------------------------------------

    def _check_medium_privates(self) -> None:
        for mod_name in sorted(self.index.modules):
            if not mod_name.startswith("repro.core"):
                continue
            module = self.index.modules[mod_name]
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Attribute):
                    continue
                if not node.attr.startswith("_") or node.attr.startswith("__"):
                    continue
                receiver = _receiver_name(node.value)
                if receiver == "medium":
                    self._add(
                        module,
                        node,
                        "RPR702",
                        f"detector code reads Medium internals "
                        f"(medium.{node.attr}); monitors may only use the "
                        "public observation API — private channel state is "
                        "omniscience the paper's monitor does not have",
                    )

    # -- RPR703 ------------------------------------------------------------

    def _check_obs_read_only(self) -> None:
        for mod_name in sorted(self.index.modules):
            if not mod_name.startswith("repro.obs"):
                continue
            module = self.index.modules[mod_name]
            for node in ast.walk(module.tree):
                targets: List[ast.expr] = []
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        list(node.targets)
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                elif isinstance(node, ast.Delete):
                    targets = list(node.targets)
                for target in targets:
                    base = target
                    if isinstance(base, ast.Subscript):
                        base = base.value
                    if not isinstance(base, ast.Attribute):
                        continue
                    receiver = _receiver_name(base.value)
                    if receiver in _SIM_STATE_NAMES:
                        self._add(
                            module,
                            node,
                            "RPR703",
                            f"observation-plane code writes simulation state "
                            f"({receiver}.{base.attr}); repro.obs is "
                            "read-only by contract — a writing observer "
                            "perturbs the run it measures",
                        )

    # -- entry -------------------------------------------------------------

    def run(self) -> List[Finding]:
        self._check_import_dag()
        self._check_medium_privates()
        self._check_obs_read_only()
        return sorted(
            self.findings, key=lambda f: (f.path, f.line, f.col, f.code)
        )


class _EdgeNode:
    """Minimal location carrier for import-edge findings."""

    def __init__(self, lineno: int, col_offset: int) -> None:
        self.lineno = lineno
        self.col_offset = col_offset
