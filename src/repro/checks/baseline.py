"""Baseline suppression for the deep analysis.

A deep pass adopted into an existing codebase needs a way to say "this
finding is known and intentional" without sprinkling inline pragmas
through source files.  The baseline file (``checks_baseline.json`` at
the repo root) is a checked-in list of suppressed findings where
**every entry carries a human justification** — an empty or missing
justification fails loading, so a suppression can never be silent.

Keys deliberately omit line numbers: unrelated edits move code, and a
baseline that churns on every edit trains people to regenerate it
blindly.  A key is ``code:path:message``, which survives line drift but
breaks (correctly) when the finding itself changes.

Stale entries — baselined findings the analyzer no longer reports —
are surfaced as warnings so the file shrinks as debt is paid down.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.checks.lint import Finding

#: Default baseline location, relative to the working directory.
DEFAULT_BASELINE = "checks_baseline.json"

BASELINE_VERSION = 1


def baseline_key(finding: Finding) -> str:
    """Line-independent stable identity of a finding."""
    path = finding.path.replace("\\", "/")
    return f"{finding.code}:{path}:{finding.message}"


class BaselineError(ValueError):
    """The baseline file is malformed or carries an empty justification."""


def load_baseline(path: str) -> Dict[str, str]:
    """Load ``key -> justification``; missing file means empty baseline."""
    file = Path(path)
    if not file.exists():
        return {}
    try:
        raw = json.loads(file.read_text())
    except json.JSONDecodeError as exc:
        raise BaselineError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(raw, dict) or raw.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"{path}: expected an object with version == {BASELINE_VERSION}"
        )
    entries = raw.get("entries")
    if not isinstance(entries, list):
        raise BaselineError(f"{path}: entries must be an array")
    baseline: Dict[str, str] = {}
    for i, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise BaselineError(f"{path}: entries[{i}] is not an object")
        key = entry.get("key")
        justification = entry.get("justification")
        if not isinstance(key, str) or not key:
            raise BaselineError(f"{path}: entries[{i}] is missing a key")
        if not isinstance(justification, str) or not justification.strip():
            raise BaselineError(
                f"{path}: entries[{i}] ({key}) has no justification — every "
                "suppression must say why it is intentional"
            )
        if justification.strip().upper().startswith("TODO"):
            raise BaselineError(
                f"{path}: entries[{i}] ({key}) still carries the TODO "
                "placeholder — replace it with a real justification"
            )
        if key in baseline:
            raise BaselineError(f"{path}: duplicate baseline key {key}")
        baseline[key] = justification
    return baseline


def apply_baseline(
    findings: Sequence[Finding], baseline: Dict[str, str]
) -> Tuple[List[Finding], List[Finding], List[str]]:
    """Split findings into (new, suppressed) and report stale keys."""
    new: List[Finding] = []
    suppressed: List[Finding] = []
    used = set()
    for finding in findings:
        key = baseline_key(finding)
        if key in baseline:
            suppressed.append(finding)
            used.add(key)
        else:
            new.append(finding)
    stale = sorted(set(baseline) - used)
    return new, suppressed, stale


def render_baseline(findings: Sequence[Finding]) -> str:
    """Serialize findings as a baseline file body (justifications TODO)."""
    entries = [
        {
            "key": baseline_key(finding),
            "justification": "TODO: justify or fix",
        }
        for finding in sorted(
            findings, key=lambda f: (f.path, f.code, f.message)
        )
    ]
    # One finding can map to one key (e.g. same message on two lines);
    # keep the first.
    seen = set()
    unique = []
    for entry in entries:
        if entry["key"] in seen:
            continue
        seen.add(entry["key"])
        unique.append(entry)
    return json.dumps(
        {"version": BASELINE_VERSION, "entries": unique}, indent=2
    ) + "\n"
