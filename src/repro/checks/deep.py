"""The deep analysis orchestrator: ``python -m repro.checks --deep``.

Builds the whole-program :class:`~repro.checks.index.ProjectIndex` once
and runs the three cross-module passes over it:

1. :mod:`repro.checks.unitflow` — RPR5xx unit-flow typing;
2. :mod:`repro.checks.races` — RPR6xx determinism races;
3. :mod:`repro.checks.layering` — RPR7xx layering enforcement.

The fast single-file lint (:mod:`repro.checks.lint`) stays separate so
pre-commit can run it in milliseconds; ``--deep`` runs both.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.checks.index import ProjectIndex
from repro.checks.layering import LayeringPass
from repro.checks.lint import RULES, Finding, LintRule
from repro.checks.races import RacePass
from repro.checks.unitflow import UnitFlowPass

#: Rules reported only by the deep (whole-program) analysis.
DEEP_RULES: Tuple[LintRule, ...] = (
    LintRule("RPR501", "arithmetic or comparison mixing two different units"),
    LintRule("RPR502", "call argument whose unit differs from the parameter's"),
    LintRule("RPR503", "float-producing expression bound to a slot-typed target"),
    LintRule("RPR504", "binding or return that violates its declared unit"),
    LintRule(
        "RPR601",
        "module-level mutable state written on a parallel-worker path "
        "without a registered reset/merge",
    ),
    LintRule("RPR602", "unsorted set iteration on a verdict/audit path"),
    LintRule("RPR603", "os.environ mutation (process-wide state leak)"),
    LintRule("RPR701", "import edge that violates the package layer DAG"),
    LintRule("RPR702", "detector code accessing Medium internals"),
    LintRule("RPR703", "observation-plane code writing simulation state"),
)

ALL_RULES: Tuple[LintRule, ...] = RULES + DEEP_RULES


def run_deep(
    paths: Sequence[str], select: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Run the three deep passes over all files under ``paths``."""
    index = ProjectIndex.build(paths)
    return run_deep_on_index(index, select=select)


def run_deep_on_index(
    index: ProjectIndex, select: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Run the three deep passes over a pre-built index."""
    findings: List[Finding] = []
    findings.extend(UnitFlowPass(index).run())
    findings.extend(RacePass(index).run())
    findings.extend(LayeringPass(index).run())
    if select:
        wanted = set(select)
        findings = [f for f in findings if f.code in wanted]
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.code))
