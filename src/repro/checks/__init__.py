"""Repo-native correctness tooling.

Two halves:

* :mod:`repro.checks.lint` — an AST-based static pass enforcing the
  repo's determinism and slot-exactness contracts (run it with
  ``python -m repro.checks src/``).
* :mod:`repro.checks.invariants` — a simulation listener that verifies,
  while a run executes, the event-ordering and back-off invariants the
  engine documents (install it with the CLI ``--check`` flag or the
  ``REPRO_CHECK=1`` environment variable).
"""

from __future__ import annotations

from repro.checks.lint import Finding, LintRule, RULES, lint_paths, lint_source
from repro.checks.runtime import (
    disable_runtime_checks,
    enable_runtime_checks,
    runtime_checks_enabled,
)

__all__ = [
    "Finding",
    "LintRule",
    "RULES",
    "lint_paths",
    "lint_source",
    "enable_runtime_checks",
    "disable_runtime_checks",
    "runtime_checks_enabled",
]
