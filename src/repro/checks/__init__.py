"""Repo-native correctness tooling.

Three halves:

* :mod:`repro.checks.lint` — a fast AST-based single-file pass
  enforcing the repo's determinism and slot-exactness contracts (run
  it with ``python -m repro.checks src/``).
* :mod:`repro.checks.deep` — the whole-program analysis (``--deep``):
  builds a project index + call graph (:mod:`repro.checks.index`) and
  runs unit-flow typing (:mod:`repro.checks.unitflow`), determinism
  race detection (:mod:`repro.checks.races`) and layering enforcement
  (:mod:`repro.checks.layering`), with baseline suppression
  (:mod:`repro.checks.baseline`) and SARIF export
  (:mod:`repro.checks.sarif`).
* :mod:`repro.checks.invariants` — a simulation listener that verifies,
  while a run executes, the event-ordering and back-off invariants the
  engine documents (install it with the CLI ``--check`` flag or the
  ``REPRO_CHECK=1`` environment variable).
"""

from __future__ import annotations

from repro.checks.deep import ALL_RULES, DEEP_RULES, run_deep
from repro.checks.index import ProjectIndex
from repro.checks.lint import Finding, LintRule, RULES, lint_paths, lint_source
from repro.checks.runtime import (
    disable_runtime_checks,
    enable_runtime_checks,
    runtime_checks_enabled,
)

__all__ = [
    "ALL_RULES",
    "DEEP_RULES",
    "Finding",
    "LintRule",
    "ProjectIndex",
    "RULES",
    "lint_paths",
    "lint_source",
    "run_deep",
    "enable_runtime_checks",
    "disable_runtime_checks",
    "runtime_checks_enabled",
]
