"""Process-wide switch for the runtime invariant checker.

The simulation engine consults this module at construction time; when
enabled it installs a :class:`repro.checks.invariants.InvariantChecker`
on itself.  Enable it either programmatically (the CLI ``--check`` flag
calls :func:`enable_runtime_checks`) or via the ``REPRO_CHECK``
environment variable, which makes any entry point — the examples, the
benchmarks, ad-hoc scripts — checkable without code changes.

Kept free of imports from the rest of the package so the engine can
depend on it without cycles.
"""

from __future__ import annotations

import os

_TRUTHY = frozenset({"1", "true", "yes", "on"})

_enabled = False


def enable_runtime_checks() -> None:
    """Install an invariant checker on every engine built from now on."""
    global _enabled
    _enabled = True


def disable_runtime_checks() -> None:
    """Stop auto-installing invariant checkers (env var still wins)."""
    global _enabled
    _enabled = False


def runtime_checks_enabled() -> bool:
    """True if new engines should self-install an invariant checker."""
    if _enabled:
        return True
    return os.environ.get("REPRO_CHECK", "").strip().lower() in _TRUTHY
