"""AST-based static analysis enforcing the simulator's contracts.

The simulator's correctness rests on two properties that ordinary
linters cannot check:

*Determinism.*  Every random draw must flow through the seeded stream
machinery in :mod:`repro.util.rng` (or the verifiable PRS built on it).
A single ``import random`` or ``np.random.default_rng()`` call anywhere
else silently breaks bit-for-bit reproducibility.  The same goes for
wall-clock reads (``time.time()``): simulation time is the integer slot
clock, never the host clock.

*Slot-exactness.*  Slot timestamps are integers.  Mixing float literals
into slot arithmetic (``slot + 0.5``) or comparing slots against float
literals (``slot == 3.0``) re-introduces the floating-point event-time
bugs the integer clock exists to prevent.

The pass also enforces two general hygiene rules (mutable default
arguments, bare ``except:``) and requires type annotations on every
public function in ``core/``, ``mac/``, ``sim/`` and ``obs/`` — the
modules whose interfaces the engine and detector contract on.

Wall-clock reads have their own allowlist: only ``obs/profile.py`` (the
throughput profiler) may touch the host clock.  ``util/rng.py`` stays
exempt from the RNG rules but *not* from RPR003 — seeding from the
clock would be exactly the determinism bug the rule exists to prevent.
``tests/test_checks_lint.py`` proves the allowlist exact: every module
that reads the clock is on it, and every module on it reads the clock.

Rules
-----

==========  ============================================================
``RPR001``  ``import random`` outside ``util/rng.py``
``RPR002``  ``numpy.random`` / ``np.random`` use outside ``util/rng.py``
``RPR003``  wall-clock read (``time.time`` etc.) outside the allowlist
            (``obs/profile.py``)
``RPR101``  float literal in slot arithmetic (``+ - // %``)
``RPR102``  ``==`` / ``!=`` between a slot value and a float literal
``RPR201``  mutable default argument
``RPR202``  bare ``except:``
``RPR301``  public function in ``core/``/``mac/``/``sim/``/``obs/``
            missing type annotations
``RPR401``  module-level ``*cache*`` assignment in a module that never
            references ``register_cache_reset`` (``util/caches.py`` is
            the registry itself and exempt)
==========  ============================================================
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple, Union

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass(frozen=True)
class LintRule:
    """One static rule: a stable code plus a human description."""

    code: str
    summary: str


RULES: Tuple[LintRule, ...] = (
    LintRule("RPR001", "import of the stdlib `random` module outside util/rng.py"),
    LintRule("RPR002", "use of numpy.random outside util/rng.py"),
    LintRule(
        "RPR003",
        "wall-clock read (time.time & friends) outside the obs/profile.py allowlist",
    ),
    LintRule("RPR101", "float literal in slot arithmetic (+ - // %)"),
    LintRule("RPR102", "==/!= comparison between a slot value and a float literal"),
    LintRule("RPR201", "mutable default argument"),
    LintRule("RPR202", "bare except: clause"),
    LintRule("RPR301", "public function in core/, mac/ or sim/ missing annotations"),
    LintRule(
        "RPR401",
        "module-level cache without a reset hook registered via "
        "repro.util.caches.register_cache_reset",
    ),
)

RULE_CODES: Tuple[str, ...] = tuple(rule.code for rule in RULES)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


#: Files allowed to touch numpy.random / the stdlib random module.
_DETERMINISM_EXEMPT_SUFFIXES: Tuple[str, ...] = ("util/rng.py",)

#: Files allowed to read the host clock (RPR003).  Exactly the
#: throughput profiler — a test asserts this list matches reality.
WALL_CLOCK_ALLOWLIST: Tuple[str, ...] = ("obs/profile.py",)

#: Package subtrees whose public functions must be fully annotated.
_ANNOTATION_SCOPES: Tuple[str, ...] = (
    "core",
    "experiments",
    "geometry",
    "mac",
    "obs",
    "phy",
    "routing",
    "serve",
    "sim",
)

#: Module-level names treated as process-global caches (RPR401).
_CACHE_NAME = re.compile(r"cache", re.IGNORECASE)

#: The cache-reset registry itself, exempt from RPR401.
_CACHE_REGISTRY_SUFFIXES: Tuple[str, ...] = ("util/caches.py",)

#: Identifiers that denote integer slot timestamps or slot counts.
_SLOT_NAME = re.compile(r"(?:^|_)slots?$")

#: Dotted call targets that read the host clock.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "date.today",
        "datetime.date.today",
    }
)

#: Ops in which a float literal poisons integer slot math.
_INTEGER_SLOT_OPS = (ast.Add, ast.Sub, ast.FloorDiv, ast.Mod)

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set", "bytearray"})


def _normalized(path: str) -> str:
    return path.replace("\\", "/")


def _determinism_exempt(path: str) -> bool:
    norm = _normalized(path)
    return any(norm.endswith(suffix) for suffix in _DETERMINISM_EXEMPT_SUFFIXES)


def _wall_clock_exempt(path: str) -> bool:
    norm = _normalized(path)
    return any(norm.endswith(suffix) for suffix in WALL_CLOCK_ALLOWLIST)


def _annotation_scope(path: str) -> bool:
    """True if ``path`` lies in a subtree whose API must be annotated.

    The scope is recognized purely from the path string (``.../repro/
    core/...`` etc. or a bare ``core/...`` prefix) so tests can lint
    in-memory sources under synthetic paths.
    """
    parts = _normalized(path).split("/")
    if "repro" in parts:
        parts = parts[parts.index("repro") + 1 :]
    return bool(parts) and parts[0] in _ANNOTATION_SCOPES


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and type(node.value) is float:
        return True
    # A negated float literal (-0.5) parses as UnaryOp(USub, Constant).
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_float_literal(node.operand)
    return False


def _mentions_slot(node: ast.AST) -> bool:
    """True if any identifier inside ``node`` names a slot quantity."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and _SLOT_NAME.search(sub.id):
            return True
        if isinstance(sub, ast.Attribute) and _SLOT_NAME.search(sub.attr):
            return True
    return False


class _LintVisitor(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: List[Finding] = []
        self._exempt = _determinism_exempt(path)
        self._clock_exempt = _wall_clock_exempt(path)
        self._annotations_required = _annotation_scope(path)
        # Stack of "class" / "function" markers for nesting decisions.
        self._scope: List[str] = []

    # -- plumbing ----------------------------------------------------------

    def _add(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                code=code,
                message=message,
            )
        )

    # -- determinism (RPR001-003) -----------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        if not self._exempt:
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root == "random":
                    self._add(
                        node,
                        "RPR001",
                        "import of stdlib `random`: draw from a seeded "
                        "repro.util.rng.RngStream instead",
                    )
                if alias.name == "numpy.random" or alias.name.startswith(
                    "numpy.random."
                ):
                    self._add(
                        node,
                        "RPR002",
                        "import of numpy.random: only util/rng.py may touch "
                        "numpy's RNG machinery",
                    )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if (
            not self._clock_exempt
            and node.level == 0
            and node.module == "time"
            and any(
                alias.name in ("time", "time_ns", "monotonic", "perf_counter")
                for alias in node.names
            )
        ):
            self._add(
                node,
                "RPR003",
                "import of a wall-clock reader: simulation time is the "
                "integer slot clock",
            )
        if not self._exempt and node.level == 0 and node.module is not None:
            if node.module == "random" or node.module.startswith("random."):
                self._add(
                    node,
                    "RPR001",
                    "import from stdlib `random`: draw from a seeded "
                    "repro.util.rng.RngStream instead",
                )
            if node.module == "numpy.random" or node.module.startswith(
                "numpy.random."
            ):
                self._add(
                    node,
                    "RPR002",
                    "import from numpy.random: only util/rng.py may touch "
                    "numpy's RNG machinery",
                )
            if node.module == "numpy" and any(
                alias.name == "random" for alias in node.names
            ):
                self._add(
                    node,
                    "RPR002",
                    "import of numpy.random: only util/rng.py may touch "
                    "numpy's RNG machinery",
                )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            not self._exempt
            and node.attr == "random"
            and isinstance(node.value, ast.Name)
            and node.value.id in ("np", "numpy")
        ):
            self._add(
                node,
                "RPR002",
                f"use of {node.value.id}.random: only util/rng.py may touch "
                "numpy's RNG machinery",
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if not self._clock_exempt:
            dotted = _dotted_name(node.func)
            if dotted is not None and dotted in _WALL_CLOCK_CALLS:
                self._add(
                    node,
                    "RPR003",
                    f"wall-clock read {dotted}(): simulation time is the "
                    "integer slot clock",
                )
        self.generic_visit(node)

    # -- slot-exactness (RPR101-102) --------------------------------------

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, _INTEGER_SLOT_OPS):
            pairs = ((node.left, node.right), (node.right, node.left))
            for literal, other in pairs:
                if _is_float_literal(literal) and _mentions_slot(other):
                    self._add(
                        node,
                        "RPR101",
                        "float literal in slot arithmetic: slot timestamps "
                        "are integers (convert explicitly at the boundary)",
                    )
                    break
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if (
            isinstance(node.op, _INTEGER_SLOT_OPS)
            and _mentions_slot(node.target)
            and _is_float_literal(node.value)
        ):
            self._add(
                node,
                "RPR101",
                "float literal in slot arithmetic: slot timestamps are "
                "integers (convert explicitly at the boundary)",
            )
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for literal, other in ((left, right), (right, left)):
                if _is_float_literal(literal) and _mentions_slot(other):
                    self._add(
                        node,
                        "RPR102",
                        "==/!= between a slot value and a float literal: "
                        "slot comparisons must stay integral",
                    )
                    break
        self.generic_visit(node)

    # -- hygiene (RPR201-202) ---------------------------------------------

    def _check_defaults(self, node: ast.AST, args: ast.arguments) -> None:
        for default in (*args.defaults, *args.kw_defaults):
            if default is None:
                continue
            mutable = isinstance(default, _MUTABLE_LITERALS) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CONSTRUCTORS
                and not default.args
                and not default.keywords
            )
            if mutable:
                self._add(
                    default,
                    "RPR201",
                    "mutable default argument: use None and create the "
                    "object inside the function",
                )

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._add(
                node,
                "RPR202",
                "bare except: catches SystemExit/KeyboardInterrupt; name "
                "the exceptions you can actually handle",
            )
        self.generic_visit(node)

    # -- annotations (RPR301) ---------------------------------------------

    def _check_annotations(self, node: _FunctionNode) -> None:
        """Require annotations on a public function's signature."""
        name = node.name
        if name.startswith("_"):
            return  # private helpers and dunders are exempt
        if "function" in self._scope:
            return  # nested functions are implementation detail
        in_class = bool(self._scope) and self._scope[-1] == "class"
        args = node.args
        positional = [*args.posonlyargs, *args.args]
        if in_class and positional and positional[0].arg in ("self", "cls"):
            positional = positional[1:]
        missing: List[str] = []
        for arg in (*positional, *args.kwonlyargs):
            if arg.annotation is None:
                missing.append(arg.arg)
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append("*" + args.vararg.arg)
        if args.kwarg is not None and args.kwarg.annotation is None:
            missing.append("**" + args.kwarg.arg)
        if node.returns is None:
            missing.append("return")
        if missing:
            self._add(
                node,
                "RPR301",
                f"public function {name}() missing type annotations "
                f"({', '.join(missing)})",
            )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _visit_function(self, node: _FunctionNode) -> None:
        self._check_defaults(node, node.args)
        if self._annotations_required:
            self._check_annotations(node)
        self._scope.append("function")
        self.generic_visit(node)
        self._scope.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._scope.append("class")
        self.generic_visit(node)
        self._scope.pop()

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node, node.args)
        self._scope.append("function")
        self.generic_visit(node)
        self._scope.pop()


def _cache_registry_exempt(path: str) -> bool:
    norm = _normalized(path)
    return any(norm.endswith(suffix) for suffix in _CACHE_REGISTRY_SUFFIXES)


def _module_cache_findings(tree: ast.Module, path: str) -> List[Finding]:
    """RPR401: module-level caches must register a reset hook.

    A module-global named ``*cache*`` survives across tests unless it is
    rewound; any module assigning one must reference
    ``register_cache_reset`` somewhere (imports count), which the
    autouse test fixture then drives via ``reset_all_caches()``.
    """
    if _cache_registry_exempt(path):
        return []
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and node.id == "register_cache_reset":
            return []
        if isinstance(node, ast.Attribute) and node.attr == "register_cache_reset":
            return []
        if isinstance(node, (ast.Import, ast.ImportFrom)) and any(
            alias.name == "register_cache_reset" for alias in node.names
        ):
            return []
    findings: List[Finding] = []
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            targets = [t for t in stmt.targets if isinstance(t, ast.Name)]
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            targets = [stmt.target]
        else:
            continue
        for target in targets:
            # ALL_CAPS names are constants by convention, not caches.
            if _CACHE_NAME.search(target.id) and not target.id.isupper():
                findings.append(
                    Finding(
                        path=path,
                        line=stmt.lineno,
                        col=stmt.col_offset,
                        code="RPR401",
                        message=(
                            f"module-level cache `{target.id}` has no reset "
                            "hook: register one with repro.util.caches."
                            "register_cache_reset so the test suite can "
                            "rewind it"
                        ),
                    )
                )
    return findings


def lint_source(
    source: str, path: str, select: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Lint one source string as if it lived at ``path``.

    ``path`` drives the path-scoped rules (determinism exemptions, the
    annotation requirement), so callers can lint synthetic sources.
    ``select`` restricts the returned findings to the given rule codes.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                code="RPR000",
                message=f"syntax error: {exc.msg}",
            )
        ]
    visitor = _LintVisitor(path)
    visitor.visit(tree)
    findings = visitor.findings + _module_cache_findings(tree, path)
    if select is not None:
        wanted = frozenset(select)
        findings = [f for f in findings if f.code in wanted]
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.code))


def iter_python_files(paths: Iterable[str]) -> List[Path]:
    """Expand files/directories into a sorted, deduplicated .py file list."""
    seen = set()
    result: List[Path] = []
    for raw in paths:
        root = Path(raw)
        if root.is_dir():
            candidates = sorted(root.rglob("*.py"))
        else:
            candidates = [root]
        for candidate in candidates:
            parts = candidate.parts
            if any(p.startswith(".") or p.endswith(".egg-info") for p in parts):
                continue
            if "__pycache__" in parts:
                continue
            key = str(candidate)
            if key not in seen:
                seen.add(key)
                result.append(candidate)
    return result


def lint_paths(
    paths: Iterable[str], select: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Lint every Python file under the given files/directories."""
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_source(path.read_text(), str(path), select=select))
    return findings
