"""Per-node IEEE 802.11 DCF MAC entity.

Owns the interface queue, the verifiable PRS, the (possibly misbehaving)
back-off policy, and the retransmission state machine.  The simulation
engine drives it: the entity decides *what* to do (draw a back-off,
build an RTS, retry or drop), the engine decides *when* (channel state,
event ordering).

Announcement-cheating knobs (``announce_attempt_always_one``,
``announce_stale_offset``) let experiments exercise the paper's
*deterministic* detectors: a node that lies about its attempt number is
exposed by the repeated MD5 digest, and one that reuses a sequence
offset is exposed by the offset-monotonicity check.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.mac.backoff import BackoffScheduler
from repro.mac.constants import DEFAULT_TIMING
from repro.mac.digest import data_digest
from repro.mac.frames import MAX_ATTEMPT_FIELD, RtsFrame
from repro.mac.misbehavior import BackoffPolicy, HonestBackoff
from repro.mac.prng import VerifiableBackoffPrng
from repro.mac.constants import MacTiming
from repro.traffic.queue import DropTailQueue, Packet

if TYPE_CHECKING:  # pragma: no cover - import-time only
    from repro.mac.adversary import AnnouncementPolicy


class MacState(enum.Enum):
    """Coarse MAC state as seen by the engine."""

    IDLE = "idle"               # nothing to send
    CONTENDING = "contending"   # back-off pending (counting or frozen)
    TRANSMITTING = "transmitting"


@dataclass
class MacStats:
    """Counters for one node's MAC activity."""

    attempts: int = 0
    successes: int = 0
    failures: int = 0
    drops: int = 0
    backoffs_drawn: int = 0
    total_dictated_backoff: int = 0
    total_actual_backoff: int = 0


@dataclass
class _CurrentAttempt:
    """Book-keeping for the in-flight (offset, attempt) draw."""

    offset: int
    attempt: int
    dictated: int
    actual: int


class DcfMac:
    """The DCF MAC entity for one node."""

    def __init__(
        self,
        node_id: int,
        timing: Optional[MacTiming] = None,
        policy: Optional[BackoffPolicy] = None,
        queue_capacity: int = 50,
        announce_attempt_always_one: bool = False,
        announce_stale_offset: bool = False,
        announcement: "Optional[AnnouncementPolicy]" = None,
    ) -> None:
        self.node_id = node_id
        self.timing = timing if timing is not None else DEFAULT_TIMING
        self.policy = policy if policy is not None else HonestBackoff()
        self.prng = VerifiableBackoffPrng(
            node_id, cw_min=self.timing.cw_min, cw_max=self.timing.cw_max
        )
        self.queue = DropTailQueue(queue_capacity)
        self.backoff = BackoffScheduler()
        self.stats = MacStats()
        self.announce_attempt_always_one = announce_attempt_always_one
        self.announce_stale_offset = announce_stale_offset
        #: optional announcement rewrite (repro.mac.adversary); applied
        #: to every built RTS after the legacy announce knobs.
        self.announcement = announcement

        self._next_offset = 0       # next unconsumed PRS offset
        self._attempt = 1           # 1-based attempt for the head packet
        #: the in-flight _CurrentAttempt
        self._current: Optional[_CurrentAttempt] = None
        self._transmitting = False

    # -- state ------------------------------------------------------------

    @property
    def state(self) -> MacState:
        if self._transmitting:
            return MacState.TRANSMITTING
        if self.backoff.active:
            return MacState.CONTENDING
        return MacState.IDLE

    @property
    def transmitting(self) -> bool:
        """True while the node occupies the air."""
        return self._transmitting

    @property
    def has_traffic(self) -> bool:
        return not self.queue.is_empty

    @property
    def head_packet(self) -> Optional[Packet]:
        return self.queue.peek()

    @property
    def attempt(self) -> int:
        return self._attempt

    @property
    def next_offset(self) -> int:
        return self._next_offset

    @property
    def current_draw(self) -> Optional["_CurrentAttempt"]:
        """The (offset, attempt, dictated, actual) of the pending draw."""
        return self._current

    # -- engine-driven transitions -----------------------------------------

    def enqueue(self, packet: Packet) -> bool:
        """Offer a packet to the interface queue; returns acceptance."""
        return self.queue.offer(packet)

    def needs_backoff_draw(self) -> bool:
        """True if a head packet awaits a back-off draw."""
        return (
            self.has_traffic and not self.backoff.active and not self._transmitting
        )

    def draw_backoff(self) -> int:
        """Consume the next PRS offset and start the back-off countdown.

        Returns the actual back-off (slots) the node will count.  The
        dictated value comes from the verifiable PRS; the policy may
        shrink or replace it (misbehavior).
        """
        if not self.needs_backoff_draw():
            raise RuntimeError("draw_backoff() called with no eligible packet")
        offset = self._next_offset
        self._next_offset += 1
        dictated = self.prng.dictated_backoff(offset, self._attempt)
        actual = self.policy.actual_backoff(self.prng, offset, self._attempt)
        self._current = _CurrentAttempt(
            offset=offset, attempt=self._attempt, dictated=dictated, actual=actual
        )
        self.backoff.start(actual)
        self.stats.backoffs_drawn += 1
        self.stats.total_dictated_backoff += dictated
        self.stats.total_actual_backoff += actual
        return actual

    def build_rts(self) -> RtsFrame:
        """The modified RTS announcing this attempt (Figure 2 fields)."""
        if self._current is None:
            raise RuntimeError("build_rts() before draw_backoff()")
        packet = self.head_packet
        if packet is None:
            raise RuntimeError("build_rts() with empty queue")
        announced_attempt = (
            1 if self.announce_attempt_always_one else min(
                self._current.attempt, MAX_ATTEMPT_FIELD
            )
        )
        announced_offset = (
            max(self._current.offset - 1, 0)
            if self.announce_stale_offset
            else self._current.offset
        )
        frame = RtsFrame(
            sender=self.node_id,
            receiver=packet.destination,
            seq_off=announced_offset,
            attempt=announced_attempt,
            digest=data_digest(packet.payload),
        )
        if self.announcement is not None:
            frame = self.announcement.rewrite(frame)
        return frame

    def begin_transmission(self) -> None:
        """Countdown hit zero; the node occupies the air."""
        if self._current is None:
            raise RuntimeError("begin_transmission() before draw_backoff()")
        self._transmitting = True
        self.backoff.finish()
        self.stats.attempts += 1

    def complete_transmission(self, success: bool) -> None:
        """Exchange finished.  Applies the retransmission rules.

        On success the head packet departs and the attempt counter
        resets.  On failure the attempt counter increments; past the
        retry limit the packet is dropped (and the counter resets for
        the next packet).
        """
        if not self._transmitting:
            raise RuntimeError("complete_transmission() while not transmitting")
        self._transmitting = False
        self._current = None
        if success:
            self.stats.successes += 1
            self.queue.pop()
            self._attempt = 1
        else:
            self.stats.failures += 1
            self._attempt += 1
            if self._attempt > self.timing.retry_limit:
                self.queue.pop()
                self.stats.drops += 1
                self._attempt = 1
