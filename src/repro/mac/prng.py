"""The verifiable back-off pseudo-random number generator.

Paper Section 4: every node must derive its back-off values from a
pseudo-random sequence (PRS) seeded with its *MAC address*, so any
neighbor that knows the address — i.e., every neighbor — can regenerate
the exact sequence and check announced offsets against observed
behavior.

The draw for (offset, attempt) must be a pure function of
(seed, offset, attempt): a monitor that hears an RTS carrying
``SeqOff# = o, Attempt# = a`` computes the identical dictated back-off
without having tracked any generator state.  We use SplitMix64 as the
mixing function — tiny, well-distributed, and trivially portable, which
is what a real deployment of the scheme would need across vendors.
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.mac.constants import DEFAULT_TIMING

MacAddress = Union[int, str, bytes, bytearray]

_MASK64 = (1 << 64) - 1


def splitmix64(state: int) -> int:
    """One SplitMix64 output for a 64-bit state; returns a 64-bit int."""
    state = (state + 0x9E3779B97F4A7C15) & _MASK64
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def mac_address_seed(mac_address: MacAddress) -> int:
    """Canonical 64-bit seed for a MAC address.

    Accepts an int (already a 48-bit address), a ``aa:bb:...`` string, or
    bytes.  In the simulator, node ids stand in for MAC addresses.
    """
    if isinstance(mac_address, int):
        raw = mac_address & _MASK64
    elif isinstance(mac_address, str):
        raw = int(mac_address.replace(":", "").replace("-", ""), 16)
    elif isinstance(mac_address, (bytes, bytearray)):
        raw = int.from_bytes(bytes(mac_address), "big")
    else:
        raise TypeError(f"unsupported MAC address type: {type(mac_address).__name__}")
    # One mixing round so that nearby addresses yield unrelated sequences.
    return splitmix64(raw)


def contention_window_for_attempt(attempt: int, cw_min: int, cw_max: int) -> int:
    """CW for the given 1-based attempt: ``min(2^(a-1)*(CWmin+1)-1, CWmax)``.

    Attempt 1 draws from [0, CWmin]; each retransmission doubles the
    window up to CWmax (paper Section 2: "the back-off time is selected
    randomly from the range [0, 2^i * CWmin] during the i-th
    retransmission attempt").
    """
    if attempt < 1:
        raise ValueError(f"attempt must be >= 1, got {attempt}")
    window = ((cw_min + 1) << (attempt - 1)) - 1
    return min(window, cw_max)


class VerifiableBackoffPrng:
    """The dictated pseudo-random back-off sequence of one node.

    Both the node itself and every monitoring neighbor instantiate this
    with the node's MAC address; ``dictated_backoff(offset, attempt)``
    then agrees everywhere.
    """

    def __init__(
        self,
        mac_address: MacAddress,
        cw_min: Optional[int] = None,
        cw_max: Optional[int] = None,
    ) -> None:
        timing = DEFAULT_TIMING
        self.mac_address = mac_address
        self.seed = mac_address_seed(mac_address)
        self.cw_min = cw_min if cw_min is not None else timing.cw_min
        self.cw_max = cw_max if cw_max is not None else timing.cw_max
        if self.cw_min < 1:
            raise ValueError(f"cw_min must be >= 1, got {self.cw_min}")
        if self.cw_max < self.cw_min:
            raise ValueError("cw_max must be >= cw_min")

    def raw_draw(self, offset: int) -> int:
        """The 64-bit PRS value at ``offset`` (before CW reduction)."""
        if offset < 0:
            raise ValueError(f"offset must be non-negative, got {offset}")
        return splitmix64(self.seed ^ splitmix64(offset))

    def dictated_backoff(self, offset: int, attempt: int) -> int:
        """The back-off (in slots) the standard dictates at this point.

        A pure function of (seed, offset, attempt): the raw PRS draw at
        ``offset`` reduced modulo the attempt's contention window + 1.
        """
        window = contention_window_for_attempt(attempt, self.cw_min, self.cw_max)
        return self.raw_draw(offset) % (window + 1)

    def dictated_sequence(
        self, start_offset: int, count: int, attempt: int = 1
    ) -> List[int]:
        """``count`` consecutive dictated back-offs from ``start_offset``."""
        return [
            self.dictated_backoff(start_offset + i, attempt) for i in range(count)
        ]
