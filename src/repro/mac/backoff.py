"""Back-off countdown bookkeeping with freeze/resume semantics.

IEEE 802.11 decrements the back-off timer only while the medium has been
idle for at least a DIFS; when the medium turns busy the timer freezes
and resumes (after another DIFS) where it left off.  The event-driven
simulator cannot tick every slot, so :class:`BackoffScheduler` keeps the
countdown as ``(remaining, counting-since)`` and converts between the
two on every channel-state transition.

A *generation* counter invalidates stale completion events: the engine
tags each scheduled completion with the generation at scheduling time
and discards the event if the generation moved on (i.e., the countdown
was frozen or restarted in between).
"""

from __future__ import annotations

from typing import Optional

from repro.mac.prng import contention_window_for_attempt
from repro.util.units import Slots


def contention_window(attempt: int, cw_min: int, cw_max: int) -> int:
    """CW for a 1-based attempt (alias of the PRS module's rule)."""
    return contention_window_for_attempt(attempt, cw_min, cw_max)


class BackoffScheduler:
    """Freeze/resume countdown state for one node."""

    def __init__(self) -> None:
        #: slots still to count; None = inactive
        self.remaining: Optional[int] = None
        #: slot at which counting (re)started; None = frozen
        self.anchor: Optional[int] = None
        self.generation = 0
        #: dictated back-off drawn for the current attempt (for tracing)
        self.initial: Optional[int] = None
        #: lifetime statistics (read by repro.obs.MetricsListener.harvest)
        self.draws = 0
        self.freezes = 0
        self.slots_frozen = 0
        #: slot of the last effective freeze; None while counting/idle
        self._frozen_since: Optional[int] = None

    # -- state predicates ----------------------------------------------------

    @property
    def active(self) -> bool:
        """A back-off is pending (counting or frozen)."""
        return self.remaining is not None

    @property
    def counting(self) -> bool:
        return self.remaining is not None and self.anchor is not None

    # -- transitions -----------------------------------------------------------

    def start(self, slots: Slots) -> None:
        """Begin a fresh back-off of ``slots`` (frozen until resumed)."""
        if slots < 0:
            raise ValueError(f"back-off must be non-negative, got {slots}")
        self.remaining = int(slots)
        self.initial = int(slots)
        self.anchor = None
        self.generation += 1
        self.draws += 1
        self._frozen_since = None

    def resume(self, anchor_slot: Slots) -> int:
        """Medium usable from ``anchor_slot`` (a DIFS after it went idle);
        counting restarts there.  Returns the completion slot."""
        if self.remaining is None:
            raise RuntimeError("resume() with no active back-off")
        if self._frozen_since is not None:
            self.slots_frozen += max(int(anchor_slot) - self._frozen_since, 0)
            self._frozen_since = None
        self.anchor = int(anchor_slot)
        self.generation += 1
        return self.completion_slot

    def freeze(self, now_slot: Slots) -> None:
        """Medium turned busy at ``now_slot``; bank the slots counted.

        Freezing an already-frozen (or inactive) countdown is a no-op,
        which keeps the engine's reconcile pass idempotent.
        """
        if self.remaining is None or self.anchor is None:
            return
        elapsed = max(0, int(now_slot) - self.anchor)
        self.remaining = max(0, self.remaining - elapsed)
        self.anchor = None
        self.generation += 1
        self.freezes += 1
        self._frozen_since = int(now_slot)

    def finish(self) -> None:
        """Countdown reached zero; clear state."""
        self.remaining = None
        self.anchor = None
        self.initial = None
        self.generation += 1
        self._frozen_since = None

    @property
    def completion_slot(self) -> Slots:
        """Slot at which the countdown reaches zero, if counting."""
        if not self.counting:
            raise RuntimeError("completion_slot on a non-counting back-off")
        return self.anchor + self.remaining
