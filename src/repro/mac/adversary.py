"""Announcement-layer adversaries and colluding-pair wiring.

The back-off policies in :mod:`repro.mac.misbehavior` cheat on what a
node *counts*; the shapes here cheat on what it *announces* in the
modified RTS, or coordinate two nodes so each covers for the other.
They exist to probe the detector's blind spots (DESIGN.md §12):

* :class:`DigestForgery` — re-announce every retransmission as a fresh
  attempt-1 packet with a forged MD digest.  Defeats the Attempt#/MD
  verifier *by construction* (every digest it sees is new), shifting
  the burden to the statistical layer — the forged announcements
  dictate attempt-1 windows the cheater's actual retry windows exceed.
* :class:`AttemptReplay` — replay the previous Attempt# for the same
  digest on a retransmission.  Caught deterministically: a repeated
  digest must arrive with a strictly larger attempt number.
* :class:`SequenceOffsetLie` — abandon the real PRS position and
  announce a self-consistent fabricated counter (advancing by exactly
  one per RTS).  No deterministic rule can object — the lie is
  internally coherent — so only the rank-sum comparison of dictated
  vs. observed back-offs can expose the node.
* :func:`install_colluding_pair` — two nodes alibi each other: each
  shrinks its own back-off, and each jams tiny-back-off cover traffic
  while its partner contends, stuffing the partner's contention
  intervals with busy slots so the monitor's eq. 1–5 estimate is
  dragged toward the dictated value (the busy mass "explains" the
  short interval).

Announcement policies are pure frame rewrites hooked into
:meth:`repro.mac.dcf.DcfMac.build_rts` via the ``announcement``
constructor option (``Simulation(mac_options={node: {"announcement":
...}})``); they never touch the node's actual countdown, so they
compose freely with any :class:`~repro.mac.misbehavior.BackoffPolicy`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import replace
from typing import TYPE_CHECKING, Optional, Tuple

from repro.mac.digest import data_digest
from repro.mac.frames import MAX_ATTEMPT_FIELD, RtsFrame
from repro.mac.misbehavior import AlibiBackoff

if TYPE_CHECKING:  # pragma: no cover - import-time only
    from repro.sim.network import Simulation


class AnnouncementPolicy(ABC):
    """Rewrites the RTS announcement just before it goes on air."""

    @abstractmethod
    def rewrite(self, frame: RtsFrame) -> RtsFrame:
        """The frame actually announced in place of ``frame``."""

    def describe(self) -> str:
        """Short human-readable label for experiment reports."""
        return type(self).__name__


class HonestAnnouncement(AnnouncementPolicy):
    """Announce exactly what the MAC built (identity rewrite)."""

    def rewrite(self, frame: RtsFrame) -> RtsFrame:
        return frame


class DigestForgery(AnnouncementPolicy):
    """Disguise every retransmission as a fresh attempt-1 packet.

    The Attempt#/MD rule says a repeated digest must carry an increasing
    attempt number; the forger never repeats a digest.  Each retry
    announces attempt 1 with a forged digest derived (deterministically)
    from the true one and the retry count — so the node's contention
    window looks permanently reset while its real retry draws come from
    doubled windows.
    """

    def __init__(self) -> None:
        self.forged = 0

    def rewrite(self, frame: RtsFrame) -> RtsFrame:
        if frame.attempt <= 1:
            return frame
        self.forged += 1
        forged_digest = data_digest(
            b"forged:%d:%d:%d" % (frame.sender, frame.seq_off, frame.attempt)
        )
        return replace(frame, attempt=1, digest=forged_digest)


class AttemptReplay(AnnouncementPolicy):
    """Replay the previous attempt number for the same digest.

    A node that under-reports its attempt announces a small dictated
    contention window for a draw it actually took from a doubled one.
    The replayed (digest, attempt) pair violates the strictly-increasing
    rule, so the deterministic Attempt#/MD verifier fires on the first
    replayed retransmission the monitor decodes.
    """

    def __init__(self) -> None:
        self._last: Optional[Tuple[bytes, int]] = None
        self.replays = 0

    def rewrite(self, frame: RtsFrame) -> RtsFrame:
        last = self._last
        if last is not None and last[0] == frame.digest and frame.attempt > last[1]:
            self.replays += 1
            return replace(frame, attempt=last[1])
        self._last = (frame.digest, min(frame.attempt, MAX_ATTEMPT_FIELD))
        return frame


class SequenceOffsetLie(AnnouncementPolicy):
    """A self-consistent fabricated SeqOff# stream.

    The node abandons its real PRS position and announces a private
    counter starting at ``start_offset``, advancing by exactly one per
    RTS — exactly what the SeqOff# monotonicity rule demands, so no
    deterministic check can object.  The dictated values monitors
    recompute from the fabricated offsets have nothing to do with what
    the node counts; paired with a shrinking
    :class:`~repro.mac.misbehavior.BackoffPolicy` this is the pure
    test case for the statistical layer (and, announced alone over an
    honest countdown, a false-accusation stress test: honest timing
    against mismatched-but-valid announcements).
    """

    def __init__(self, start_offset: int = 0) -> None:
        if start_offset < 0:
            raise ValueError(
                f"start_offset must be non-negative, got {start_offset}"
            )
        self._next = start_offset
        self.lies = 0

    def rewrite(self, frame: RtsFrame) -> RtsFrame:
        announced = self._next
        self._next += 1
        if announced != frame.seq_off:
            self.lies += 1
        return replace(frame, seq_off=announced)


def install_colluding_pair(
    sim: "Simulation",
    node_a: int,
    node_b: int,
    pm: float = 60.0,
    cover_backoff: int = 1,
) -> Tuple[AlibiBackoff, AlibiBackoff]:
    """Wire two nodes of a built simulation into a colluding pair.

    Each node gets an :class:`~repro.mac.misbehavior.AlibiBackoff`
    policy probing the *other* node's MAC: shrink your own back-off by
    ``pm`` percent, and whenever your partner is mid-contention, jump
    the queue with a ``cover_backoff``-slot draw so the partner's
    contention interval fills with your busy time.  Returns the two
    policies (their ``cover_draws`` counters tell how much alibi
    traffic actually happened).

    Must run after ``Simulation`` construction (the probes close over
    the built MACs) and before the run starts.
    """
    if node_a == node_b:
        raise ValueError("a colluding pair needs two distinct nodes")
    mac_a = sim.macs[node_a]
    mac_b = sim.macs[node_b]
    policy_a = AlibiBackoff(
        partner_probe=lambda: mac_b.backoff.active,
        cover_backoff=cover_backoff,
        pm=pm,
    )
    policy_b = AlibiBackoff(
        partner_probe=lambda: mac_a.backoff.active,
        cover_backoff=cover_backoff,
        pm=pm,
    )
    mac_a.policy = policy_a
    mac_b.policy = policy_b
    return policy_a, policy_b
