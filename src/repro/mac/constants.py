"""IEEE 802.11 (DSSS PHY) MAC timing, expressed in 20 us slots.

All air-time is quantized to slots so the whole simulator can run on an
integer clock.  Frame durations are derived from the standard's frame
sizes and rates — including the paper's modified RTS, which is 18 bytes
longer than stock (2 bytes SeqOff#/Attempt# + 16 bytes MD5 digest,
Figure 2) — and rounded *up* to whole slots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.units import (
    DEFAULT_SLOT_TIME_US,
    Microseconds,
    Slots,
    microseconds_to_slots,
)
from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class MacTiming:
    """Derived slot-level timing for one PHY/MAC configuration.

    Defaults follow IEEE 802.11 DSSS: 20 us slots, SIFS 10 us,
    DIFS = SIFS + 2 slots = 50 us, 1 Mb/s basic (control) rate, 2 Mb/s
    data rate, 192 us long PHY preamble+PLCP header per frame.

    The modified RTS of the paper is 38 bytes: the stock 20-byte RTS
    (frame control 2, duration 2, RA 6, TA 6, FCS 4) plus the 2-byte
    SeqOff#+Attempt# field and the 16-byte message digest of Figure 2.
    """

    slot_time_us: Microseconds = DEFAULT_SLOT_TIME_US
    sifs_us: Microseconds = 10.0
    difs_us: Microseconds = 50.0
    basic_rate_bps: float = 1_000_000.0
    data_rate_bps: float = 2_000_000.0
    phy_overhead_us: Microseconds = 192.0
    rts_bytes: int = 38          # modified RTS (Figure 2)
    cts_bytes: int = 14
    ack_bytes: int = 14
    mac_data_header_bytes: int = 28
    payload_bytes: int = 512     # Table 1 packet size
    cw_min: int = 31             # CWmin: back-off drawn from [0, cw_min]
    cw_max: int = 1023
    retry_limit: int = 7

    def __post_init__(self) -> None:
        check_positive(self.slot_time_us, "slot_time_us")
        check_non_negative(self.sifs_us, "sifs_us")
        check_positive(self.difs_us, "difs_us")
        check_positive(self.basic_rate_bps, "basic_rate_bps")
        check_positive(self.data_rate_bps, "data_rate_bps")
        check_positive(self.payload_bytes, "payload_bytes")
        check_positive(self.cw_min, "cw_min")
        if self.cw_max < self.cw_min:
            raise ValueError("cw_max must be >= cw_min")
        check_positive(self.retry_limit, "retry_limit")

    # -- frame air times ----------------------------------------------------

    def _frame_us(self, size_bytes: int, rate_bps: float) -> Microseconds:
        return self.phy_overhead_us + size_bytes * 8 * 1e6 / rate_bps

    def _to_slots(self, us: Microseconds) -> Slots:
        return microseconds_to_slots(us, self.slot_time_us)

    @property
    def sifs_slots(self) -> Slots:
        return self._to_slots(self.sifs_us)

    @property
    def difs_slots(self) -> Slots:
        return self._to_slots(self.difs_us)

    @property
    def rts_slots(self) -> Slots:
        return self._to_slots(self._frame_us(self.rts_bytes, self.basic_rate_bps))

    @property
    def cts_slots(self) -> Slots:
        return self._to_slots(self._frame_us(self.cts_bytes, self.basic_rate_bps))

    @property
    def ack_slots(self) -> Slots:
        return self._to_slots(self._frame_us(self.ack_bytes, self.basic_rate_bps))

    @property
    def data_slots(self) -> Slots:
        return self._to_slots(
            self._frame_us(
                self.payload_bytes + self.mac_data_header_bytes, self.data_rate_bps
            )
        )

    # -- exchange phases -----------------------------------------------------

    @property
    def handshake_slots(self) -> Slots:
        """Phase 1 of an exchange: RTS + SIFS + CTS.

        This is also the busy period a *failed* attempt occupies (the RTS
        plus the CTS-timeout the sender waits before backing off again).
        """
        return self.rts_slots + self.sifs_slots + self.cts_slots

    @property
    def payload_phase_slots(self) -> Slots:
        """Phase 2 of a successful exchange: SIFS + DATA + SIFS + ACK."""
        return self.sifs_slots + self.data_slots + self.sifs_slots + self.ack_slots

    @property
    def exchange_slots(self) -> Slots:
        """Total busy period of a successful RTS/CTS/DATA/ACK exchange."""
        return self.handshake_slots + self.payload_phase_slots

    @property
    def mean_service_slots(self) -> Slots:
        """Approximate MAC service time: one successful exchange plus the
        mean initial back-off and a DIFS.  Used to normalize offered load
        to the paper's traffic intensity rho."""
        return self.exchange_slots + self.difs_slots + self.cw_min // 2


#: Shared default timing (the Table 1 configuration).
DEFAULT_TIMING = MacTiming()
