"""IEEE 802.11 DCF MAC layer with the paper's verifiable-back-off extension.

Implements: slotted DCF timing (DIFS/SIFS, 20 us slots), the binary
exponential back-off with freeze/resume semantics, RTS/CTS/DATA/ACK
exchanges, the modified RTS frame carrying the pseudo-random-sequence
offset, attempt number and MD5 message digest (paper Section 4), and a
family of misbehavior strategies including the paper's "percentage of
misbehavior" (PM) timer cheat.
"""

from repro.mac.backoff import BackoffScheduler, contention_window
from repro.mac.constants import MacTiming
from repro.mac.dcf import DcfMac, MacState
from repro.mac.digest import data_digest
from repro.mac.frames import AckFrame, CtsFrame, DataFrame, RtsFrame
from repro.mac.misbehavior import (
    AdaptiveLoadCheat,
    AlienDistributionBackoff,
    BackoffPolicy,
    FixedBackoff,
    HonestBackoff,
    IntermittentMisbehavior,
    NoExponentialBackoff,
    PercentageMisbehavior,
)
from repro.mac.prng import VerifiableBackoffPrng, mac_address_seed

__all__ = [
    "AckFrame",
    "AdaptiveLoadCheat",
    "AlienDistributionBackoff",
    "BackoffPolicy",
    "BackoffScheduler",
    "CtsFrame",
    "DataFrame",
    "DcfMac",
    "FixedBackoff",
    "HonestBackoff",
    "IntermittentMisbehavior",
    "MacState",
    "MacTiming",
    "NoExponentialBackoff",
    "PercentageMisbehavior",
    "RtsFrame",
    "VerifiableBackoffPrng",
    "contention_window",
    "data_digest",
    "mac_address_seed",
]
