"""MAC frames, including the paper's modified RTS (Figure 2).

The modification adds three fields to the stock RTS: a 13-bit
sequence-offset number (``seq_off``) committing the sender to a position
in its dictated pseudo-random back-off sequence, a 3-bit attempt number
(``attempt``), and a 16-byte MD5 digest of the DATA frame that will
follow.  Monitors use these to recompute the back-off the sender was
obliged to use.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

SEQ_OFF_BITS = 13
SEQ_OFF_MODULUS = 1 << SEQ_OFF_BITS  # the 13-bit field wraps at 8192
ATTEMPT_BITS = 3
MAX_ATTEMPT_FIELD = (1 << ATTEMPT_BITS) - 1

#: Wire image of the modified RTS extension (big-endian):
#:   2 bytes  seq_off_field (13 bits) << 3 | attempt (3 bits)
#:   4 bytes  sender address
#:   4 bytes  receiver address
#:  16 bytes  MD5 digest of the DATA payload to follow
#:   4 bytes  CRC-32 over the 26 bytes above
_RTS_HEADER = ">HII16s"
RTS_WIRE_BYTES = struct.calcsize(_RTS_HEADER) + 4


class FrameDecodeError(ValueError):
    """A wire image failed validation (truncated, bad CRC, bad field)."""


@dataclass(frozen=True)
class RtsFrame:
    """Modified request-to-send.

    ``seq_off`` is stored unwrapped internally for convenience; the
    on-air 13-bit value is :attr:`seq_off_field`.  ``digest`` is the MD5
    of the DATA payload to follow.
    """

    sender: int
    receiver: int
    seq_off: int
    attempt: int
    digest: bytes

    def __post_init__(self) -> None:
        if self.seq_off < 0:
            raise ValueError(f"seq_off must be non-negative, got {self.seq_off}")
        if not 1 <= self.attempt <= MAX_ATTEMPT_FIELD:
            raise ValueError(
                f"attempt must be in [1, {MAX_ATTEMPT_FIELD}], got {self.attempt}"
            )
        if len(self.digest) != 16:
            raise ValueError(f"digest must be 16 bytes, got {len(self.digest)}")

    @property
    def seq_off_field(self) -> int:
        """The wrapped 13-bit sequence offset as transmitted on air."""
        return self.seq_off % SEQ_OFF_MODULUS


def encode_rts(frame: RtsFrame) -> bytes:
    """Serialize ``frame`` to its :data:`RTS_WIRE_BYTES`-byte wire image.

    Only the wrapped 13-bit :attr:`RtsFrame.seq_off_field` goes on air;
    decoding therefore recovers ``seq_off % 8192``, exactly what a real
    monitor would see (the unwrap happens in the detector's tracking).
    """
    packed = (frame.seq_off_field << ATTEMPT_BITS) | frame.attempt
    body = struct.pack(
        _RTS_HEADER,
        packed,
        frame.sender & 0xFFFFFFFF,
        frame.receiver & 0xFFFFFFFF,
        frame.digest,
    )
    return body + struct.pack(">I", zlib.crc32(body))


def decode_rts(wire: bytes) -> RtsFrame:
    """Parse a wire image back into an :class:`RtsFrame`.

    Raises :class:`FrameDecodeError` — never anything else — on any
    malformed input: wrong length, CRC mismatch, or a field that fails
    :class:`RtsFrame` validation (e.g. the reserved attempt value 0).
    A monitor treats that as an undecodable announcement and quarantines
    the observation rather than feeding garbage to the verifiers.
    """
    if len(wire) != RTS_WIRE_BYTES:
        raise FrameDecodeError(
            f"RTS wire image must be {RTS_WIRE_BYTES} bytes, got {len(wire)}"
        )
    body, crc = wire[:-4], struct.unpack(">I", wire[-4:])[0]
    if zlib.crc32(body) != crc:
        raise FrameDecodeError("RTS wire image failed CRC-32 check")
    packed, sender, receiver, digest = struct.unpack(_RTS_HEADER, body)
    attempt = packed & MAX_ATTEMPT_FIELD
    seq_off = packed >> ATTEMPT_BITS
    try:
        return RtsFrame(
            sender=sender,
            receiver=receiver,
            seq_off=seq_off,
            attempt=attempt,
            digest=digest,
        )
    except ValueError as exc:
        raise FrameDecodeError(str(exc)) from exc


@dataclass(frozen=True)
class CtsFrame:
    """Clear-to-send (unmodified)."""

    sender: int
    receiver: int


@dataclass(frozen=True)
class DataFrame:
    """A DATA frame carrying one queued packet."""

    sender: int
    receiver: int
    payload: bytes
    packet_uid: int


@dataclass(frozen=True)
class AckFrame:
    """Acknowledgment (unmodified)."""

    sender: int
    receiver: int
