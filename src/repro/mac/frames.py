"""MAC frames, including the paper's modified RTS (Figure 2).

The modification adds three fields to the stock RTS: a 13-bit
sequence-offset number (``seq_off``) committing the sender to a position
in its dictated pseudo-random back-off sequence, a 3-bit attempt number
(``attempt``), and a 16-byte MD5 digest of the DATA frame that will
follow.  Monitors use these to recompute the back-off the sender was
obliged to use.
"""

from __future__ import annotations

from dataclasses import dataclass

SEQ_OFF_BITS = 13
SEQ_OFF_MODULUS = 1 << SEQ_OFF_BITS  # the 13-bit field wraps at 8192
ATTEMPT_BITS = 3
MAX_ATTEMPT_FIELD = (1 << ATTEMPT_BITS) - 1


@dataclass(frozen=True)
class RtsFrame:
    """Modified request-to-send.

    ``seq_off`` is stored unwrapped internally for convenience; the
    on-air 13-bit value is :attr:`seq_off_field`.  ``digest`` is the MD5
    of the DATA payload to follow.
    """

    sender: int
    receiver: int
    seq_off: int
    attempt: int
    digest: bytes

    def __post_init__(self) -> None:
        if self.seq_off < 0:
            raise ValueError(f"seq_off must be non-negative, got {self.seq_off}")
        if not 1 <= self.attempt <= MAX_ATTEMPT_FIELD:
            raise ValueError(
                f"attempt must be in [1, {MAX_ATTEMPT_FIELD}], got {self.attempt}"
            )
        if len(self.digest) != 16:
            raise ValueError(f"digest must be 16 bytes, got {len(self.digest)}")

    @property
    def seq_off_field(self) -> int:
        """The wrapped 13-bit sequence offset as transmitted on air."""
        return self.seq_off % SEQ_OFF_MODULUS


@dataclass(frozen=True)
class CtsFrame:
    """Clear-to-send (unmodified)."""

    sender: int
    receiver: int


@dataclass(frozen=True)
class DataFrame:
    """A DATA frame carrying one queued packet."""

    sender: int
    receiver: int
    payload: bytes
    packet_uid: int


@dataclass(frozen=True)
class AckFrame:
    """Acknowledgment (unmodified)."""

    sender: int
    receiver: int
