"""Message digests for the modified RTS frame.

The paper attaches an MD5 digest (RFC 1321) of the upcoming DATA packet
to every RTS so monitors can verify that a retransmitted packet really is
the same packet (and therefore that the announced attempt number must
have increased).  MD5's cryptographic weaknesses are irrelevant here —
the scheme only needs collision resistance against nodes that want two
*different* packets to look identical, and the paper's choice is kept.
"""

from __future__ import annotations

import hashlib
from typing import Union

Digestible = Union[bytes, bytearray]


def data_digest(payload: Digestible) -> bytes:
    """128-bit MD5 digest of a DATA payload, as bytes."""
    if not isinstance(payload, (bytes, bytearray)):
        raise TypeError(f"payload must be bytes, got {type(payload).__name__}")
    return hashlib.md5(bytes(payload)).digest()


def digests_match(a: Digestible, b: Digestible) -> bool:
    """Constant-type comparison helper for two digests."""
    return bytes(a) == bytes(b)
