"""Back-off policies: the honest one and misbehaving variants.

The paper parameterizes misbehavior with PM, the "percentage of
misbehavior": a node with PM = m% transmits after counting down only
(100 - m)% of its dictated back-off value.  We also implement the other
attack shapes the paper's introduction describes — a small constant
back-off, refusing to double the contention window on failure, and
drawing from a completely different distribution — all of which the
detector must catch.

A policy decides *what the node actually counts down*; the dictated
value (what the verifiable PRS obliges) is always computed from the
node's :class:`~repro.mac.prng.VerifiableBackoffPrng`, because that is
what monitors will check against.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable

from repro.util.validation import check_in_range, check_non_negative

if TYPE_CHECKING:  # pragma: no cover - import-time only
    from repro.mac.prng import VerifiableBackoffPrng
    from repro.util.rng import RngStream


class BackoffPolicy(ABC):
    """Maps the dictated back-off to the back-off actually used."""

    #: True for policies that follow the standard exactly.
    is_honest = False

    @abstractmethod
    def actual_backoff(
        self, prng: "VerifiableBackoffPrng", offset: int, attempt: int
    ) -> int:
        """Slots the node will really count down at (offset, attempt)."""

    def describe(self) -> str:
        """Short human-readable label for experiment reports."""
        return type(self).__name__


class HonestBackoff(BackoffPolicy):
    """Fully standard-compliant: count down exactly the dictated value."""

    is_honest = True

    def actual_backoff(
        self, prng: "VerifiableBackoffPrng", offset: int, attempt: int
    ) -> int:
        return prng.dictated_backoff(offset, attempt)


class PercentageMisbehavior(BackoffPolicy):
    """The paper's PM attack: use (100 - pm)% of the dictated back-off.

    ``pm = 0`` degenerates to honest behavior; ``pm = 100`` transmits
    with zero back-off every time.
    """

    def __init__(self, pm: float) -> None:
        self.pm = check_in_range(pm, 0, 100, "pm")

    @property
    def is_honest(self) -> bool:
        return self.pm == 0

    def actual_backoff(
        self, prng: "VerifiableBackoffPrng", offset: int, attempt: int
    ) -> int:
        dictated = prng.dictated_backoff(offset, attempt)
        return int(round(dictated * (100 - self.pm) / 100.0))

    def describe(self) -> str:
        return f"PercentageMisbehavior(pm={self.pm})"


class FixedBackoff(BackoffPolicy):
    """Always use the same (typically small) constant back-off."""

    def __init__(self, value: int) -> None:
        self.value = int(check_non_negative(value, "value"))

    def actual_backoff(
        self, prng: "VerifiableBackoffPrng", offset: int, attempt: int
    ) -> int:
        return self.value

    def describe(self) -> str:
        return f"FixedBackoff(value={self.value})"


class NoExponentialBackoff(BackoffPolicy):
    """Honors the PRS but never doubles the window on retransmission.

    This is the "different retransmission strategy" attack: first
    attempts look legitimate, retransmissions are drawn from [0, CWmin]
    instead of the doubled window.
    """

    def actual_backoff(
        self, prng: "VerifiableBackoffPrng", offset: int, attempt: int
    ) -> int:
        return prng.dictated_backoff(offset, 1)


class IntermittentMisbehavior(BackoffPolicy):
    """Cheats only a fraction of the time.

    A smarter attacker dilutes its misbehavior to slow detection: with
    probability ``cheat_probability`` it applies the inner policy,
    otherwise it behaves honestly.  The expected back-off shift scales
    with the dilution, which is exactly what the rank-sum test ends up
    integrating over a window.
    """

    def __init__(
        self,
        inner: BackoffPolicy,
        cheat_probability: float,
        rng: "RngStream",
    ) -> None:
        from repro.util.validation import check_probability

        if rng is None:
            raise ValueError("IntermittentMisbehavior requires an RngStream")
        self.inner = inner
        self.cheat_probability = check_probability(
            cheat_probability, "cheat_probability"
        )
        self._rng = rng
        self.cheated_draws = 0
        self.honest_draws = 0

    def actual_backoff(
        self, prng: "VerifiableBackoffPrng", offset: int, attempt: int
    ) -> int:
        if self._rng.uniform() < self.cheat_probability:
            self.cheated_draws += 1
            return self.inner.actual_backoff(prng, offset, attempt)
        self.honest_draws += 1
        return prng.dictated_backoff(offset, attempt)

    def describe(self) -> str:
        return (
            f"IntermittentMisbehavior(p={self.cheat_probability}, "
            f"inner={self.inner.describe()})"
        )


class AdaptiveLoadCheat(BackoffPolicy):
    """Cheats only when the channel is worth stealing.

    The paper notes misbehavior matters most at high load; a rational
    attacker would cheat only then (and look honest in light traffic,
    when monitors collect samples slowly anyway).  The policy reads the
    load from a callable — in the simulator, typically the node's own
    ARMA estimate or a supplied probe.
    """

    def __init__(
        self,
        inner: BackoffPolicy,
        load_probe: Callable[[], float],
        threshold: float = 0.5,
    ) -> None:
        from repro.util.validation import check_probability

        if not callable(load_probe):
            raise TypeError("load_probe must be callable")
        self.inner = inner
        self.load_probe = load_probe
        self.threshold = check_probability(threshold, "threshold")
        self.cheated_draws = 0
        self.honest_draws = 0

    def actual_backoff(
        self, prng: "VerifiableBackoffPrng", offset: int, attempt: int
    ) -> int:
        if self.load_probe() >= self.threshold:
            self.cheated_draws += 1
            return self.inner.actual_backoff(prng, offset, attempt)
        self.honest_draws += 1
        return prng.dictated_backoff(offset, attempt)

    def describe(self) -> str:
        return (
            f"AdaptiveLoadCheat(threshold={self.threshold}, "
            f"inner={self.inner.describe()})"
        )


class AlibiBackoff(BackoffPolicy):
    """One half of a colluding pair: cheat, and cover for your partner.

    Two deviations in one policy.  For its own traffic the node shrinks
    the dictated back-off by ``pm`` percent (the paper's PM attack).
    And whenever ``partner_probe()`` reports the partner mid-contention,
    it instead jumps in with a tiny ``cover_backoff`` draw — cover
    traffic that fills the partner's contention interval with busy
    slots, dragging the monitor's eq. 1–5 estimate of the partner's
    countdown toward the dictated value.  Wire a symmetric pair with
    :func:`repro.mac.adversary.install_colluding_pair`.
    """

    def __init__(
        self,
        partner_probe: Callable[[], bool],
        cover_backoff: int = 1,
        pm: float = 0.0,
    ) -> None:
        if not callable(partner_probe):
            raise TypeError("partner_probe must be callable")
        self.partner_probe = partner_probe
        self.cover_backoff = int(check_non_negative(cover_backoff, "cover_backoff"))
        self.pm = check_in_range(pm, 0, 100, "pm")
        self.cover_draws = 0
        self.own_draws = 0

    def actual_backoff(
        self, prng: "VerifiableBackoffPrng", offset: int, attempt: int
    ) -> int:
        if self.partner_probe():
            self.cover_draws += 1
            return self.cover_backoff
        self.own_draws += 1
        dictated = prng.dictated_backoff(offset, attempt)
        return int(round(dictated * (100 - self.pm) / 100.0))

    def describe(self) -> str:
        return (
            f"AlibiBackoff(pm={self.pm}, cover_backoff={self.cover_backoff})"
        )


class AlienDistributionBackoff(BackoffPolicy):
    """Ignores the dictated PRS entirely; draws from its own uniform.

    ``cw`` bounds the private distribution; a selfish node would pick
    something far below CWmin.
    """

    def __init__(self, rng: "RngStream", cw: int = 7) -> None:
        if rng is None:
            raise ValueError("AlienDistributionBackoff requires an RngStream")
        self._rng = rng
        self.cw = int(check_non_negative(cw, "cw"))

    def actual_backoff(
        self, prng: "VerifiableBackoffPrng", offset: int, attempt: int
    ) -> int:
        return self._rng.integers(0, self.cw + 1)

    def describe(self) -> str:
        return f"AlienDistributionBackoff(cw={self.cw})"
