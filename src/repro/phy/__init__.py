"""Physical layer: propagation, links, and the shared wireless medium.

Replaces the ns-2 PHY used in the paper.  The channel model is the same
log-distance + log-normal shadowing model (ns-2's ``Shadowing``
propagation), with decode/carrier-sense thresholds calibrated so that the
sigma = 0 (free-space-like) case reproduces Table 1's 250 m transmission
range and 550 m sensing/interference range exactly.
"""

from repro.phy.channel import Channel, LinkState
from repro.phy.medium import Medium, Transmission
from repro.phy.propagation import (
    FreeSpacePropagation,
    LogNormalShadowing,
    PropagationModel,
    range_to_threshold_margin_db,
)

__all__ = [
    "Channel",
    "FreeSpacePropagation",
    "LinkState",
    "LogNormalShadowing",
    "Medium",
    "PropagationModel",
    "Transmission",
    "range_to_threshold_margin_db",
]
