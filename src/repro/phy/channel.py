"""Link-level channel model: who can decode whom, who senses whom.

IEEE 802.11 distinguishes the *transmission* range (frames decodable)
from the much larger *sensing/interference* range (medium appears busy,
concurrent transmissions corrupt receptions).  The paper leans on exactly
this asymmetry — it is what makes the monitor's channel view diverge from
the sender's — so the channel model keeps both ranges first-class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.geometry.vectors import Point, distance
from repro.phy.propagation import FreeSpacePropagation, PropagationModel
from repro.util.units import Meters
from repro.util.validation import check_positive


@dataclass(frozen=True)
class LinkState:
    """Snapshot of one directed link's reachability."""

    distance: Meters
    decodable: bool
    sensed: bool


class Channel:
    """Pairwise reachability queries on top of a propagation model.

    Parameters
    ----------
    transmission_range:
        Nominal decode range in meters (Table 1: 250 m).
    sensing_range:
        Nominal carrier-sense / interference range in meters
        (Table 1: 550 m).
    propagation:
        A :class:`~repro.phy.propagation.PropagationModel`; defaults to
        deterministic free space (the paper's baseline).
    """

    def __init__(
        self,
        transmission_range: Meters = 250.0,
        sensing_range: Meters = 550.0,
        propagation: Optional[PropagationModel] = None,
    ) -> None:
        self.transmission_range = check_positive(transmission_range, "transmission_range")
        self.sensing_range = check_positive(sensing_range, "sensing_range")
        if sensing_range < transmission_range:
            raise ValueError(
                "sensing_range must be >= transmission_range "
                f"({sensing_range} < {transmission_range})"
            )
        self.propagation = propagation if propagation is not None else FreeSpacePropagation()

    # -- queries -----------------------------------------------------------

    def link_state(self, a_id: int, a_pos: Point, b_id: int, b_pos: Point) -> LinkState:
        """Full :class:`LinkState` between two placed nodes."""
        d = distance(a_pos, b_pos)
        pair = (a_id, b_id)
        return LinkState(
            distance=d,
            decodable=d <= self.propagation.effective_range(self.transmission_range, pair),
            sensed=d <= self.propagation.effective_range(self.sensing_range, pair),
        )

    def decodable(self, a_id: int, a_pos: Point, b_id: int, b_pos: Point) -> bool:
        """True if a frame sent by ``a`` can be decoded at ``b``."""
        d = distance(a_pos, b_pos)
        return d <= self.propagation.effective_range(
            self.transmission_range, (a_id, b_id)
        )

    def sensed(self, a_id: int, a_pos: Point, b_id: int, b_pos: Point) -> bool:
        """True if ``b`` senses the medium busy while ``a`` transmits."""
        d = distance(a_pos, b_pos)
        return d <= self.propagation.effective_range(self.sensing_range, (a_id, b_id))

    def refresh_fading(self) -> None:
        """Redraw shadowing margins (call after mobility epochs)."""
        self.propagation.refresh()
