"""The shared wireless medium: active transmissions and carrier sensing.

The medium is the meeting point of the PHY and the slotted MAC engine.
It tracks which nodes are transmitting (and until which slot), and
answers, per node, the question the DCF asks every slot boundary: *do I
sense the channel busy right now, and if so until when?*

Spatial reachability (who senses / can decode whom) has two
interchangeable index modes:

* ``"brute"`` — the original all-pairs precompute: every
  ``update_positions`` rebuilds full adjacency sets in O(n²).  Exact
  for any propagation model and the reference the grid mode is tested
  against.
* ``"grid"`` — a uniform spatial hash
  (:class:`repro.geometry.spatial.SpatialGrid`) with cell size derived
  from the maximum effective sensing radius.  ``update_positions``
  becomes incremental (only nodes that crossed a cell boundary
  reindex) and adjacency is computed *lazily per node* from the 3×3
  cell neighborhood, so an epoch costs O(moved) + O(candidates of the
  nodes actually queried) instead of O(n²).  Because the grid only
  prunes provably out-of-range pairs and every candidate is re-checked
  with the exact :meth:`Channel.link_state` predicate, query results
  are set-identical to brute force (``tests/test_spatial.py``).

Mode selection (the ``index`` constructor argument) defaults to
``"auto"``: grid whenever the propagation model declares a finite
:meth:`~repro.phy.propagation.PropagationModel.range_scale_bound`
(free space, zero-sigma shadowing), brute otherwise — log-normal
shadowing margins are unbounded, and its lazily-drawn per-pair RNG
stream also depends on query order, so only the eager all-pairs scan
reproduces its committed fingerprints.

Carrier-sense state is *incremental*: every ``start_transmission`` /
``end_transmission`` / ``extend_transmission`` updates, for each node
that senses the transmitter, (a) an insertion-ordered map of the
transmissions it currently senses and (b) a lazy max-heap of their end
slots.  The per-slot queries the engine hammers — :meth:`senses_busy`,
:meth:`is_transmitting`, :meth:`interferers_at` — are therefore O(1) or
O(sensed transmissions) instead of O(all active transmissions), and
:meth:`busy_until` is amortized O(log n).  Transition cost is
O(sensors of the transmitter), which is the same set the engine must
reconcile anyway.

Invariants the incremental state maintains (see
``tests/test_medium_equivalence.py`` for the brute-force cross-check):

* ``_sensed_active[listener]`` holds exactly the ``tx_id -> sender``
  pairs of active transmissions whose sender is in
  ``_sensed_by[sender]``'s listener set, in start order;
* ``_busy_heaps[listener]`` contains one entry per (transmission,
  end-slot version); ends only ever grow (``extend_transmission``), so
  the heap top with a matching live end slot is the true maximum and
  stale entries are discarded lazily — and whenever the stale fraction
  exceeds the live entry count (plus slack), the heap is compacted by
  rebuilding it from the live tracked set, keeping heap size O(active)
  even on long runs where a listener's sensed set never empties;
* both structures are rebuilt from scratch on ``update_positions``
  (mobility epochs), because reachability itself changed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.geometry.spatial import SpatialGrid, cell_size_for_radius
from repro.phy.channel import Channel, Point
from repro.util.units import Slots

#: Stale-entry slack before a busy-until heap is compacted: a heap may
#: hold up to ``2 * live + _HEAP_COMPACT_SLACK`` entries before it is
#: rebuilt from the live tracked set.
_HEAP_COMPACT_SLACK = 16

_EMPTY_SET: FrozenSet[int] = frozenset()


@dataclass
class Transmission:
    """One atomic busy period on the air.

    The slotted MAC models a full RTS/CTS/DATA/ACK exchange as a single
    busy period of precomputed length (see ``repro.mac.constants``); the
    ``kind`` records what the period carries for observers and collision
    accounting.

    ``end_slot`` and ``kind`` must not be reassigned while the
    transmission is registered on a :class:`Medium` — go through
    :meth:`Medium.extend_transmission`, which keeps the incremental
    carrier-sense indexes in step.
    """

    sender: int
    receiver: int
    start_slot: Slots
    end_slot: Slots
    kind: str = "data"
    frame: object = None
    packet: object = None
    corrupted: bool = field(default=False, compare=False)

    @property
    def duration(self) -> Slots:
        return self.end_slot - self.start_slot


class Medium:
    """Tracks active transmissions and per-node carrier sensing.

    ``index`` selects the reachability index: ``"auto"`` (grid when the
    propagation model has a finite range-scale bound, brute otherwise),
    ``"grid"`` (requires a finite bound) or ``"brute"`` (always valid).
    """

    def __init__(self, channel: Channel, index: str = "auto") -> None:
        if index not in ("auto", "grid", "brute"):
            raise ValueError(
                f"index must be 'auto', 'grid' or 'brute', got {index!r}"
            )
        self.channel = channel
        bound = channel.propagation.range_scale_bound()
        if index == "grid" and bound is None:
            raise ValueError(
                "index='grid' requires a propagation model with a finite "
                "range_scale_bound(); unbounded shadowing margins need the "
                "all-pairs index"
            )
        use_grid = index == "grid" or (index == "auto" and bound is not None)
        #: Resolved index mode, ``"grid"`` or ``"brute"``.
        self.index_mode: str = "grid" if use_grid else "brute"
        self._grid: Optional[SpatialGrid] = None
        if use_grid:
            assert bound is not None
            max_radius = (
                max(channel.transmission_range, channel.sensing_range) * bound
            )
            self._grid = SpatialGrid(cell_size_for_radius(max_radius))
        self._positions: Dict[int, Point] = {}
        #: node_id -> set of node_ids whose transmissions it senses.
        #: Brute mode: fully populated on update_positions.  Grid mode:
        #: filled lazily per queried node from the 3x3 candidates.
        self._sensed_from: Dict[int, Set[int]] = {}
        #: node_id -> set of node_ids that sense *its* transmissions
        self._sensed_by: Dict[int, Set[int]] = {}
        #: node_id -> set of node_ids whose frames it can decode
        self._decodes_from: Dict[int, Set[int]] = {}
        self._active: Dict[int, Transmission] = {}
        self._next_tx_id = 0
        # -- incremental carrier-sense state --------------------------------
        #: node_id -> number of its own active transmissions
        self._tx_count: Dict[int, int] = {}
        #: tx_id -> in-flight handshake-kind transmissions
        self._handshakes: Dict[int, Transmission] = {}
        #: listener -> {tx_id: sender} for transmissions it senses,
        #: in start order (mirrors iterating ``_active`` filtered).
        self._sensed_active: Dict[int, Dict[int, int]] = {}
        #: listener -> max-heap [(-end_slot, tx_id), ...], lazily pruned
        self._busy_heaps: Dict[int, List[Tuple[int, int]]] = {}
        # -- frozenset caches for the reachability accessors ----------------
        self._neighbors_cache: Dict[int, FrozenSet[int]] = {}
        self._sensed_sources_cache: Dict[int, FrozenSet[int]] = {}
        self._sensors_cache: Dict[int, FrozenSet[int]] = {}

    # -- topology ----------------------------------------------------------

    def update_positions(self, positions: Mapping[int, Point]) -> None:
        """Install new node positions and refresh reachability state.

        ``positions`` maps node id -> (x, y).  Call once at setup and
        again at every mobility epoch.  Brute mode rebuilds the full
        adjacency sets; grid mode incrementally re-buckets only the
        nodes that crossed a cell boundary and invalidates the lazy
        per-node adjacency.  Reachability changed either way, so the
        incremental carrier-sense indexes are rebuilt from the active
        transmissions as well.
        """
        self._positions = dict(positions)
        if self._grid is not None:
            self._grid.update(self._positions)
            self._sensed_from = {}
            self._sensed_by = {}
            self._decodes_from = {}
        else:
            self._rebuild_all_pairs()
        self._neighbors_cache.clear()
        self._sensed_sources_cache.clear()
        self._sensors_cache.clear()
        self._rebuild_sensing_index()
        # Lazy import: repro.obs is cross-cutting; active_tracer() is
        # None unless the process-wide flight recorder is switched on.
        from repro.obs.trace import PID_ENGINE, active_tracer

        tracer = active_tracer()
        if tracer is not None:
            tracer.instant(
                "medium.reconcile",
                pid=PID_ENGINE,
                category="medium",
                args={"nodes": len(self._positions)},
            )

    def _rebuild_all_pairs(self) -> None:
        """Brute mode: precompute every adjacency set in O(n²)."""
        ids = sorted(self._positions)
        self._sensed_from = {i: set() for i in ids}
        self._sensed_by = {i: set() for i in ids}
        self._decodes_from = {i: set() for i in ids}
        for idx, a in enumerate(ids):
            for b in ids[idx + 1 :]:
                state_ab = self.channel.link_state(
                    a, self._positions[a], b, self._positions[b]
                )
                state_ba = self.channel.link_state(
                    b, self._positions[b], a, self._positions[a]
                )
                if state_ab.sensed:
                    self._sensed_from[b].add(a)
                    self._sensed_by[a].add(b)
                if state_ab.decodable:
                    self._decodes_from[b].add(a)
                if state_ba.sensed:
                    self._sensed_from[a].add(b)
                    self._sensed_by[b].add(a)
                if state_ba.decodable:
                    self._decodes_from[a].add(b)

    def _compute_adjacency(self, node_id: int) -> None:
        """Grid mode: fill one node's adjacency from its 3×3 candidates.

        Every candidate is re-checked with the exact link predicate in
        both directions, so the resulting sets match the brute-force
        scan exactly; the grid only prunes pairs provably out of range.
        """
        grid = self._grid
        assert grid is not None, "_compute_adjacency outside grid mode"
        positions = self._positions
        position = positions[node_id]
        link_state = self.channel.link_state
        sensed_from: Set[int] = set()
        sensed_by: Set[int] = set()
        decodes_from: Set[int] = set()
        for other in grid.candidates_of(node_id):
            other_position = positions[other]
            inbound = link_state(other, other_position, node_id, position)
            if inbound.sensed:
                sensed_from.add(other)
            if inbound.decodable:
                decodes_from.add(other)
            outbound = link_state(node_id, position, other, other_position)
            if outbound.sensed:
                sensed_by.add(other)
        self._sensed_from[node_id] = sensed_from
        self._sensed_by[node_id] = sensed_by
        self._decodes_from[node_id] = decodes_from

    def _sensed_from_set(self, node_id: int) -> AbstractSet[int]:
        """Nodes ``node_id`` senses (lazily computed in grid mode)."""
        cached = self._sensed_from.get(node_id)
        if cached is not None:
            return cached
        if self._grid is None or node_id not in self._positions:
            return _EMPTY_SET
        self._compute_adjacency(node_id)
        return self._sensed_from[node_id]

    def _sensed_by_set(self, node_id: int) -> AbstractSet[int]:
        """Nodes that sense ``node_id`` (lazily computed in grid mode)."""
        cached = self._sensed_by.get(node_id)
        if cached is not None:
            return cached
        if self._grid is None or node_id not in self._positions:
            return _EMPTY_SET
        self._compute_adjacency(node_id)
        return self._sensed_by[node_id]

    def _decodes_from_set(self, node_id: int) -> AbstractSet[int]:
        """Nodes ``node_id`` can decode (lazily computed in grid mode)."""
        cached = self._decodes_from.get(node_id)
        if cached is not None:
            return cached
        if self._grid is None or node_id not in self._positions:
            return _EMPTY_SET
        self._compute_adjacency(node_id)
        return self._decodes_from[node_id]

    def adjacency_snapshot(
        self, node_ids: Iterable[int]
    ) -> List[Tuple[int, List[int], List[int], List[int]]]:
        """Sorted adjacency lists for ``node_ids`` (computing if needed).

        Returns ``(node_id, sensed_from, sensed_by, decodes_from)``
        tuples with each list sorted — a canonical, picklable form used
        by the tile-partition prewarm to compute adjacency in forked
        workers and ship it back (:mod:`repro.sim.partition`).
        """
        return [
            (
                node_id,
                sorted(self._sensed_from_set(node_id)),
                sorted(self._sensed_by_set(node_id)),
                sorted(self._decodes_from_set(node_id)),
            )
            for node_id in node_ids
        ]

    def install_adjacency(
        self,
        node_id: int,
        sensed_from: Iterable[int],
        sensed_by: Iterable[int],
        decodes_from: Iterable[int],
    ) -> None:
        """Install one node's adjacency sets (the prewarm write-back).

        The sets must hold exactly what :meth:`_compute_adjacency`
        would produce for the current positions — the caller computed
        them (possibly in a forked worker) from this same medium state.
        """
        self._sensed_from[node_id] = set(sensed_from)
        self._sensed_by[node_id] = set(sensed_by)
        self._decodes_from[node_id] = set(decodes_from)
        self._neighbors_cache.pop(node_id, None)
        self._sensed_sources_cache.pop(node_id, None)
        self._sensors_cache.pop(node_id, None)

    def _rebuild_sensing_index(self) -> None:
        """Recompute the incremental indexes under the new adjacency."""
        self._tx_count = {}
        self._handshakes = {}
        self._sensed_active = {}
        self._busy_heaps = {}
        # ``_active`` preserves start order (tx ids are handed out
        # monotonically and dict insertion order survives deletions), so
        # the per-listener maps come out in the same order a full scan
        # of ``_active`` would produce.
        for tx_id, tx in self._active.items():
            self._index_transmission(tx_id, tx)

    @property
    def positions(self) -> Mapping[int, Point]:
        """Read-only view of node id -> (x, y); never copied."""
        return MappingProxyType(self._positions)

    def neighbors(self, node_id: int) -> FrozenSet[int]:
        """Nodes whose frames ``node_id`` can decode (one-hop neighbors)."""
        cached = self._neighbors_cache.get(node_id)
        if cached is None:
            cached = self._neighbors_cache[node_id] = frozenset(
                self._decodes_from_set(node_id)
            )
        return cached

    def sensed_sources(self, node_id: int) -> FrozenSet[int]:
        """Nodes whose transmissions ``node_id`` senses as busy air."""
        cached = self._sensed_sources_cache.get(node_id)
        if cached is None:
            cached = self._sensed_sources_cache[node_id] = frozenset(
                self._sensed_from_set(node_id)
            )
        return cached

    def sensors_of(self, node_id: int) -> FrozenSet[int]:
        """Nodes that sense ``node_id``'s transmissions (cached frozenset)."""
        cached = self._sensors_cache.get(node_id)
        if cached is None:
            cached = self._sensors_cache[node_id] = frozenset(
                self._sensed_by_set(node_id)
            )
        return cached

    def can_decode(self, sender: int, receiver: int) -> bool:
        return sender in self._decodes_from_set(receiver)

    def clean_decode(self, sender: int, receiver: int) -> bool:
        """True iff ``receiver`` can decode ``sender``'s frame right now.

        The full monitor-side decode predicate: in decode range, the
        receiver itself silent (no clear-channel assessment while
        transmitting), and no other sensed transmission garbling the
        preamble.  This is the physics half of the decode path; link
        faults (:mod:`repro.faults`) degrade it further, observer-side.
        """
        return (
            self.can_decode(sender, receiver)
            and not self.is_transmitting(receiver)
            and not self.interferers_at(receiver, exclude_sender=sender)
        )

    def senses(self, transmitter: int, listener: int) -> bool:
        return transmitter in self._sensed_from_set(listener)

    # -- transmissions -----------------------------------------------------

    def _index_transmission(self, tx_id: int, tx: Transmission) -> None:
        """Fold one transmission into the incremental indexes."""
        sender = tx.sender
        self._tx_count[sender] = self._tx_count.get(sender, 0) + 1
        if tx.kind == "handshake":
            self._handshakes[tx_id] = tx
        entry = (-tx.end_slot, tx_id)
        sensed_active = self._sensed_active
        busy_heaps = self._busy_heaps
        for listener in self._sensed_by_set(sender):
            tracked = sensed_active.get(listener)
            if tracked is None:
                tracked = sensed_active[listener] = {}
            tracked[tx_id] = sender
            heap = busy_heaps.get(listener)
            if heap is None:
                heap = busy_heaps[listener] = []
            heapq.heappush(heap, entry)

    def _unindex_transmission(self, tx_id: int, tx: Transmission) -> None:
        """Drop one transmission from the incremental indexes.

        Heap entries are left behind and pruned lazily by
        :meth:`busy_until`; when a listener's sensed set empties, its
        heap is cleared outright (every entry is stale by definition),
        and otherwise the heap is compacted once stale entries outgrow
        the live ones (see :meth:`_maybe_compact_heap`).
        """
        sender = tx.sender
        count = self._tx_count[sender] - 1
        if count:
            self._tx_count[sender] = count
        else:
            del self._tx_count[sender]
        self._handshakes.pop(tx_id, None)
        for listener in self._sensed_by_set(sender):
            tracked = self._sensed_active.get(listener)
            if tracked is None:
                continue
            tracked.pop(tx_id, None)
            if not tracked:
                heap = self._busy_heaps.get(listener)
                if heap:
                    heap.clear()
            else:
                self._maybe_compact_heap(listener, tracked)

    def _maybe_compact_heap(self, listener: int, tracked: Dict[int, int]) -> None:
        """Rebuild a busy-until heap once stale entries dominate.

        A heap legitimately holds up to two entries per live
        transmission (the original end plus one extension); beyond
        ``2 * live + slack`` everything extra is garbage from ended
        transmissions, so rebuild from the live tracked set.  This
        bounds heap size at O(active sensed transmissions) even on
        long runs where ``tracked`` never empties (the lazy-deletion
        path alone only clears a heap at that point).
        """
        heap = self._busy_heaps.get(listener)
        if heap is None or len(heap) <= 2 * len(tracked) + _HEAP_COMPACT_SLACK:
            return
        active = self._active
        heap[:] = [(-active[t].end_slot, t) for t in tracked]
        heapq.heapify(heap)

    def start_transmission(self, transmission: Transmission) -> int:
        """Register a transmission; returns its medium-assigned id."""
        if transmission.end_slot <= transmission.start_slot:
            raise ValueError("transmission must have positive duration")
        tx_id = self._next_tx_id
        self._next_tx_id += 1
        self._active[tx_id] = transmission
        self._index_transmission(tx_id, transmission)
        return tx_id

    def end_transmission(self, tx_id: int) -> Transmission:
        """Remove a finished transmission; returns it."""
        tx = self._active.pop(tx_id)
        self._unindex_transmission(tx_id, tx)
        return tx

    def extend_transmission(
        self, tx_id: int, end_slot: Slots, kind: Optional[str] = None
    ) -> Transmission:
        """Grow an in-flight transmission's busy period (never shrink).

        The engine uses this for the handshake -> exchange phase change:
        the busy period extends through DATA + ACK and the ``kind``
        flips to ``"exchange"``.  Returns the transmission.  Mutating
        ``Transmission.end_slot`` directly would leave the incremental
        busy-until heaps stale — this is the only supported way.
        """
        tx = self._active[tx_id]
        if end_slot < tx.end_slot:
            raise ValueError(
                f"cannot shrink transmission {tx_id} "
                f"({tx.end_slot} -> {end_slot})"
            )
        grew = end_slot > tx.end_slot
        tx.end_slot = end_slot
        if kind is not None and kind != tx.kind:
            tx.kind = kind
            if kind == "handshake":
                self._handshakes[tx_id] = tx
            else:
                self._handshakes.pop(tx_id, None)
        if grew:
            entry = (-end_slot, tx_id)
            for listener in self._sensed_by_set(tx.sender):
                heap = self._busy_heaps.get(listener)
                if heap is not None:
                    heapq.heappush(heap, entry)
                    tracked = self._sensed_active.get(listener)
                    if tracked:
                        self._maybe_compact_heap(listener, tracked)
        return tx

    def active_transmissions(self) -> Iterable[Transmission]:
        """The in-flight transmissions, in start order (live view)."""
        return self._active.values()

    def active_items(self) -> Iterable[Tuple[int, Transmission]]:
        """``(tx_id, transmission)`` pairs for all in-flight transmissions,
        in start order (live view — do not mutate the medium while
        iterating)."""
        return self._active.items()

    def active_handshakes(self) -> Iterable[Tuple[int, Transmission]]:
        """``(tx_id, transmission)`` pairs for in-flight *handshake*-kind
        transmissions only, in start order (live view)."""
        return self._handshakes.items()

    def active_item(self, tx_id: int) -> Transmission:
        """The in-flight transmission with medium id ``tx_id``."""
        return self._active[tx_id]

    def is_transmitting(self, node_id: int) -> bool:
        return node_id in self._tx_count

    # -- carrier sensing ---------------------------------------------------

    def senses_busy(self, node_id: int) -> bool:
        """True if ``node_id`` currently senses the channel busy.

        A node's own transmission does not count: while transmitting it
        is not performing clear-channel assessment.  (A node is never in
        its own ``sensed_from`` set, so the index needs no special
        case.)
        """
        return bool(self._sensed_active.get(node_id))

    def busy_until(self, node_id: int) -> Optional[Slots]:
        """Last end slot among transmissions ``node_id`` senses, or None."""
        if not self._sensed_active.get(node_id):
            return None
        heap = self._busy_heaps[node_id]
        active = self._active
        while heap:
            neg_end, tx_id = heap[0]
            tx = active.get(tx_id)
            if tx is not None and tx.end_slot == -neg_end:
                return -neg_end
            # Stale: the transmission ended, or this entry was
            # superseded by an extension (the larger end sorts first in
            # the max-heap, so a live superseding entry was already
            # inspected).
            heapq.heappop(heap)
        return None

    def interferers_at(self, receiver: int, exclude_sender: int) -> List[int]:
        """Active transmitters (other than ``exclude_sender``) that the
        receiver senses — i.e., sources of collision at ``receiver``."""
        tracked = self._sensed_active.get(receiver)
        if not tracked:
            return []
        return [s for s in tracked.values() if s != exclude_sender]
