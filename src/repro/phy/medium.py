"""The shared wireless medium: active transmissions and carrier sensing.

The medium is the meeting point of the PHY and the slotted MAC engine.
It tracks which nodes are transmitting (and until which slot), and
answers, per node, the question the DCF asks every slot boundary: *do I
sense the channel busy right now, and if so until when?*

Spatial reachability (who senses / can decode whom) is precomputed into
adjacency sets whenever node positions change; with at most a few hundred
nodes the O(n^2) rebuild is cheap against the cost of querying it on
every channel-state transition.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Transmission:
    """One atomic busy period on the air.

    The slotted MAC models a full RTS/CTS/DATA/ACK exchange as a single
    busy period of precomputed length (see ``repro.mac.constants``); the
    ``kind`` records what the period carries for observers and collision
    accounting.
    """

    sender: int
    receiver: int
    start_slot: int
    end_slot: int
    kind: str = "data"
    frame: object = None
    packet: object = None
    corrupted: bool = field(default=False, compare=False)

    @property
    def duration(self):
        return self.end_slot - self.start_slot


class Medium:
    """Tracks active transmissions and per-node carrier sensing."""

    def __init__(self, channel):
        self.channel = channel
        self._positions = {}
        #: node_id -> set of node_ids whose transmissions it senses
        self._sensed_from = {}
        #: node_id -> set of node_ids that sense *its* transmissions
        self._sensed_by = {}
        #: node_id -> set of node_ids whose frames it can decode
        self._decodes_from = {}
        self._active = {}
        self._next_tx_id = 0

    # -- topology ----------------------------------------------------------

    def update_positions(self, positions):
        """Install new node positions and rebuild reachability sets.

        ``positions`` maps node id -> (x, y).  Call once at setup and
        again at every mobility epoch.
        """
        self._positions = dict(positions)
        ids = sorted(self._positions)
        self._sensed_from = {i: set() for i in ids}
        self._sensed_by = {i: set() for i in ids}
        self._decodes_from = {i: set() for i in ids}
        for idx, a in enumerate(ids):
            for b in ids[idx + 1 :]:
                state_ab = self.channel.link_state(
                    a, self._positions[a], b, self._positions[b]
                )
                state_ba = self.channel.link_state(
                    b, self._positions[b], a, self._positions[a]
                )
                if state_ab.sensed:
                    self._sensed_from[b].add(a)
                    self._sensed_by[a].add(b)
                if state_ab.decodable:
                    self._decodes_from[b].add(a)
                if state_ba.sensed:
                    self._sensed_from[a].add(b)
                    self._sensed_by[b].add(a)
                if state_ba.decodable:
                    self._decodes_from[a].add(b)

    @property
    def positions(self):
        return dict(self._positions)

    def neighbors(self, node_id):
        """Nodes whose frames ``node_id`` can decode (one-hop neighbors)."""
        return frozenset(self._decodes_from.get(node_id, ()))

    def sensed_sources(self, node_id):
        """Nodes whose transmissions ``node_id`` senses as busy air."""
        return frozenset(self._sensed_from.get(node_id, ()))

    def sensors_of(self, node_id):
        """Nodes that sense ``node_id``'s transmissions."""
        return frozenset(self._sensed_by.get(node_id, ()))

    def can_decode(self, sender, receiver):
        return sender in self._decodes_from.get(receiver, ())

    def senses(self, transmitter, listener):
        return transmitter in self._sensed_from.get(listener, ())

    # -- transmissions -----------------------------------------------------

    def start_transmission(self, transmission):
        """Register a transmission; returns its medium-assigned id."""
        if transmission.end_slot <= transmission.start_slot:
            raise ValueError("transmission must have positive duration")
        tx_id = self._next_tx_id
        self._next_tx_id += 1
        self._active[tx_id] = transmission
        return tx_id

    def end_transmission(self, tx_id):
        """Remove a finished transmission; returns it."""
        return self._active.pop(tx_id)

    def active_transmissions(self):
        return list(self._active.values())

    def active_items(self):
        """``(tx_id, transmission)`` pairs for all in-flight transmissions."""
        return list(self._active.items())

    def active_item(self, tx_id):
        """The in-flight transmission with medium id ``tx_id``."""
        return self._active[tx_id]

    def is_transmitting(self, node_id):
        return any(t.sender == node_id for t in self._active.values())

    # -- carrier sensing ---------------------------------------------------

    def senses_busy(self, node_id):
        """True if ``node_id`` currently senses the channel busy.

        A node's own transmission does not count: while transmitting it
        is not performing clear-channel assessment.
        """
        sensed = self._sensed_from.get(node_id, ())
        return any(
            t.sender in sensed for t in self._active.values() if t.sender != node_id
        )

    def busy_until(self, node_id):
        """Last end slot among transmissions ``node_id`` senses, or None."""
        sensed = self._sensed_from.get(node_id, ())
        ends = [
            t.end_slot
            for t in self._active.values()
            if t.sender != node_id and t.sender in sensed
        ]
        return max(ends) if ends else None

    def interferers_at(self, receiver, exclude_sender):
        """Active transmitters (other than ``exclude_sender``) that the
        receiver senses — i.e., sources of collision at ``receiver``."""
        sensed = self._sensed_from.get(receiver, ())
        return [
            t.sender
            for t in self._active.values()
            if t.sender != exclude_sender and t.sender in sensed
        ]
