"""Radio propagation models.

The paper (Section 5) uses the ns-2 shadowing model

    Pr(d)/Pr(d0) [dB] = -10 * beta * log10(d / d0) + X_sigma

where ``beta`` is the path-loss exponent and ``X_sigma`` a zero-mean
Gaussian in dB ("to take into account long term fading effects"), with
``beta = 2`` and ``sigma = 0`` for the free-space baseline.

Rather than carry absolute powers around, the simulator works with
*effective ranges*: a deterministic nominal range (250 m transmission /
550 m sensing, Table 1) plus a per-link dB margin drawn from the
shadowing distribution.  A link with margin ``X`` dB behaves as if the
nominal range were scaled by ``10^(X / (10 * beta))`` — algebraically
identical to comparing received power against a threshold, but it keeps
the calibration to Table 1's ranges explicit.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional, Tuple

from repro.util.rng import RngStream
from repro.util.units import Meters
from repro.util.validation import check_non_negative, check_positive


def range_to_threshold_margin_db(margin_db: float, path_loss_exponent: float) -> float:
    """Range scale factor equivalent to a received-power margin in dB.

    Solving ``10 * beta * log10(scale) = margin_db`` for ``scale``: a link
    with ``margin_db`` of extra received power reaches ``scale`` times the
    nominal range.
    """
    check_positive(path_loss_exponent, "path_loss_exponent")
    return 10.0 ** (margin_db / (10.0 * path_loss_exponent))


class PropagationModel(ABC):
    """Interface: per-link shadowing margins and effective range scaling."""

    @abstractmethod
    def link_margin_db(self, pair_key: Tuple[int, int]) -> float:
        """Shadowing margin (dB) for an unordered node pair.

        Margins are symmetric (the shadowing loss of a path does not
        depend on direction) and stable for a given pair until
        :meth:`refresh` is called.
        """

    @abstractmethod
    def refresh(self) -> None:
        """Redraw all shadowing margins (e.g., after nodes moved)."""

    def effective_range(self, nominal_range: Meters, pair_key: Tuple[int, int]) -> Meters:
        """Nominal range scaled by the pair's shadowing margin."""
        scale = range_to_threshold_margin_db(
            self.link_margin_db(pair_key), self.path_loss_exponent
        )
        return nominal_range * scale

    @property
    @abstractmethod
    def path_loss_exponent(self) -> float:
        """The path-loss exponent beta."""

    def range_scale_bound(self) -> Optional[float]:
        """Upper bound on ``effective_range / nominal_range``, if finite.

        A finite bound lets :class:`repro.phy.medium.Medium` size a
        spatial-grid cell that provably covers every reachable link
        (``None`` means the margins are unbounded — log-normal
        shadowing draws Gaussian dB deviates with no upper limit — and
        range queries must fall back to the all-pairs scan).  The
        default is conservative: models that do not override this are
        treated as unbounded.
        """
        return None


class FreeSpacePropagation(PropagationModel):
    """Deterministic free-space propagation (beta = 2, sigma = 0).

    Every link sees exactly the nominal ranges; this is the paper's
    baseline configuration.
    """

    def __init__(self, path_loss_exponent: float = 2.0) -> None:
        self._beta = check_positive(path_loss_exponent, "path_loss_exponent")

    @property
    def path_loss_exponent(self) -> float:
        return self._beta

    def link_margin_db(self, pair_key: Tuple[int, int]) -> float:
        return 0.0

    def refresh(self) -> None:
        pass

    def range_scale_bound(self) -> Optional[float]:
        # Zero margin on every link: effective range == nominal range.
        return 1.0


class LogNormalShadowing(PropagationModel):
    """Log-normal shadowing: per-link Gaussian dB margins.

    Parameters
    ----------
    sigma_db:
        Standard deviation of the shadowing deviate in dB.
    path_loss_exponent:
        The exponent beta of the underlying log-distance model.
    rng:
        Stream used to draw margins; defaults to a fresh stream with
        seed 0 (pass an explicit stream for reproducible experiments).
    """

    def __init__(
        self,
        sigma_db: float,
        path_loss_exponent: float = 2.0,
        rng: Optional[RngStream] = None,
    ) -> None:
        self.sigma_db = check_non_negative(sigma_db, "sigma_db")
        self._beta = check_positive(path_loss_exponent, "path_loss_exponent")
        self._rng = rng if rng is not None else RngStream(0, "shadowing")
        self._margins: Dict[Tuple[int, int], float] = {}

    @property
    def path_loss_exponent(self) -> float:
        return self._beta

    def link_margin_db(self, pair_key: Tuple[int, int]) -> float:
        key = self._normalize(pair_key)
        margin = self._margins.get(key)
        if margin is None:
            margin = self._rng.normal(0.0, self.sigma_db) if self.sigma_db else 0.0
            self._margins[key] = margin
        return margin

    def refresh(self) -> None:
        self._margins.clear()

    def range_scale_bound(self) -> Optional[float]:
        # Gaussian margins are unbounded for sigma > 0; with sigma == 0
        # the model degenerates to free space.
        return 1.0 if self.sigma_db == 0 else None

    @staticmethod
    def _normalize(pair_key: Tuple[int, int]) -> Tuple[int, int]:
        a, b = pair_key
        return (a, b) if a <= b else (b, a)
