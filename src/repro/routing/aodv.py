"""A simplified AODV (Ad hoc On-demand Distance Vector) router.

Implements the reactive core of AODV: when a node needs a route it
floods a route request (RREQ) with a fresh request id; the destination
(or a node with a fresh-enough route) answers with a route reply (RREP)
that travels back along the reverse path, installing next-hop entries
with destination sequence numbers and hop counts at every hop.

The flood is executed over the *current connectivity graph* as a
breadth-first expansion, charging one control message per (node, RREQ)
forwarding and per RREP hop — route *state* and control *overhead* are
modeled faithfully, while the control frames themselves are not pushed
through the MAC contention (the paper's evaluation traffic is one-hop,
so AODV contributes negligible air time there; see DESIGN.md §7).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.util.units import Slots


@dataclass
class RouteEntry:
    """One node's routing-table entry for a destination."""

    destination: int
    next_hop: int
    hop_count: int
    dest_seq: int
    installed_slot: Slots = 0

    @property
    def is_direct(self) -> bool:
        return self.hop_count == 1


class AodvRouter:
    """Network-wide AODV state over a link provider.

    ``link_provider`` is any object with ``neighbors(node_id)`` returning
    the ids a node can currently exchange frames with (the simulator's
    :class:`~repro.phy.Medium` qualifies).  One router instance manages
    the tables of all nodes, which mirrors how the simulator owns all
    MACs; per-node views stay strictly separate inside.
    """

    def __init__(self, link_provider: Any) -> None:
        self.links = link_provider
        #: node -> destination -> RouteEntry
        self.tables: Dict[int, Dict[int, RouteEntry]] = {}
        #: destination -> its own monotonically increasing sequence number
        self._dest_seq: Dict[int, int] = {}
        self._rreq_id = 0
        self.control_messages = 0
        self.rreq_floods = 0
        self.failed_discoveries = 0

    # -- queries ------------------------------------------------------------

    def route(self, source: int, destination: int, slot: Slots = 0) -> Optional[RouteEntry]:
        """The :class:`RouteEntry` at ``source`` for ``destination``,
        discovering one on demand.  Returns None if unreachable."""
        if source == destination:
            raise ValueError("route() from a node to itself")
        entry = self.tables.get(source, {}).get(destination)
        if entry is not None:
            return entry
        return self._discover(source, destination, slot)

    def next_hop(self, source: int, destination: int, slot: Slots = 0) -> Optional[int]:
        """Next hop toward ``destination``, or None if unreachable."""
        entry = self.route(source, destination, slot)
        return entry.next_hop if entry is not None else None

    # -- route maintenance ----------------------------------------------------

    def invalidate_all(self) -> None:
        """Drop every cached route (e.g., after a mobility epoch)."""
        self.tables.clear()

    def invalidate_link(self, a: int, b: int) -> None:
        """Drop routes using the broken link ``a -> b`` (both directions).

        AODV would also propagate RERR messages; we charge one control
        message per removed entry in lieu of the RERR flood.
        """
        for node, table in self.tables.items():
            stale = [
                dest
                for dest, entry in table.items()
                if (node == a and entry.next_hop == b)
                or (node == b and entry.next_hop == a)
            ]
            for dest in stale:
                del table[dest]
                self.control_messages += 1

    # -- discovery -------------------------------------------------------------

    def _discover(self, source: int, destination: int, slot: Slots) -> Optional[RouteEntry]:
        """Flood an RREQ from ``source``; install forward/reverse routes."""
        self._rreq_id += 1
        self.rreq_floods += 1
        parents = {source: None}
        frontier = deque([source])
        found = False
        while frontier:
            node = frontier.popleft()
            if node == destination:
                found = True
                break
            for neighbor in sorted(self.links.neighbors(node)):
                if neighbor not in parents:
                    parents[neighbor] = node
                    frontier.append(neighbor)
                    self.control_messages += 1  # one RREQ forwarding
        if not found:
            self.failed_discoveries += 1
            return None

        # Reconstruct the discovered path source -> destination.
        path = [destination]
        while parents[path[-1]] is not None:
            path.append(parents[path[-1]])
        path.reverse()

        seq = self._dest_seq[destination] = self._dest_seq.get(destination, 0) + 1
        # RREP travels destination -> source, installing forward routes.
        for i in range(len(path) - 1):
            hop_count = len(path) - 1 - i
            self._install(path[i], destination, path[i + 1], hop_count, seq, slot)
            self.control_messages += 1  # one RREP hop
        # Reverse routes toward the source (set up by the RREQ pass).
        for i in range(len(path) - 1, 0, -1):
            self._install(path[i], source, path[i - 1], i, 0, slot)
        return self.tables[source][destination]

    def _install(
        self,
        node: int,
        destination: int,
        next_hop: int,
        hop_count: int,
        dest_seq: int,
        slot: Slots,
    ) -> None:
        table = self.tables.setdefault(node, {})
        existing = table.get(destination)
        # AODV freshness rule: prefer higher destination sequence numbers,
        # then shorter routes.
        if existing is not None and (
            existing.dest_seq > dest_seq
            or (existing.dest_seq == dest_seq and existing.hop_count <= hop_count)
        ):
            return
        table[destination] = RouteEntry(
            destination=destination,
            next_hop=next_hop,
            hop_count=hop_count,
            dest_seq=dest_seq,
            installed_slot=slot,
        )
