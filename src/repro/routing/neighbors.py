"""One-hop neighbor tables.

Monitors need to know who their one-hop neighbors are (they regenerate
each neighbor's PRS from its MAC address), and the router needs the
connectivity graph.  In a deployment this comes from hello beacons; in
the simulator it is read off the medium's decode adjacency, with an
optional staleness model so mobile scenarios do not get instantaneous
perfect knowledge.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, Optional

from repro.util.units import Slots
from repro.util.validation import check_non_negative


class NeighborTable:
    """Tracks one node's current neighbor set.

    ``refresh`` installs a new snapshot (e.g., at each hello interval or
    mobility epoch); ``neighbors`` returns the last snapshot.  The table
    remembers when each neighbor was last confirmed so callers can age
    entries out.
    """

    def __init__(self, node_id: int, expiry_slots: Optional[Slots] = None) -> None:
        self.node_id = node_id
        self.expiry_slots = expiry_slots
        self._last_seen: Dict[int, Slots] = {}

    def refresh(self, neighbor_ids: Iterable[int], slot: Slots = 0) -> None:
        """Confirm the given neighbors as reachable at ``slot``."""
        check_non_negative(slot, "slot")
        for neighbor in neighbor_ids:
            if neighbor != self.node_id:
                self._last_seen[neighbor] = slot

    def neighbors(self, slot: Optional[Slots] = None) -> FrozenSet[int]:
        """Current neighbor ids, dropping expired entries if aging is on."""
        if self.expiry_slots is None or slot is None:
            return frozenset(self._last_seen)
        horizon = slot - self.expiry_slots
        return frozenset(
            n for n, seen in self._last_seen.items() if seen >= horizon
        )

    def forget(self, neighbor_id: int) -> None:
        self._last_seen.pop(neighbor_id, None)

    def __contains__(self, neighbor_id: int) -> bool:
        return neighbor_id in self._last_seen


def build_neighbor_tables(
    medium: Any, expiry_slots: Optional[Slots] = None, slot: Slots = 0
) -> Dict[int, NeighborTable]:
    """One :class:`NeighborTable` per node, seeded from the medium."""
    tables: Dict[int, NeighborTable] = {}
    for node_id in medium.positions:
        table = NeighborTable(node_id, expiry_slots=expiry_slots)
        table.refresh(medium.neighbors(node_id), slot=slot)
        tables[node_id] = table
    return tables
