"""Hop-by-hop relaying of multi-hop packets through the MAC simulator.

`MultiHopService` attaches to a simulation as a listener.  Packets whose
``final_destination`` differs from their MAC receiver are, on successful
delivery, re-enqueued at the receiver toward the next AODV hop — so a
multi-hop flow really does contend for the channel once per hop, which
is what makes multi-hop traffic load the medium realistically.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.routing.aodv import AodvRouter
from repro.sim.listeners import SimulationListener
from repro.traffic.queue import Packet
from repro.util.units import Slots


class MultiHopService(SimulationListener):
    """Forwards packets along AODV routes, one MAC hop at a time."""

    def __init__(
        self,
        macs: Dict[int, Any],
        router: Optional[AodvRouter] = None,
        link_provider: Optional[Any] = None,
    ) -> None:
        if router is None:
            if link_provider is None:
                raise ValueError("MultiHopService needs a router or link_provider")
            router = AodvRouter(link_provider)
        self.router = router
        self.macs = macs
        self.delivered_end_to_end = 0
        self.forwarded = 0
        self.routing_failures = 0

    def first_hop(self, source: int, final_destination: int, slot: Slots = 0) -> Optional[int]:
        """MAC receiver for a packet leaving ``source``; None if no route."""
        hop = self.router.next_hop(source, final_destination, slot)
        if hop is None:
            self.routing_failures += 1
        return hop

    def on_transmission_end(self, slot: Slots, transmission: Any, success: bool, medium: Any) -> None:
        if not success or transmission.packet is None:
            return
        packet = transmission.packet
        final = packet.final_destination
        if final is None or final == transmission.receiver:
            if final is not None:
                self.delivered_end_to_end += 1
            return
        next_hop = self.router.next_hop(transmission.receiver, final, slot)
        if next_hop is None:
            self.routing_failures += 1
            return
        relay = Packet(
            source=transmission.receiver,
            destination=next_hop,
            size_bytes=packet.size_bytes,
            created_slot=packet.created_slot,
            final_destination=final,
        )
        self.macs[transmission.receiver].enqueue(relay)
        self.forwarded += 1

    def on_positions_updated(self, slot: Slots, positions: Sequence[Any], medium: Any) -> None:
        # Topology changed: cached routes may now point at broken links.
        self.router.invalidate_all()
