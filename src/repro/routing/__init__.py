"""Routing substrate: neighbor tables and a simplified AODV.

The paper runs AODV under its one-hop evaluation traffic, so routing
contributes control overhead and next-hop resolution rather than the
phenomena under study.  We provide a functional reactive router
(RREQ/RREP flooding with sequence numbers and hop counts over the
current connectivity graph) plus a relay service that forwards
multi-hop packets hop by hop through the MAC simulator.
"""

from repro.routing.aodv import AodvRouter, RouteEntry
from repro.routing.neighbors import NeighborTable
from repro.routing.relay import MultiHopService

__all__ = ["AodvRouter", "MultiHopService", "NeighborTable", "RouteEntry"]
