"""Command-line interface: run the paper's experiments from a shell.

Usage::

    python -m repro.cli table1
    python -m repro.cli fig3 [--loads 0.01 0.05 ...] [--runs N]
    python -m repro.cli fig4
    python -m repro.cli fig5 [--loads 0.6] [--pm 25 50 65] [--windows N]
    python -m repro.cli fig6 [--loads 0.6] [--windows N]
    python -m repro.cli demo [--pm 60] [--load 0.6] [--seconds 6]

The global ``--check`` flag (before the subcommand) installs the runtime
invariant checker from :mod:`repro.checks.invariants` on every engine the
run builds; any broken engine contract aborts with a precise diagnostic.

Observability (``repro.obs``) flags, accepted by every subcommand:

``--metrics``
    attach a :class:`repro.obs.MetricsListener` to every engine the
    command builds (the process-wide shared registry accumulates across
    an experiment sweep's many runs) and print the snapshot at the end;
``--json OUT``
    write a :class:`repro.obs.RunManifest` to ``OUT``: seed, config,
    REPRO_SCALE, package version, wall-clock duration, the metric
    snapshot (with ``--metrics``) and the result rows;
``--profile``
    time the hot loop.  ``demo`` instruments its single engine with the
    per-phase :class:`repro.obs.profile.EngineProfiler`; sweep commands
    report overall wall-clock (plus slots/sec when ``--metrics`` is on);
``--jobs N``
    run independent trials on ``N`` worker processes (0 = all cores;
    defaults to ``REPRO_JOBS``, else serial).  Results — sweep points,
    metrics snapshots, manifests — are identical for any value; see
    :mod:`repro.experiments.parallel`.

``--trace OUT``
    switch on the deterministic slot-clocked span tracer
    (:mod:`repro.obs.trace`) and write the flight recorder's Chrome
    trace-event JSON to ``OUT`` (load it in Perfetto or
    ``chrome://tracing``); same-seed runs produce byte-identical traces
    and verdict streams are unchanged with tracing on;
``--metrics-out OUT``
    write the metric snapshot in Prometheus text exposition format to
    ``OUT`` (implies ``--metrics``).

``demo`` additionally accepts ``--audit OUT`` to export the detector's
decision audit log as JSONL, and ``--provenance OUT`` to export each
verdict's full evidence chain (:mod:`repro.obs.provenance`) as JSONL.

Everything still prints the same plain-text tables the benchmarks emit.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

#: argparse Namespace entries that are plumbing, not run configuration.
_INTERNAL_ARGS = frozenset(
    {
        "func",
        "command",
        "check",
        "metrics",
        "json_out",
        "profile",
        "audit_out",
        "trace_out",
        "metrics_out",
        "provenance_out",
        "results",
        "audit_records",
        "profile_report",
        # The worker count must never influence a run's outputs (the
        # parallel layer guarantees identical results for any jobs
        # value), so it is plumbing, not configuration: manifests stay
        # byte-identical regardless of --jobs.
        "jobs",
    }
)


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments.config import TABLE1

    print(TABLE1.render())
    args.results = {"table1": TABLE1.render()}
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    from repro.experiments.fig3 import (
        DEFAULT_LOAD_SWEEP,
        render_points,
        run_fig3,
    )

    loads = tuple(args.loads) if args.loads else DEFAULT_LOAD_SWEEP
    kwargs = {"loads": loads}
    if args.runs:
        kwargs["runs"] = args.runs
    points = run_fig3(**kwargs)
    print(render_points("Figure 3: grid topology, Poisson traffic", points))
    args.results = {"points": points}
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    from repro.experiments.fig3 import DEFAULT_LOAD_SWEEP, render_points
    from repro.experiments.fig4 import run_fig4

    loads = tuple(args.loads) if args.loads else DEFAULT_LOAD_SWEEP
    kwargs = {"loads": loads}
    if args.runs:
        kwargs["runs"] = args.runs
    points = run_fig4(**kwargs)
    print(render_points("Figure 4: random topology, CBR traffic", points))
    args.results = {"points": points}
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    from repro.experiments.fig5 import (
        DEFAULT_LOADS,
        DEFAULT_PM_SWEEP,
        render_curve,
        run_fig5_mobile,
        run_fig5_static,
    )

    loads = tuple(args.loads) if args.loads else DEFAULT_LOADS
    pm_values = tuple(args.pm) if args.pm else DEFAULT_PM_SWEEP
    kwargs = {"pm_values": pm_values}
    if args.windows:
        kwargs["windows"] = args.windows
    results = run_fig5_static(loads=loads, **kwargs)
    for load, points in results.items():
        print(render_curve(f"Figure 5: P(correct diagnosis), load={load}", points))
        print()
    args.results = {"static": results}
    if args.mobile:
        points = run_fig5_mobile(**kwargs)
        print(render_curve("Figure 5(d): mobile, load=0.6", points))
        args.results["mobile"] = points
    return 0


def _cmd_fig6(args: argparse.Namespace) -> int:
    from repro.experiments.fig6 import (
        DEFAULT_LOADS,
        render_curves,
        run_fig6_mobile,
        run_fig6_static,
    )

    loads = tuple(args.loads) if args.loads else DEFAULT_LOADS
    kwargs = {}
    if args.windows:
        kwargs["windows"] = args.windows
    curves = run_fig6_static(loads=loads, **kwargs)
    print(render_curves("Figure 6(a): P(misdiagnosis), static grid", curves))
    args.results = {"static": curves}
    if args.mobile:
        points = run_fig6_mobile(**kwargs)
        print(render_curves("Figure 6(b): P(misdiagnosis), mobile", {0.6: points}))
        args.results["mobile"] = points
    return 0


def _cmd_faults_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.faults_sweep import (
        DEFAULT_DECODE_SWEEP,
        render_sweep,
        run_fault_sweep,
    )

    decode = tuple(args.decode) if args.decode else DEFAULT_DECODE_SWEEP
    kwargs = {"decode_probs": decode, "pm": args.pm, "load": args.load}
    if args.runs:
        kwargs["runs"] = args.runs
    points = run_fault_sweep(**kwargs)
    print(render_sweep(points))
    total_quarantined = sum(p.cheater_quarantined + p.honest_quarantined
                            for p in points)
    false_accusations = sum(p.false_accusations for p in points)
    print(
        f"quarantined observations: {total_quarantined}, "
        f"false accusations (honest, deterministic): {false_accusations}"
    )
    args.results = {"points": points}
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.analysis.latency import detection_latency
    from repro.analysis.summary import summarize_estimation
    from repro.core.detector import BackoffMisbehaviorDetector, DetectorConfig
    from repro.experiments.scenarios import GridScenario
    from repro.mac.misbehavior import PercentageMisbehavior
    from repro.obs.audit import DecisionAuditLog

    scenario = GridScenario(load=args.load, seed=args.seed)
    _sim, sender, _monitor = scenario.build()
    policies = {sender: PercentageMisbehavior(args.pm)} if args.pm else None
    sim, sender, monitor = scenario.build(policies=policies)
    audit = DecisionAuditLog()
    provenance = None
    if args.provenance_out:
        from repro.obs.provenance import ProvenanceLog

        provenance = ProvenanceLog()
    detector = BackoffMisbehaviorDetector(
        monitor,
        sender,
        config=DetectorConfig(
            sample_size=25,
            known_n=5,
            known_k=5,
            stats_backend=args.stats_backend,
        ),
        audit=audit,
        provenance=provenance,
    )
    sim.add_listener(detector)
    profiler = None
    if args.profile:
        from repro.obs.profile import EngineProfiler

        profiler = EngineProfiler()
        profiler.instrument(sim.engine)
    sim.run(args.seconds)
    if profiler is not None:
        args.profile_report = profiler.finish()

    summary = summarize_estimation(detector)
    latency = detection_latency(detector)
    print(f"samples: {summary.samples}, rho: {detector.rho:.2f}")
    print(
        f"mean dictated {summary.mean_dictated:.1f} vs estimated "
        f"{summary.mean_estimated:.1f} slots "
        f"(shift {summary.relative_shift:.2f})"
    )
    print(f"deterministic violations: {len(detector.violations)}")
    if latency.flagged:
        layer = "deterministic" if latency.deterministic_first else "statistical"
        print(
            f"flagged malicious after {latency.first_flag_seconds:.2f} s "
            f"({latency.samples_at_flag} samples) via the {layer} layer"
        )
    else:
        print("never flagged (as expected for an honest sender)")
    print(
        f"audit: {len(audit)} decisions "
        f"({audit.deterministic_count} deterministic, "
        f"{audit.statistical_count} statistical) "
        f"by rule {audit.counts_by_rule()}"
    )
    checker = sim.engine.invariant_checker
    if checker is not None:
        print(checker.summary())

    args.audit_records = [record.to_dict() for record in audit.records]
    args.results = {
        "samples": summary.samples,
        "mean_dictated": summary.mean_dictated,
        "mean_estimated": summary.mean_estimated,
        "relative_shift": summary.relative_shift,
        "violations": len(detector.violations),
        "flagged": latency.flagged,
        "verdicts": len(detector.verdicts),
    }
    if args.audit_out:
        path = audit.write_jsonl(args.audit_out)
        print(f"wrote audit log to {path}", file=sys.stderr)
    if provenance is not None:
        path = provenance.write_jsonl(args.provenance_out)
        print(
            f"wrote {len(provenance)} provenance records to {path}",
            file=sys.stderr,
        )
    return 0


def _parse_link(text: str):
    """``MONITOR:TAGGED`` -> (int, int), with a readable error."""
    parts = text.split(":")
    if len(parts) != 2:
        raise argparse.ArgumentTypeError(
            f"link must be MONITOR:TAGGED, got {text!r}"
        )
    try:
        return int(parts[0]), int(parts[1])
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"link ids must be integers, got {text!r}"
        ) from None


def _cmd_serve(args: argparse.Namespace) -> int:
    import contextlib
    import dataclasses

    from repro.core.detector import DetectorConfig
    from repro.serve import (
        ServeConfig,
        iter_file,
        iter_follow,
        iter_handle,
        iter_socket,
        run_serve,
    )
    from repro.serve.ingest import BoundedLineQueue

    detector = dataclasses.replace(
        DetectorConfig(sample_size=args.sample_size, known_n=5, known_k=5),
        warmup_slots=args.warmup,
    )
    config = ServeConfig(
        detector=detector,
        separation=args.separation,
        flush_every=args.flush_every,
        maintain_every=args.maintain_every,
        max_links=args.max_links,
        observation_retention=args.retention,
        discover=not args.no_discover,
    )
    queue = BoundedLineQueue(args.queue_cap)
    if args.follow:
        lines = iter_follow(args.follow, queue)
    elif args.socket:
        lines = iter_socket(args.socket, queue)
    elif args.input and args.input != "-":
        lines = iter_file(args.input)
    else:
        lines = iter_handle(sys.stdin)

    with contextlib.ExitStack() as stack:
        audit_sink = (
            stack.enter_context(open(args.audit_out, "w", encoding="utf-8"))
            if args.audit_out
            else None
        )
        provenance_sink = (
            stack.enter_context(
                open(args.provenance_out, "w", encoding="utf-8")
            )
            if args.provenance_out
            else None
        )
        # Live sources (tail, socket) cannot be replayed into forked
        # workers; they always run single-session.  Replay sources
        # honor --jobs / REPRO_JOBS through the pool's resolution.
        live = bool(args.follow or args.socket)
        result = run_serve(
            lines,
            config=config,
            links=args.links or (),
            jobs=1 if live else None,
            audit_sink=audit_sink,
            provenance_sink=provenance_sink,
        )

    summary = result.summary()
    print(
        f"links: {summary['links']} tracked, "
        f"{summary['evicted_links']} evicted"
    )
    print(
        f"events: {summary['events']} accepted "
        f"({result.stream_snapshot['counters'].get('serve.lines', 0)} lines, "
        f"{sum(summary['rejected'].values())} rejected), "
        f"queue drops: {queue.dropped}"
    )
    for reason, count in summary["rejected"].items():
        print(f"  rejected.{reason}: {count}")
    print(
        f"verdicts: {summary['verdicts']} "
        f"({summary['violations']} deterministic violations) over "
        f"{summary['observations']} observations in "
        f"{summary['flushes']} flushes"
    )
    if args.metrics:
        # Fold the session registries into the shared runtime registry
        # so the standard --metrics / --metrics-out tail sees them.
        from repro.obs.runtime import shared_registry

        registry = shared_registry()
        registry.merge_snapshot(result.stream_snapshot)
        registry.merge_snapshot(result.link_snapshot)
    args.results = dict(summary)
    args.results["queue_dropped"] = queue.dropped
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Detecting MAC Layer Back-off Timer "
        "Violations in Mobile Ad Hoc Networks' (ICDCS 2006)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="install the runtime invariant checker on every simulation "
        "engine (see repro.checks)",
    )
    # Observability flags, shared by every subcommand (repro.obs).
    obs = argparse.ArgumentParser(add_help=False)
    obs.add_argument(
        "--metrics",
        action="store_true",
        help="collect engine/detector metrics into the shared registry "
        "and print the snapshot",
    )
    obs.add_argument(
        "--json",
        dest="json_out",
        metavar="OUT",
        default=None,
        help="write a machine-readable run manifest (seed, config, "
        "REPRO_SCALE, metrics, audit, results) to OUT",
    )
    obs.add_argument(
        "--trace",
        dest="trace_out",
        metavar="OUT",
        default=None,
        help="record a deterministic slot-clocked trace and write it as "
        "Chrome trace-event JSON (Perfetto-loadable) to OUT",
    )
    obs.add_argument(
        "--metrics-out",
        dest="metrics_out",
        metavar="OUT",
        default=None,
        help="write the metric snapshot in Prometheus text format to OUT "
        "(implies --metrics)",
    )
    obs.add_argument(
        "--profile",
        action="store_true",
        help="measure slot throughput (wall clock; engine phase "
        "breakdown for `demo`)",
    )
    obs.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for independent trials (0 = all cores; "
        "default: REPRO_JOBS or serial); results are identical for "
        "any value",
    )
    obs.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help="inject deterministic monitor-side link faults, e.g. "
        "'decode=0.3,corrupt=0.1,burst=0.2:3000,seed=7' (see "
        "repro.faults; default: REPRO_FAULTS or clean channels)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p1 = sub.add_parser("table1", parents=[obs], help="print Table 1")
    p1.set_defaults(func=_cmd_table1)

    for name, func in (("fig3", _cmd_fig3), ("fig4", _cmd_fig4)):
        p = sub.add_parser(
            name, parents=[obs], help=f"run the {name} probability sweep"
        )
        p.add_argument("--loads", nargs="*", type=float)
        p.add_argument("--runs", type=int)
        p.set_defaults(func=func)

    p5 = sub.add_parser("fig5", parents=[obs], help="detection probability curves")
    p5.add_argument("--loads", nargs="*", type=float)
    p5.add_argument("--pm", nargs="*", type=int)
    p5.add_argument("--windows", type=int)
    p5.add_argument("--mobile", action="store_true")
    p5.set_defaults(func=_cmd_fig5)

    p6 = sub.add_parser("fig6", parents=[obs], help="misdiagnosis curves")
    p6.add_argument("--loads", nargs="*", type=float)
    p6.add_argument("--windows", type=int)
    p6.add_argument("--mobile", action="store_true")
    p6.set_defaults(func=_cmd_fig6)

    pf = sub.add_parser(
        "faults-sweep",
        parents=[obs],
        help="detection vs. false accusation across impairment intensities",
    )
    pf.add_argument("--decode", nargs="*", type=float)
    pf.add_argument("--pm", type=int, default=60)
    pf.add_argument("--load", type=float, default=0.6)
    pf.add_argument("--runs", type=int)
    pf.set_defaults(func=_cmd_faults_sweep)

    demo = sub.add_parser(
        "demo", parents=[obs], help="one detection run with a summary"
    )
    demo.add_argument("--pm", type=int, default=60)
    demo.add_argument("--load", type=float, default=0.6)
    demo.add_argument("--seconds", type=float, default=6.0)
    demo.add_argument("--seed", type=int, default=42)
    demo.add_argument(
        "--audit",
        dest="audit_out",
        metavar="OUT",
        default=None,
        help="export the detector decision audit log as JSONL to OUT",
    )
    demo.add_argument(
        "--stats-backend",
        choices=("scalar", "batched"),
        default="scalar",
        help="statistical backend for the detector: the scalar reference "
        "path or the vectorized batched kernel (verdict-identical)",
    )
    demo.add_argument(
        "--provenance",
        dest="provenance_out",
        metavar="OUT",
        default=None,
        help="export each verdict's evidence chain (observations, window "
        "bounds, rank-sum inputs, ARMA state) as JSONL to OUT",
    )
    demo.set_defaults(func=_cmd_demo)

    serve = sub.add_parser(
        "serve",
        parents=[obs],
        help="streaming detection-as-a-service: replay or follow an "
        "ObservedTransmission wire stream with bounded memory",
    )
    source = serve.add_mutually_exclusive_group()
    source.add_argument(
        "--input",
        metavar="PATH",
        default=None,
        help="read the stream from PATH once ('-' = stdin, the default)",
    )
    source.add_argument(
        "--follow",
        metavar="PATH",
        default=None,
        help="tail PATH: replay existing lines, then poll for appends "
        "until a shutdown record",
    )
    source.add_argument(
        "--socket",
        metavar="PATH",
        default=None,
        help="listen on a unix stream socket at PATH for one producer",
    )
    serve.add_argument(
        "--links",
        nargs="*",
        type=_parse_link,
        metavar="MONITOR:TAGGED",
        help="pre-register links (default: discover from decoded "
        "start records)",
    )
    serve.add_argument(
        "--no-discover",
        action="store_true",
        help="track only --links; ignore undeclared (monitor, sender) "
        "pairs",
    )
    serve.add_argument(
        "--max-links",
        type=int,
        default=None,
        metavar="N",
        help="cap tracked links; least-recently-active links are "
        "evicted (default: unbounded)",
    )
    serve.add_argument(
        "--retention",
        type=int,
        default=None,
        metavar="N",
        help="retain at most N observations per link (provenance ids "
        "stay stable; default: keep all)",
    )
    serve.add_argument(
        "--flush-every",
        type=int,
        default=64,
        metavar="N",
        help="end events between batched rank-sum flushes "
        "(verdict-identical at any cadence; default: 64)",
    )
    serve.add_argument(
        "--maintain-every",
        type=int,
        default=4096,
        metavar="N",
        help="end events between timeline prune / demux compaction "
        "sweeps (0 = never; default: 4096)",
    )
    serve.add_argument(
        "--queue-cap",
        type=int,
        default=65536,
        metavar="N",
        help="bounded ingest staging queue (drop-oldest on overflow; "
        "default: 65536 lines)",
    )
    serve.add_argument(
        "--sample-size",
        type=int,
        default=25,
        metavar="N",
        help="rank-sum window size (default: 25)",
    )
    serve.add_argument(
        "--warmup",
        type=int,
        default=100_000,
        metavar="SLOTS",
        help="per-link estimator warm-up before sampling (default: "
        "100000 slots)",
    )
    serve.add_argument(
        "--separation",
        type=float,
        default=None,
        metavar="METERS",
        help="fixed monitor-tagged separation when the stream carries "
        "no positions records",
    )
    serve.add_argument(
        "--audit",
        dest="audit_out",
        metavar="OUT",
        default=None,
        help="stream the merged decision audit log as JSONL to OUT",
    )
    serve.add_argument(
        "--provenance",
        dest="provenance_out",
        metavar="OUT",
        default=None,
        help="stream each verdict's evidence chain as JSONL to OUT",
    )
    serve.set_defaults(func=_cmd_serve)
    return parser


def _config_of(args: argparse.Namespace) -> dict:
    """The run's configuration: every non-plumbing parsed argument."""
    from repro.obs.manifest import to_jsonable

    return {
        key: to_jsonable(value)
        for key, value in sorted(vars(args).items())
        if key not in _INTERNAL_ARGS
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.check:
        from repro.checks import enable_runtime_checks

        enable_runtime_checks()

    if getattr(args, "jobs", None) is not None:
        from repro.experiments.parallel import set_default_jobs

        set_default_jobs(args.jobs)

    if getattr(args, "faults", None) is not None:
        from repro.faults.runtime import set_fault_spec

        set_fault_spec(args.faults)

    if getattr(args, "metrics_out", None):
        args.metrics = True

    registry = None
    if args.metrics:
        from repro.obs.runtime import enable_metrics, reset_metrics

        registry = reset_metrics()
        enable_metrics()

    tracer = None
    if getattr(args, "trace_out", None):
        from repro.obs.trace import enable_tracing, reset_tracer

        tracer = reset_tracer()
        enable_tracing()

    watch = None
    if args.json_out or args.profile:
        from repro.obs.profile import Stopwatch

        watch = Stopwatch()

    try:
        rc = args.func(args)
    finally:
        if args.metrics:
            from repro.obs.runtime import disable_metrics

            disable_metrics()
        if tracer is not None:
            from repro.obs.trace import disable_tracing

            disable_tracing()
        if getattr(args, "faults", None) is not None:
            from repro.faults.runtime import set_fault_spec

            set_fault_spec(None)
    duration = watch.stop() if watch is not None else None

    snapshot = None
    if registry is not None:
        snapshot = registry.snapshot()
        print()
        print(registry.render())
        if getattr(args, "metrics_out", None):
            from pathlib import Path

            Path(args.metrics_out).write_text(
                registry.render_prometheus(), encoding="ascii"
            )
            print(f"wrote metrics to {args.metrics_out}", file=sys.stderr)

    if tracer is not None:
        path = tracer.write(args.trace_out)
        print(
            f"wrote trace ({len(tracer)} events, {tracer.dropped} dropped) "
            f"to {path}",
            file=sys.stderr,
        )

    profile_dict = None
    report = getattr(args, "profile_report", None)
    if report is not None:
        print()
        print(report.render())
        profile_dict = report.to_dict()
    elif args.profile and duration is not None:
        profile_dict = {"wall_seconds": duration}
        if snapshot is not None:
            slots = snapshot["counters"].get("engine.slots", 0)
            events = snapshot["counters"].get("engine.events", 0)
            if duration > 0:
                profile_dict["slots_per_second"] = slots / duration
                profile_dict["events_per_second"] = events / duration
        print()
        print(f"profile: wall time {duration:.3f} s")

    if args.json_out:
        from repro.obs.manifest import RunManifest
        from repro.util.fidelity import fidelity_scale

        manifest = RunManifest(
            name=args.command,
            seed=getattr(args, "seed", None),
            config=_config_of(args),
            repro_scale=fidelity_scale(),
            duration_s=duration,
            metrics=snapshot,
            audit=getattr(args, "audit_records", None),
            profile=profile_dict,
            results=getattr(args, "results", None),
        )
        path = manifest.write(args.json_out)
        print(f"wrote manifest to {path}", file=sys.stderr)
    return rc


if __name__ == "__main__":
    sys.exit(main())
