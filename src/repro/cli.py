"""Command-line interface: run the paper's experiments from a shell.

Usage::

    python -m repro.cli table1
    python -m repro.cli fig3 [--loads 0.01 0.05 ...] [--runs N]
    python -m repro.cli fig4
    python -m repro.cli fig5 [--loads 0.6] [--pm 25 50 65] [--windows N]
    python -m repro.cli fig6 [--loads 0.6] [--windows N]
    python -m repro.cli demo [--pm 60] [--load 0.6] [--seconds 6]

The global ``--check`` flag (before the subcommand) installs the runtime
invariant checker from :mod:`repro.checks.invariants` on every engine the
run builds; any broken engine contract aborts with a precise diagnostic.

Everything prints the same plain-text tables the benchmarks emit.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments.config import TABLE1

    print(TABLE1.render())
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    from repro.experiments.fig3 import (
        DEFAULT_LOAD_SWEEP,
        render_points,
        run_fig3,
    )

    loads = tuple(args.loads) if args.loads else DEFAULT_LOAD_SWEEP
    kwargs = {"loads": loads}
    if args.runs:
        kwargs["runs"] = args.runs
    points = run_fig3(**kwargs)
    print(render_points("Figure 3: grid topology, Poisson traffic", points))
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    from repro.experiments.fig3 import DEFAULT_LOAD_SWEEP, render_points
    from repro.experiments.fig4 import run_fig4

    loads = tuple(args.loads) if args.loads else DEFAULT_LOAD_SWEEP
    kwargs = {"loads": loads}
    if args.runs:
        kwargs["runs"] = args.runs
    points = run_fig4(**kwargs)
    print(render_points("Figure 4: random topology, CBR traffic", points))
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    from repro.experiments.fig5 import (
        DEFAULT_LOADS,
        DEFAULT_PM_SWEEP,
        render_curve,
        run_fig5_mobile,
        run_fig5_static,
    )

    loads = tuple(args.loads) if args.loads else DEFAULT_LOADS
    pm_values = tuple(args.pm) if args.pm else DEFAULT_PM_SWEEP
    kwargs = {"pm_values": pm_values}
    if args.windows:
        kwargs["windows"] = args.windows
    results = run_fig5_static(loads=loads, **kwargs)
    for load, points in results.items():
        print(render_curve(f"Figure 5: P(correct diagnosis), load={load}", points))
        print()
    if args.mobile:
        points = run_fig5_mobile(**kwargs)
        print(render_curve("Figure 5(d): mobile, load=0.6", points))
    return 0


def _cmd_fig6(args: argparse.Namespace) -> int:
    from repro.experiments.fig6 import (
        DEFAULT_LOADS,
        render_curves,
        run_fig6_mobile,
        run_fig6_static,
    )

    loads = tuple(args.loads) if args.loads else DEFAULT_LOADS
    kwargs = {}
    if args.windows:
        kwargs["windows"] = args.windows
    curves = run_fig6_static(loads=loads, **kwargs)
    print(render_curves("Figure 6(a): P(misdiagnosis), static grid", curves))
    if args.mobile:
        points = run_fig6_mobile(**kwargs)
        print(render_curves("Figure 6(b): P(misdiagnosis), mobile", {0.6: points}))
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.analysis.latency import detection_latency
    from repro.analysis.summary import summarize_estimation
    from repro.core.detector import BackoffMisbehaviorDetector, DetectorConfig
    from repro.experiments.scenarios import GridScenario
    from repro.mac.misbehavior import PercentageMisbehavior

    scenario = GridScenario(load=args.load, seed=args.seed)
    _sim, sender, _monitor = scenario.build()
    policies = {sender: PercentageMisbehavior(args.pm)} if args.pm else None
    sim, sender, monitor = scenario.build(policies=policies)
    detector = BackoffMisbehaviorDetector(
        monitor,
        sender,
        config=DetectorConfig(sample_size=25, known_n=5, known_k=5),
    )
    sim.add_listener(detector)
    sim.run(args.seconds)

    summary = summarize_estimation(detector)
    latency = detection_latency(detector)
    print(f"samples: {summary.samples}, rho: {detector.rho:.2f}")
    print(
        f"mean dictated {summary.mean_dictated:.1f} vs estimated "
        f"{summary.mean_estimated:.1f} slots "
        f"(shift {summary.relative_shift:.2f})"
    )
    print(f"deterministic violations: {len(detector.violations)}")
    if latency.flagged:
        layer = "deterministic" if latency.deterministic_first else "statistical"
        print(
            f"flagged malicious after {latency.first_flag_seconds:.2f} s "
            f"({latency.samples_at_flag} samples) via the {layer} layer"
        )
    else:
        print("never flagged (as expected for an honest sender)")
    checker = sim.engine.invariant_checker
    if checker is not None:
        print(checker.summary())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Detecting MAC Layer Back-off Timer "
        "Violations in Mobile Ad Hoc Networks' (ICDCS 2006)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="install the runtime invariant checker on every simulation "
        "engine (see repro.checks)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table 1").set_defaults(func=_cmd_table1)

    for name, func in (("fig3", _cmd_fig3), ("fig4", _cmd_fig4)):
        p = sub.add_parser(name, help=f"run the {name} probability sweep")
        p.add_argument("--loads", nargs="*", type=float)
        p.add_argument("--runs", type=int)
        p.set_defaults(func=func)

    p5 = sub.add_parser("fig5", help="detection probability curves")
    p5.add_argument("--loads", nargs="*", type=float)
    p5.add_argument("--pm", nargs="*", type=int)
    p5.add_argument("--windows", type=int)
    p5.add_argument("--mobile", action="store_true")
    p5.set_defaults(func=_cmd_fig5)

    p6 = sub.add_parser("fig6", help="misdiagnosis curves")
    p6.add_argument("--loads", nargs="*", type=float)
    p6.add_argument("--windows", type=int)
    p6.add_argument("--mobile", action="store_true")
    p6.set_defaults(func=_cmd_fig6)

    demo = sub.add_parser("demo", help="one detection run with a summary")
    demo.add_argument("--pm", type=int, default=60)
    demo.add_argument("--load", type=float, default=0.6)
    demo.add_argument("--seconds", type=float, default=6.0)
    demo.add_argument("--seed", type=int, default=42)
    demo.set_defaults(func=_cmd_demo)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.check:
        from repro.checks import enable_runtime_checks

        enable_runtime_checks()
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
