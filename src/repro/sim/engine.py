"""The slot-exact, event-driven simulation core.

Design notes
------------

*Integer slot clock.*  Every event carries an integer slot timestamp;
within one slot, events are ordered by kind: transmission phase changes
first (the channel frees), then mobility epochs, then packet arrivals,
then back-off completions (nodes whose timers hit zero this slot
transmit — simultaneously, which is how real DCF collides).

*Reconcile pass.*  After all events of a slot are processed, a single
reconcile pass updates the back-off machinery of every *affected* node:
freezes countdowns that now sense a busy medium, resumes (a DIFS later)
countdowns whose medium went idle, and draws fresh back-offs for nodes
with newly eligible head packets.  Stale completion events are discarded
via the per-node back-off generation counter.

*Two-phase transmissions.*  A transmission first occupies the air for
the RTS+SIFS+CTS handshake.  If by the end of the handshake it was
corrupted (receiver undecodable, receiver busy or itself transmitting,
or another transmitter started within the receiver's interference range
during the handshake — the hidden-terminal case), the busy period ends
there and the sender backs off with a doubled window.  Otherwise it
extends into the full RTS/CTS/DATA/ACK exchange.  Corruption of the DATA
phase by late-starting hidden terminals is not modeled: the CTS has, by
then, silenced the receiver's neighborhood (NAV), which is exactly the
protection RTS/CTS exists to provide.

*Machine-checked contracts.*  The invariants above are enforceable at
runtime: when :func:`repro.checks.runtime.runtime_checks_enabled` is
true (the CLI ``--check`` flag or ``REPRO_CHECK=1``) the engine installs
a :class:`repro.checks.invariants.InvariantChecker` on itself, and
``python -m repro.checks`` verifies the static half of the contract.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.phy.medium import Transmission
from repro.sim.listeners import SimulationListener, overrides_hook
from repro.traffic.queue import Packet
from repro.util.units import Slots, seconds_to_slots

if TYPE_CHECKING:  # pragma: no cover - import-time only
    from repro.checks.invariants import InvariantChecker
    from repro.mac.constants import MacTiming
    from repro.mac.dcf import DcfMac
    from repro.obs.listener import MetricsListener
    from repro.phy.medium import Medium
    from repro.sim.partition import TilePartition
    from repro.topology.mobility import MobilityModel

_Event = Tuple[int, int, int, Any]


class EventKind(enum.IntEnum):
    """Within-slot processing order (lower value = earlier)."""

    TRANSMISSION_PHASE = 0
    MOBILITY_EPOCH = 1
    ARRIVAL = 2
    COUNTDOWN_COMPLETE = 3


class SimulationEngine:
    """Drives a set of DCF MACs over a shared medium.

    Parameters
    ----------
    medium:
        A :class:`repro.phy.Medium` with positions already installed.
    macs:
        Mapping node id -> :class:`repro.mac.DcfMac`.
    timing:
        The :class:`repro.mac.MacTiming` shared by all nodes.
    traffic_sources:
        Mapping node id -> object with ``generator`` (a
        :class:`repro.traffic.TrafficGenerator`) and
        ``pick_destination(medium, node_id)``; nodes absent from the
        mapping generate no traffic.
    mobility:
        Optional :class:`repro.topology.MobilityModel`; static models
        skip epoch events entirely.
    epoch_interval_s:
        Interval between mobility epochs (position + reachability
        rebuild), in seconds.
    partition:
        Optional :class:`repro.sim.partition.TilePartition`.  When set,
        the reconcile pass advances nodes tile-by-tile (interiors
        first, then the boundary band) and the partition prewarms
        per-tile adjacency through the fork pool at every mobility
        epoch.  Observable output is byte-identical with and without a
        partition, and for any worker count (see
        :mod:`repro.sim.partition` for the argument).
    """

    def __init__(
        self,
        medium: "Medium",
        macs: Mapping[int, "DcfMac"],
        timing: "MacTiming",
        traffic_sources: Optional[Mapping[int, Any]] = None,
        mobility: Optional["MobilityModel"] = None,
        epoch_interval_s: float = 0.5,
        listeners: Optional[Iterable[SimulationListener]] = None,
        partition: Optional["TilePartition"] = None,
    ) -> None:
        self.medium = medium
        self.partition = partition
        self.macs: Dict[int, "DcfMac"] = dict(macs)
        self.timing = timing
        # The slot conversions behind these MacTiming properties walk a
        # microseconds-to-slots chain on every access; resolve them once
        # — they are read in the hottest paths of the slot loop.
        self._handshake_slots = timing.handshake_slots
        self._exchange_slots = timing.exchange_slots
        self._difs_slots = timing.difs_slots
        self.traffic: Dict[int, Any] = dict(traffic_sources or {})
        self.mobility = mobility
        self.epoch_slots = max(
            seconds_to_slots(epoch_interval_s, timing.slot_time_us), 1
        )
        self.listeners: List[SimulationListener] = list(listeners or [])
        self.now = 0
        self._heap: List[_Event] = []
        self._seq = itertools.count()
        self._primed = False
        self._event_hooks: List[Callable[..., None]] = []
        self._slot_end_hooks: List[Callable[..., None]] = []
        self._tx_start_hooks: List[Callable[..., None]] = []
        self._tx_end_hooks: List[Callable[..., None]] = []
        self._positions_hooks: List[Callable[..., None]] = []
        self.invariant_checker: Optional["InvariantChecker"] = None
        from repro.checks.runtime import runtime_checks_enabled

        if runtime_checks_enabled():
            from repro.checks.invariants import InvariantChecker

            self.invariant_checker = InvariantChecker()
            self.listeners.append(self.invariant_checker)
        self.metrics_listener: Optional["MetricsListener"] = None
        from repro.obs.runtime import metrics_enabled

        if metrics_enabled():
            from repro.obs.listener import MetricsListener
            from repro.obs.runtime import shared_registry

            self.metrics_listener = MetricsListener(shared_registry())
            self.listeners.append(self.metrics_listener)
        from repro.obs.trace import tracing_enabled

        if tracing_enabled():
            from repro.obs.trace import TraceListener, shared_tracer

            self.listeners.append(TraceListener(shared_tracer()))
        self._refresh_hooks()

    # -- public API ------------------------------------------------------

    def add_listener(self, listener: SimulationListener) -> None:
        self.listeners.append(listener)
        self._refresh_hooks()

    def instrument_phases(
        self,
        wrap: Callable[[str, Callable[..., Any]], Callable[..., Any]],
    ) -> None:
        """Wrap the slot loop's phase callables for instrumentation.

        ``wrap(phase_name, fn)`` receives each phase — ``"events"``
        (the per-slot batch dispatch) and ``"reconcile"`` (the back-off
        reconciliation pass) — and returns the callable the loop will
        invoke instead.  This is the sanctioned seam for profilers and
        tracers (:class:`repro.obs.profile.EngineProfiler` uses it), so
        observation-plane code never reaches into engine internals.
        """
        self._process_batch = wrap("events", self._process_batch)  # type: ignore[method-assign]
        self._reconcile = wrap("reconcile", self._reconcile)  # type: ignore[method-assign]

    def _refresh_hooks(self) -> None:
        # Per-hook dispatch lists: each callback is delivered only to
        # listeners that override it, so the hot transmission-start/end
        # loops skip the base-class no-ops entirely.
        def hooks(name: str) -> List[Callable[..., None]]:
            return [
                getattr(listener, name)
                for listener in self.listeners
                if overrides_hook(listener, name)
            ]

        self._event_hooks = hooks("on_event")
        self._slot_end_hooks = hooks("on_slot_end")
        self._tx_start_hooks = hooks("on_transmission_start")
        self._tx_end_hooks = hooks("on_transmission_end")
        self._positions_hooks = hooks("on_positions_updated")

    def schedule(self, slot: Slots, kind: int, data: Any = None) -> None:
        if slot < self.now:
            raise ValueError(f"cannot schedule in the past ({slot} < {self.now})")
        heapq.heappush(self._heap, (int(slot), int(kind), next(self._seq), data))

    def run_until(
        self,
        end_slot: Slots,
        stop_condition: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Process events up to and including ``end_slot``.

        ``stop_condition`` (a nullary callable) is polled after each slot
        batch; returning True ends the run early.  Returns the final
        simulation slot.
        """
        if not self._primed:
            self._prime()
        heap = self._heap  # never rebound; aliasing is safe
        heappop = heapq.heappop
        try:
            while heap and heap[0][0] <= end_slot:
                slot = heap[0][0]
                batch: List[_Event] = []
                while heap and heap[0][0] == slot:
                    batch.append(heappop(heap))
                affected = self._process_batch(slot, batch)
                if affected:
                    self._reconcile(slot, affected)
                self.now = slot
                for hook in self._slot_end_hooks:
                    hook(slot, self)
                if stop_condition is not None and stop_condition():
                    return self.now
            self.now = max(self.now, end_slot)
            return self.now
        finally:
            # Fold the per-node back-off statistics into the metrics
            # registry whenever a run segment completes (idempotent).
            if self.metrics_listener is not None:
                self.metrics_listener.harvest(self)

    # -- setup -----------------------------------------------------------

    def _prime(self) -> None:
        self._primed = True
        if self.mobility is not None and not self.mobility.is_static:
            self.schedule(self.epoch_slots, EventKind.MOBILITY_EPOCH)
        for node_id, source in self.traffic.items():
            first = source.generator.next_arrival_after(-1)
            if first is not None:
                self.schedule(max(first, 0), EventKind.ARRIVAL, node_id)
        self._reconcile(0, set(self.macs))

    # -- event processing --------------------------------------------------

    def _process_batch(self, slot: Slots, batch: List[_Event]) -> Set[int]:
        """Handle one slot's events; returns the set of affected nodes."""
        affected: Set[int] = set()
        for _slot, kind, _seq, data in batch:
            for hook in self._event_hooks:
                hook(slot, kind, data, self)
            if kind == EventKind.TRANSMISSION_PHASE:
                affected |= self._handle_phase(slot, data)
            elif kind == EventKind.MOBILITY_EPOCH:
                self._handle_epoch(slot)
                affected |= set(self.macs)
            elif kind == EventKind.ARRIVAL:
                self._handle_arrival(slot, data)
                affected.add(data)
            elif kind == EventKind.COUNTDOWN_COMPLETE:
                affected |= self._handle_countdown(slot, data)
        return affected

    def _handle_phase(self, slot: Slots, tx_id: int) -> Set[int]:
        tx = self.medium.active_item(tx_id)
        if tx.kind == "handshake" and not tx.corrupted:
            # CTS received: extend the busy period through DATA + ACK
            # (via the medium so its busy-until index stays current).
            self.medium.extend_transmission(
                tx_id, tx.start_slot + self._exchange_slots, kind="exchange"
            )
            self.schedule(tx.end_slot, EventKind.TRANSMISSION_PHASE, tx_id)
            return set()
        success = tx.kind == "exchange"
        self.medium.end_transmission(tx_id)
        self.macs[tx.sender].complete_transmission(success)
        for hook in self._tx_end_hooks:
            hook(slot, tx, success, self.medium)
        return self._neighborhood_of(tx.sender) | {tx.sender}

    def _handle_epoch(self, slot: Slots) -> None:
        time_s = slot * self.timing.slot_time_us / 1e6
        positions = self.mobility.positions_at(time_s)
        self.medium.update_positions(positions)
        if self.partition is not None:
            self.partition.on_positions_updated(self.medium)
        for hook in self._positions_hooks:
            hook(slot, positions, self.medium)
        self.schedule(slot + self.epoch_slots, EventKind.MOBILITY_EPOCH)

    def _handle_arrival(self, slot: Slots, node_id: int) -> None:
        source = self.traffic[node_id]
        destination = source.pick_destination(self.medium, node_id)
        if destination is not None and destination != node_id:
            packet = Packet(
                source=node_id,
                destination=destination,
                size_bytes=self.timing.payload_bytes,
                created_slot=slot,
            )
            self.macs[node_id].enqueue(packet)
        nxt = source.generator.next_arrival_after(slot)
        if nxt is not None:
            self.schedule(nxt, EventKind.ARRIVAL, node_id)

    def _handle_countdown(self, slot: Slots, data: Tuple[int, int]) -> Set[int]:
        node_id, generation = data
        mac = self.macs[node_id]
        if mac.backoff.generation != generation or not mac.backoff.counting:
            return set()  # stale event: the countdown was frozen/replaced
        rts = mac.build_rts()
        mac.begin_transmission()
        receiver = rts.receiver
        corrupted = (
            not self.medium.can_decode(node_id, receiver)
            or self.medium.is_transmitting(receiver)
            or self.medium.senses_busy(receiver)
        )
        tx = Transmission(
            sender=node_id,
            receiver=receiver,
            start_slot=slot,
            end_slot=slot + self._handshake_slots,
            kind="handshake",
            frame=rts,
            packet=mac.head_packet,
            corrupted=corrupted,
        )
        tx_id = self.medium.start_transmission(tx)
        # A transmitter starting now corrupts any in-flight handshake whose
        # receiver lies within our interference footprint (hidden terminal).
        # Only handshake-kind transmissions can still be corrupted, so
        # iterate the medium's handshake index, not every busy period.
        for other_id, other in self.medium.active_handshakes():
            if other_id == tx_id:
                continue
            if self.medium.senses(node_id, other.receiver):
                other.corrupted = True
            if self.medium.senses(other.sender, receiver):
                tx.corrupted = True
        self.schedule(tx.end_slot, EventKind.TRANSMISSION_PHASE, tx_id)
        for hook in self._tx_start_hooks:
            hook(slot, tx, self.medium)
        return self._neighborhood_of(node_id) | {node_id}

    # -- back-off reconciliation -------------------------------------------

    def _neighborhood_of(self, node_id: int) -> "frozenset[int]":
        """Nodes whose channel view a transition at ``node_id`` can change.

        Returns the medium's cached frozenset directly — callers union
        it, they never mutate it."""
        return self.medium.sensors_of(node_id)

    def _reconcile(self, slot: Slots, affected: Set[int]) -> None:
        # This pass runs for every affected node on every non-empty slot;
        # it reads MAC state through direct attributes (``transmitting``,
        # ``backoff.remaining``/``anchor``) rather than the enum-valued
        # ``state`` property, which dominates the profile otherwise.
        #
        # Two phases.  *Advance* (the loop): freeze / draw / resume each
        # affected node — per-node mutations against per-node state and
        # PRNGs, commuting across nodes, in sorted order (or the
        # partition's tile-by-tile order, which a sharded loop would
        # use).  *Schedule* (the tail): push the collected completions
        # in ascending node-id order.  Only the schedule phase threads
        # shared state (the event sequence counter), so fixing its
        # order makes the serial, grid-indexed and tile-partitioned
        # paths byte-identical by construction.
        macs = self.macs
        senses_busy = self.medium.senses_busy
        resume_anchor = slot + self._difs_slots
        partition = self.partition
        if partition is None:
            order = sorted(affected)
        else:
            order = partition.advance_order(affected)
        completions: List[Tuple[int, Slots, int]] = []
        for node_id in order:
            mac = macs.get(node_id)
            if mac is None or mac.transmitting:
                continue
            backoff = mac.backoff
            if backoff.remaining is None:
                if mac.queue.is_empty:
                    continue
                mac.draw_backoff()
            if senses_busy(node_id):
                backoff.freeze(slot)
            elif backoff.anchor is None:
                completions.append(
                    (node_id, backoff.resume(resume_anchor), backoff.generation)
                )
        if partition is not None:
            completions.sort()
        for node_id, completion, generation in completions:
            self.schedule(
                completion, EventKind.COUNTDOWN_COMPLETE, (node_id, generation)
            )
