"""High-level simulation assembly: topology + flows + policies -> engine.

`Simulation` is the user-facing entry point: give it node positions (or
a mobility model), a list of :class:`Flow` descriptions and, optionally,
per-node back-off policies (misbehavior), and run it for a simulated
duration.  Everything is reproducible from the single ``seed``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.mac.constants import DEFAULT_TIMING, MacTiming
from repro.mac.dcf import DcfMac
from repro.mac.misbehavior import BackoffPolicy
from repro.phy.channel import Channel
from repro.phy.medium import Medium
from repro.phy.propagation import FreeSpacePropagation, LogNormalShadowing
from repro.sim.engine import SimulationEngine
from repro.topology.mobility import MobilityModel, StaticMobility
from repro.sim.listeners import SimulationListener
from repro.traffic.generators import CbrTrafficGenerator, PoissonTrafficGenerator, TrafficGenerator
from repro.util.rng import RngStream
from repro.util.units import Seconds, Slots, seconds_to_slots
from repro.util.validation import check_positive


@dataclass(frozen=True)
class Flow:
    """One traffic source.

    ``destination=None`` selects the paper's behavior: an "arbitrarily
    chosen neighbor" — fixed for the life of the flow for CBR streams,
    re-chosen per packet for the Poisson model.
    """

    source: int
    destination: Optional[int] = None
    kind: str = "poisson"          # "poisson" | "cbr"
    load: float = 0.5              # traffic intensity rho
    per_packet_destination: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.kind not in ("poisson", "cbr"):
            raise ValueError(f"unknown flow kind {self.kind!r}")
        check_positive(self.load, "load")

    @property
    def picks_per_packet(self) -> bool:
        if self.per_packet_destination is not None:
            return self.per_packet_destination
        return self.kind == "poisson"


class _TrafficSource:
    """Engine-facing adapter: generator + destination selection."""

    def __init__(self, flow: Flow, generator: TrafficGenerator, rng: RngStream) -> None:
        self.flow = flow
        self.generator = generator
        self._rng = rng
        self._cached_destination = flow.destination

    def pick_destination(self, medium: Medium, node_id: int) -> Optional[int]:
        if self._cached_destination is not None and not self.flow.picks_per_packet:
            return self._cached_destination
        neighbors = sorted(medium.neighbors(node_id))
        if not neighbors:
            return None
        choice = self._rng.choice(neighbors)
        if not self.flow.picks_per_packet:
            self._cached_destination = choice
        return choice


@dataclass
class SimulationConfig:
    """Everything needed to build a reproducible simulation.

    ``medium_index`` selects the reachability index (``"auto"`` /
    ``"grid"`` / ``"brute"``, see :class:`repro.phy.medium.Medium`);
    ``tile_partition`` shards the reconcile pass into spatial tiles of
    ``tile_span`` sensing-radii each and prewarms per-tile adjacency
    through the fork pool at mobility epochs
    (:class:`repro.sim.partition.TilePartition`) — observable output is
    byte-identical either way.
    """

    seed: int = 1
    timing: MacTiming = field(default_factory=lambda: DEFAULT_TIMING)
    transmission_range: float = 250.0
    sensing_range: float = 550.0
    shadowing_sigma_db: float = 0.0
    path_loss_exponent: float = 2.0
    queue_capacity: int = 50
    epoch_interval_s: float = 0.5
    medium_index: str = "auto"
    tile_partition: bool = False
    tile_span: float = 4.0


class Simulation:
    """A runnable network: nodes, medium, traffic, and the engine.

    Parameters
    ----------
    positions_or_mobility:
        Either a list of (x, y) positions (static network) or a
        :class:`repro.topology.MobilityModel`.
    flows:
        Iterable of :class:`Flow`.
    policies:
        Mapping node id -> :class:`repro.mac.BackoffPolicy` for nodes
        that deviate from the default honest policy.
    config:
        A :class:`SimulationConfig`; defaults reproduce Table 1.
    """

    def __init__(
        self,
        positions_or_mobility: Union[
            Mapping[int, Tuple[float, float]],
            Iterable[Tuple[float, float]],
            MobilityModel,
        ],
        flows: Iterable[Flow] = (),
        policies: Optional[Mapping[int, BackoffPolicy]] = None,
        config: Optional[SimulationConfig] = None,
        mac_options: Optional[Mapping[int, Dict[str, Any]]] = None,
    ) -> None:
        self.config = config if config is not None else SimulationConfig()
        cfg = self.config
        if hasattr(positions_or_mobility, "positions_at"):
            self.mobility = positions_or_mobility
        else:
            self.mobility = StaticMobility(positions_or_mobility)
        initial_positions = self.mobility.positions_at(0.0)

        if cfg.shadowing_sigma_db > 0:
            propagation = LogNormalShadowing(
                cfg.shadowing_sigma_db,
                cfg.path_loss_exponent,
                rng=RngStream(cfg.seed, "shadowing"),
            )
        else:
            propagation = FreeSpacePropagation(cfg.path_loss_exponent)
        self.channel = Channel(
            transmission_range=cfg.transmission_range,
            sensing_range=cfg.sensing_range,
            propagation=propagation,
        )
        self.medium = Medium(self.channel, index=cfg.medium_index)
        self.medium.update_positions(initial_positions)
        self.partition = None
        if cfg.tile_partition:
            from repro.sim.partition import TilePartition

            self.partition = TilePartition.for_channel(
                self.channel, span=cfg.tile_span
            )
            self.partition.on_positions_updated(self.medium)

        policies = policies or {}
        mac_options = mac_options or {}
        self.macs: Dict[int, DcfMac] = {}
        for node_id in initial_positions:
            options = mac_options.get(node_id, {})
            self.macs[node_id] = DcfMac(
                node_id,
                timing=cfg.timing,
                policy=policies.get(node_id),
                queue_capacity=cfg.queue_capacity,
                **options,
            )

        self.flows = list(flows)
        traffic_sources: Dict[int, _TrafficSource] = {}
        for flow in self.flows:
            if flow.source not in self.macs:
                raise ValueError(f"flow source {flow.source} is not a node")
            if flow.source in traffic_sources:
                raise ValueError(f"node {flow.source} already has a flow")
            traffic_sources[flow.source] = self._build_source(flow)

        self.engine = SimulationEngine(
            self.medium,
            self.macs,
            cfg.timing,
            traffic_sources=traffic_sources,
            mobility=self.mobility,
            epoch_interval_s=cfg.epoch_interval_s,
            partition=self.partition,
        )

    def _build_source(self, flow: Flow) -> _TrafficSource:
        cfg = self.config
        service = cfg.timing.mean_service_slots
        if flow.kind == "poisson":
            generator = PoissonTrafficGenerator(
                flow.load,
                service,
                rng=RngStream(cfg.seed, "arrivals", flow.source),
            )
        else:
            phase_rng = RngStream(cfg.seed, "cbr-phase", flow.source)
            generator = CbrTrafficGenerator(
                flow.load,
                service,
                phase=phase_rng.integers(0, max(int(service / flow.load), 1)),
            )
        dest_rng = RngStream(cfg.seed, "destinations", flow.source)
        return _TrafficSource(flow, generator, dest_rng)

    # -- running -----------------------------------------------------------

    def add_listener(self, listener: SimulationListener) -> None:
        self.engine.add_listener(listener)

    def run(
        self,
        duration_s: Seconds,
        stop_condition: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Run for ``duration_s`` simulated seconds (from the current
        engine time); returns the final slot."""
        end = self.engine.now + seconds_to_slots(
            duration_s, self.config.timing.slot_time_us
        )
        return self.engine.run_until(end, stop_condition=stop_condition)

    def run_slots(
        self,
        slots: Slots,
        stop_condition: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Run for an explicit number of slots."""
        return self.engine.run_until(
            self.engine.now + int(slots), stop_condition=stop_condition
        )
