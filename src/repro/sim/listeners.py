"""Observation hooks into the simulation.

Monitors (the detection framework) and experiment instrumentation attach
as listeners; the engine calls them at every transmission start and
outcome and at every mobility epoch.  Listeners must not mutate
simulation state.

Two low-level hooks exist for instrumentation that needs to see the raw
event stream (the invariant checker in :mod:`repro.checks.invariants`):
``on_event`` fires before each scheduled event is dispatched and
``on_slot_end`` after a slot's batch and reconcile pass complete.

The engine dispatches *every* callback — high-level and low-level —
only to listeners that actually override it (see :func:`overrides_hook`
and ``SimulationEngine._refresh_hooks``), so a listener pays nothing
for the hooks it leaves as the base-class no-ops.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import Slots
from typing import TYPE_CHECKING, Any, Dict, Tuple

if TYPE_CHECKING:  # pragma: no cover - import-time only
    from repro.phy.medium import Medium, Transmission
    from repro.sim.engine import SimulationEngine

Position = Tuple[float, float]


def overrides_hook(listener: object, name: str) -> bool:
    """True if ``listener`` provides its own implementation of ``name``.

    Compares against the :class:`SimulationListener` base no-op, so the
    engine's per-hook dispatch lists contain only bound methods that
    actually do something.
    """
    method = getattr(listener, name, None)
    if not callable(method):
        return False
    base = getattr(SimulationListener, name, None)
    return getattr(method, "__func__", method) is not base


class SimulationListener:
    """Base class: override the callbacks you need."""

    def on_transmission_start(
        self, slot: Slots, transmission: "Transmission", medium: "Medium"
    ) -> None:
        """A node occupied the air at ``slot`` (RTS phase begins)."""

    def on_transmission_end(
        self,
        slot: Slots,
        transmission: "Transmission",
        success: bool,
        medium: "Medium",
    ) -> None:
        """The exchange finished (success) or the RTS failed."""

    def on_positions_updated(
        self, slot: Slots, positions: Dict[int, Position], medium: "Medium"
    ) -> None:
        """A mobility epoch rebuilt the reachability sets."""

    def on_event(
        self, slot: Slots, kind: int, data: Any, engine: "SimulationEngine"
    ) -> None:
        """A scheduled event is about to be dispatched (low-level hook)."""

    def on_slot_end(self, slot: Slots, engine: "SimulationEngine") -> None:
        """A slot's event batch and reconcile pass completed (low-level)."""


@dataclass
class _FlowStats:
    sent: int = 0
    delivered: int = 0


class StatsCollector(SimulationListener):
    """Network-wide counters used by tests and experiment reports."""

    def __init__(self) -> None:
        self.transmissions = 0
        self.successes = 0
        self.failures = 0
        self.busy_slots_total = 0
        self.per_sender: Dict[int, _FlowStats] = {}

    def on_transmission_start(
        self, slot: Slots, transmission: "Transmission", medium: "Medium"
    ) -> None:
        self.transmissions += 1
        stats = self.per_sender.setdefault(transmission.sender, _FlowStats())
        stats.sent += 1

    def on_transmission_end(
        self,
        slot: Slots,
        transmission: "Transmission",
        success: bool,
        medium: "Medium",
    ) -> None:
        if success:
            self.successes += 1
            stats = self.per_sender.setdefault(transmission.sender, _FlowStats())
            stats.delivered += 1
        else:
            self.failures += 1
        self.busy_slots_total += transmission.duration

    @property
    def success_ratio(self) -> float:
        done = self.successes + self.failures
        return self.successes / done if done else 0.0
