"""Observation hooks into the simulation.

Monitors (the detection framework) and experiment instrumentation attach
as listeners; the engine calls them at every transmission start and
outcome and at every mobility epoch.  Listeners must not mutate
simulation state.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class SimulationListener:
    """Base class: override the callbacks you need."""

    def on_transmission_start(self, slot, transmission, medium):
        """A node occupied the air at ``slot`` (RTS phase begins)."""

    def on_transmission_end(self, slot, transmission, success, medium):
        """The exchange finished (success) or the RTS failed."""

    def on_positions_updated(self, slot, positions, medium):
        """A mobility epoch rebuilt the reachability sets."""


@dataclass
class _FlowStats:
    sent: int = 0
    delivered: int = 0


class StatsCollector(SimulationListener):
    """Network-wide counters used by tests and experiment reports."""

    def __init__(self):
        self.transmissions = 0
        self.successes = 0
        self.failures = 0
        self.busy_slots_total = 0
        self.per_sender = {}

    def on_transmission_start(self, slot, transmission, medium):
        self.transmissions += 1
        stats = self.per_sender.setdefault(transmission.sender, _FlowStats())
        stats.sent += 1

    def on_transmission_end(self, slot, transmission, success, medium):
        if success:
            self.successes += 1
            stats = self.per_sender.setdefault(transmission.sender, _FlowStats())
            stats.delivered += 1
        else:
            self.failures += 1
        self.busy_slots_total += transmission.duration

    @property
    def success_ratio(self):
        done = self.successes + self.failures
        return self.successes / done if done else 0.0
