"""Packet-level event tracing (the ns-2 trace-file equivalent).

`TraceRecorder` captures every transmission start/outcome and mobility
epoch as structured records, renderable in an ns-2-like line format —
useful for debugging a scenario slot by slot and for regression-testing
the engine's event ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from repro.sim.listeners import SimulationListener
from repro.util.units import DEFAULT_SLOT_TIME_US, Microseconds, Slots

if TYPE_CHECKING:  # pragma: no cover - import-time only
    from repro.phy.medium import Medium, Transmission


@dataclass(frozen=True)
class TraceRecord:
    """One traced event."""

    slot: Slots
    kind: str          # "start" | "success" | "failure" | "epoch"
    sender: int = -1
    receiver: int = -1
    detail: str = ""

    def render(self, slot_time_us: Microseconds = DEFAULT_SLOT_TIME_US) -> str:
        """ns-2-flavored single-line rendering."""
        time_s = self.slot * slot_time_us / 1e6
        symbol = {"start": "s", "success": "r", "failure": "d", "epoch": "M"}[
            self.kind
        ]
        body = f"{symbol} {time_s:.6f} _{self.sender}_ -> _{self.receiver}_"
        return f"{body} {self.detail}".rstrip()


class TraceRecorder(SimulationListener):
    """Records simulation events, optionally bounded in memory."""

    def __init__(
        self,
        max_records: Optional[int] = None,
        senders: Optional[Iterable[int]] = None,
    ) -> None:
        self.max_records = max_records
        self.senders = set(senders) if senders is not None else None
        self.records: List[TraceRecord] = []
        self.dropped = 0

    def _append(self, record: TraceRecord) -> None:
        if self.max_records is not None and len(self.records) >= self.max_records:
            self.dropped += 1
            return
        self.records.append(record)

    def _wanted(self, sender: int) -> bool:
        return self.senders is None or sender in self.senders

    def on_transmission_start(
        self, slot: Slots, transmission: "Transmission", medium: "Medium"
    ) -> None:
        if not self._wanted(transmission.sender):
            return
        rts = transmission.frame
        detail = ""
        if rts is not None:
            detail = f"RTS seq={rts.seq_off} attempt={rts.attempt}"
        self._append(
            TraceRecord(
                slot=slot,
                kind="start",
                sender=transmission.sender,
                receiver=transmission.receiver,
                detail=detail,
            )
        )

    def on_transmission_end(
        self,
        slot: Slots,
        transmission: "Transmission",
        success: bool,
        medium: "Medium",
    ) -> None:
        if not self._wanted(transmission.sender):
            return
        self._append(
            TraceRecord(
                slot=slot,
                kind="success" if success else "failure",
                sender=transmission.sender,
                receiver=transmission.receiver,
                detail=f"dur={transmission.duration}",
            )
        )

    def on_positions_updated(
        self,
        slot: Slots,
        positions: Dict[int, Tuple[float, float]],
        medium: "Medium",
    ) -> None:
        self._append(
            TraceRecord(slot=slot, kind="epoch", detail=f"nodes={len(positions)}")
        )

    # -- output ------------------------------------------------------------

    def render(self, slot_time_us: Microseconds = DEFAULT_SLOT_TIME_US) -> str:
        """The whole trace as text."""
        return "\n".join(r.render(slot_time_us) for r in self.records)

    def write(self, path: str, slot_time_us: Microseconds = DEFAULT_SLOT_TIME_US) -> None:
        """Write the trace to a file."""
        with open(path, "w", encoding="ascii") as handle:
            handle.write(self.render(slot_time_us))
            handle.write("\n")

    def events_of(self, sender: int) -> List[TraceRecord]:
        return [r for r in self.records if r.sender == sender]
