"""Event-driven, slot-accurate network simulator.

Replaces ns-2 for this reproduction: nodes run the DCF MAC of
``repro.mac`` over the PHY of ``repro.phy``, with traffic from
``repro.traffic`` and (optional) mobility from ``repro.topology``.

The engine is *event-driven but slot-exact*: all times are integer
slots, and between channel-state transitions back-off countdowns advance
analytically (see ``repro.mac.backoff``), so a 300-second run does not
iterate 15 million slots.
"""

from repro.sim.engine import EventKind, SimulationEngine
from repro.sim.listeners import SimulationListener, StatsCollector
from repro.sim.network import Flow, Simulation, SimulationConfig
from repro.sim.trace import TraceRecord, TraceRecorder

__all__ = [
    "EventKind",
    "Flow",
    "Simulation",
    "SimulationConfig",
    "SimulationEngine",
    "SimulationListener",
    "StatsCollector",
    "TraceRecord",
    "TraceRecorder",
]
