"""Spatial tile partitioning of the slot loop.

The engine's per-slot reconcile pass advances the back-off machinery of
every *affected* node.  Those per-node advances commute: each one
mutates only its own MAC's state (freeze / draw / resume against the
node's private PRNG) and reads the medium's carrier-sense state, which
the reconcile pass never writes.  The only shared mutation — pushing
COUNTDOWN_COMPLETE events onto the engine heap, which threads the
global event sequence counter — is therefore split out: the engine
advances nodes in whatever grouping the partition dictates, *collects*
the resulting completions, and schedules them in ascending node-id
order.  That final order equals the serial ``sorted(affected)``
iteration exactly, so metrics/audit/verdict fingerprints are
byte-identical across tile layouts and worker counts by construction
(``tests/test_partition_fingerprints.py`` pins this at jobs 1/2/4).

:class:`TilePartition` supplies the grouping: vertical strips of width
``tile_width`` (a multiple of the maximum sensing radius), with nodes
within ``margin`` of a strip edge classified as *boundary* — the set
whose channel state can couple adjacent tiles.  ``advance_order``
yields interior nodes tile-by-tile, then all boundary nodes; the
structure is what a sharded engine advances concurrently per tile
before a single boundary pass.

The partition also owns the one genuinely parallel piece of epoch work:
at every mobility epoch, :meth:`prewarm` computes the lazy grid-mode
adjacency of all nodes tile-by-tile through the fork-pool substrate
(:func:`repro.util.pool.fork_map`) and installs the results in
deterministic tile order.  Workers ship back canonical *sorted*
adjacency lists, so the installed sets do not depend on the worker
count; with one job the prewarm is skipped entirely and the medium's
lazy per-query path (same predicate, same sets) takes over.  On a
single-core host the fork overhead exceeds the win — as with the PR 3
trial pool, the value is that multi-core hosts scale without any
change in observable output.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Set

from repro.util.pool import fork_map, resolve_jobs
from repro.util.units import Meters
from repro.util.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover - import-time only
    from repro.phy.channel import Channel
    from repro.phy.medium import Medium


class TilePartition:
    """Vertical-strip spatial partition with boundary classification.

    Parameters
    ----------
    tile_width:
        Strip width in meters; must exceed ``2 * margin`` so interiors
        are non-empty.
    margin:
        Half-width of the boundary band at each strip edge.  Use the
        maximum effective sensing radius: an interior node is then
        provably out of sensing range of every node in other tiles.
    jobs:
        Worker count for :meth:`prewarm` (``None``: the process-wide
        default, see :func:`repro.util.pool.resolve_jobs`).
    """

    def __init__(
        self,
        tile_width: Meters,
        margin: Meters,
        jobs: Optional[int] = None,
    ) -> None:
        check_positive(tile_width, "tile_width")
        check_positive(margin, "margin")
        if tile_width <= 2 * margin:
            raise ValueError(
                f"tile_width ({tile_width}) must exceed twice the margin "
                f"({margin}) or every node is boundary"
            )
        self.tile_width = float(tile_width)
        self.margin = float(margin)
        self.jobs = jobs
        #: node_id -> tile index (column)
        self._tile_of: Dict[int, int] = {}
        #: node ids within ``margin`` of a tile edge
        self._boundary: Set[int] = set()
        #: tile index -> sorted node ids (interior and boundary alike)
        self._tiles: Dict[int, List[int]] = {}

    @classmethod
    def for_channel(
        cls,
        channel: "Channel",
        span: float = 4.0,
        jobs: Optional[int] = None,
    ) -> "TilePartition":
        """A partition sized from a channel's maximum sensing reach.

        ``span`` is the tile width in units of the margin (must be
        > 2).  Requires a propagation model with a finite range-scale
        bound — the same condition as the medium's grid index.
        """
        bound = channel.propagation.range_scale_bound()
        if bound is None:
            raise ValueError(
                "tile partitioning requires a propagation model with a "
                "finite range_scale_bound()"
            )
        margin = max(channel.transmission_range, channel.sensing_range) * bound
        return cls(tile_width=span * margin, margin=margin, jobs=jobs)

    # -- membership --------------------------------------------------------

    def rebuild(self, medium: "Medium") -> None:
        """Recompute tile membership from the medium's positions."""
        tile_width = self.tile_width
        margin = self.margin
        tile_of: Dict[int, int] = {}
        boundary: Set[int] = set()
        tiles: Dict[int, List[int]] = {}
        for node_id in sorted(medium.positions):
            x = medium.positions[node_id][0]
            tile = int(math.floor(x / tile_width))
            tile_of[node_id] = tile
            tiles.setdefault(tile, []).append(node_id)
            offset = x - tile * tile_width
            if offset < margin or tile_width - offset < margin:
                boundary.add(node_id)
        self._tile_of = tile_of
        self._boundary = boundary
        self._tiles = tiles

    @property
    def tile_count(self) -> int:
        return len(self._tiles)

    @property
    def boundary_count(self) -> int:
        return len(self._boundary)

    def advance_order(self, affected: Iterable[int]) -> List[int]:
        """Deterministic advance order: per-tile interiors, then boundary.

        Nodes the partition has not seen (empty partition, nodes added
        since the last rebuild) are treated as boundary.  Because the
        engine's advance phase commutes node-for-node and completions
        are scheduled separately in node-id order, any grouping yields
        identical observable output — this one is the order a sharded
        loop would use.
        """
        tile_of = self._tile_of
        boundary = self._boundary
        interior: Dict[int, List[int]] = {}
        tail: List[int] = []
        for node_id in sorted(affected):
            tile = tile_of.get(node_id)
            if tile is None or node_id in boundary:
                tail.append(node_id)
            else:
                interior.setdefault(tile, []).append(node_id)
        order: List[int] = []
        for tile in sorted(interior):
            order.extend(interior[tile])
        order.extend(tail)
        return order

    # -- epoch prewarm -----------------------------------------------------

    def prewarm(self, medium: "Medium") -> None:
        """Compute per-tile adjacency through the fork pool and install it.

        Workers inherit the post-``update_positions`` medium through
        ``fork``, compute each tile's adjacency with the exact same
        lazy path a query would take, and return canonical sorted
        lists; the parent installs them in ascending tile order.  Set
        *content* is what queries consume downstream (every
        order-sensitive consumer sorts), so jobs = 1 (skip, stay lazy)
        and jobs = N produce byte-identical runs.
        """
        jobs = resolve_jobs(self.jobs)
        if jobs <= 1 or not self._tiles:
            return

        def compute(nodes: List[int]) -> List[tuple]:
            return medium.adjacency_snapshot(nodes)

        tiles = [self._tiles[tile] for tile in sorted(self._tiles)]
        for snapshot in fork_map(compute, tiles, jobs):
            for node_id, sensed_from, sensed_by, decodes_from in snapshot:
                medium.install_adjacency(
                    node_id, sensed_from, sensed_by, decodes_from
                )

    def on_positions_updated(self, medium: "Medium") -> None:
        """Epoch hook: refresh membership, then prewarm adjacency."""
        self.rebuild(medium)
        self.prewarm(medium)
