"""Packet arrival processes: Poisson and CBR.

Generators produce arrival times in slots; the simulator node drains
them into its MAC queue.  Rates are expressed as *normalized load* — the
ratio of the packet arrival rate to the MAC service rate (packets per
channel busy-period) — matching the paper's "traffic intensity"
parameter rho = arrival rate / service rate.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.util.validation import check_non_negative, check_positive


class TrafficGenerator(ABC):
    """Interface: a stream of packet arrival slots for one node."""

    @abstractmethod
    def next_arrival_after(self, slot):
        """First arrival strictly after ``slot``, or None if the stream
        has ended."""


class PoissonTrafficGenerator(TrafficGenerator):
    """Poisson arrivals with a given normalized load.

    ``load`` is the target traffic intensity rho; ``service_slots`` the
    mean number of slots one packet occupies the channel (the MAC
    busy-period length), so the mean inter-arrival time is
    ``service_slots / load`` slots.
    """

    def __init__(self, load, service_slots, rng, start_slot=0, end_slot=None):
        check_positive(load, "load")
        check_positive(service_slots, "service_slots")
        check_non_negative(start_slot, "start_slot")
        self.load = load
        self.mean_interarrival = service_slots / load
        self._rng = rng
        self._clock = float(start_slot)
        self.end_slot = end_slot

    def next_arrival_after(self, slot):
        # Advance the internal clock past `slot`, drawing exponential gaps.
        while self._clock <= slot:
            self._clock += self._rng.exponential(self.mean_interarrival)
        if self.end_slot is not None and self._clock > self.end_slot:
            return None
        # Round up to the next whole slot: rounding down could re-emit
        # the current slot and stall the event loop.
        return max(math.ceil(self._clock), slot + 1)


class CbrTrafficGenerator(TrafficGenerator):
    """Constant-bit-rate arrivals: one packet every fixed interval.

    ``load`` and ``service_slots`` define the interval exactly as for the
    Poisson generator, so CBR and Poisson runs at the same load offer the
    same long-run intensity (the paper found the two "almost identical"
    at equal intensities).  ``phase`` (in slots) staggers sources so a
    population of CBR streams does not arrive in lock-step.
    """

    def __init__(self, load, service_slots, phase=0, start_slot=0, end_slot=None):
        check_positive(load, "load")
        check_positive(service_slots, "service_slots")
        check_non_negative(phase, "phase")
        check_non_negative(start_slot, "start_slot")
        self.load = load
        self.interval = max(int(round(service_slots / load)), 1)
        self.phase = int(phase) % self.interval
        self.start_slot = start_slot
        self.end_slot = end_slot

    def next_arrival_after(self, slot):
        base = max(slot + 1, self.start_slot)
        # First multiple of `interval` (offset by phase) at or after `base`.
        k = -((self.phase - base) // self.interval)  # ceil((base-phase)/interval)
        arrival = self.phase + k * self.interval
        if arrival <= slot:
            arrival += self.interval
        if self.end_slot is not None and arrival > self.end_slot:
            return None
        return int(arrival)
