"""MAC-layer packets and the drop-tail interface queue."""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field

from repro.util.caches import register_cache_reset
from repro.util.validation import check_positive

_packet_ids = itertools.count()


@register_cache_reset
def reset_packet_ids():
    """Rewind the process-global packet uid counter.

    Packet uids feed the RTS payload digests, so two same-seed runs in
    one process only emit identical frames if the counter is rewound in
    between.  Registered with :mod:`repro.util.caches` so the test
    suite's autouse fixture does this before every test.
    """
    global _packet_ids
    _packet_ids = itertools.count()


@dataclass
class Packet:
    """A MAC-layer data packet (512 bytes in Table 1).

    ``payload`` stands in for the DATA frame body; the detection
    framework hashes it (MD5) for the modified-RTS message digest, so it
    must be unique per packet — the auto-assigned ``uid`` is folded in.
    """

    source: int
    destination: int
    size_bytes: int = 512
    created_slot: int = 0
    final_destination: int = None
    uid: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self):
        check_positive(self.size_bytes, "size_bytes")

    @property
    def payload(self):
        """Deterministic, unique stand-in for the packet body."""
        return f"pkt:{self.source}->{self.destination}:{self.uid}".encode("ascii")


class DropTailQueue:
    """Bounded FIFO interface queue (ns-2's DropTail, length 50).

    Tracks arrival/drop/departure counts so experiments can report
    offered vs. carried load.
    """

    def __init__(self, capacity=50):
        self.capacity = check_positive(capacity, "capacity")
        self._items = deque()
        self.arrivals = 0
        self.drops = 0
        self.departures = 0

    def __len__(self):
        return len(self._items)

    @property
    def is_empty(self):
        return not self._items

    @property
    def is_full(self):
        return len(self._items) >= self.capacity

    def offer(self, packet):
        """Enqueue ``packet``; returns False (and counts a drop) if full."""
        self.arrivals += 1
        if self.is_full:
            self.drops += 1
            return False
        self._items.append(packet)
        return True

    def peek(self):
        """Head packet without removing it, or None if empty."""
        return self._items[0] if self._items else None

    def pop(self):
        """Remove and return the head packet; raises if empty."""
        if not self._items:
            raise IndexError("pop from empty DropTailQueue")
        self.departures += 1
        return self._items.popleft()
