"""Traffic generation and MAC-layer queueing.

The paper evaluates with (a) CBR streams to an arbitrarily chosen
neighbor and (b) a Poisson model where each generated packet goes to an
arbitrarily chosen neighbor, over UDP (no transport-layer feedback), with
a drop-tail MAC queue of length 50 and 512-byte packets (Table 1).
"""

from repro.traffic.generators import (
    CbrTrafficGenerator,
    PoissonTrafficGenerator,
    TrafficGenerator,
)
from repro.traffic.queue import DropTailQueue, Packet

__all__ = [
    "CbrTrafficGenerator",
    "DropTailQueue",
    "Packet",
    "PoissonTrafficGenerator",
    "TrafficGenerator",
]
