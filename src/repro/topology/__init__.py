"""Node placement and mobility models.

Reproduces the two topologies of the paper's evaluation — the 7x8 grid
with 240 m spacing and the 112-node uniform-random placement in a
3000 m x 3000 m field — plus the random-waypoint mobility model
(speeds uniform in 0-20 m/s, the pause times of Table 1).
"""

from repro.topology.mobility import MobilityModel, RandomWaypoint, StaticMobility
from repro.topology.placement import (
    grid_positions,
    random_positions,
    center_pair_indices,
)

__all__ = [
    "MobilityModel",
    "RandomWaypoint",
    "StaticMobility",
    "center_pair_indices",
    "grid_positions",
    "random_positions",
]
