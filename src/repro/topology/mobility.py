"""Mobility models: static placement and random waypoint.

The paper's mobile experiments use the random waypoint model in a
3000 m x 3000 m field with node speeds uniform in 0-20 m/s and pause
times from {0, 50, 100, 200, 300} s (Table 1).

Models are sampled at discrete *epochs* by the simulator: the engine
asks for all positions at time ``t`` (seconds) and rebuilds the medium's
reachability sets.  Waypoint trajectories are computed lazily per node.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.geometry.vectors import distance
from repro.util.validation import check_non_negative, check_positive


class MobilityModel(ABC):
    """Interface: positions of all nodes at a given simulation time."""

    @abstractmethod
    def positions_at(self, time_s):
        """Mapping node id -> (x, y) at ``time_s`` seconds."""

    @property
    @abstractmethod
    def is_static(self):
        """True if positions never change (lets the engine skip epochs)."""


class StaticMobility(MobilityModel):
    """Fixed positions forever (the paper's grid experiments)."""

    def __init__(self, positions):
        self._positions = {i: tuple(p) for i, p in enumerate(positions)}

    def positions_at(self, time_s):
        check_non_negative(time_s, "time_s")
        return dict(self._positions)

    @property
    def is_static(self):
        return True


@dataclass
class _Leg:
    """One segment of a waypoint trajectory: travel then pause.

    ``travel_time`` and ``end_time`` are computed once at construction:
    ``positions_at`` re-reads them for every node at every epoch, and
    at 10k nodes the repeated distance/sqrt is pure waste — a leg's
    endpoints never change.
    """

    start_time: float
    start: tuple
    end: tuple
    speed: float
    pause: float

    def __post_init__(self):
        d = distance(self.start, self.end)
        self.travel_time = d / self.speed if self.speed > 0 else 0.0
        self.end_time = self.start_time + self.travel_time + self.pause

    def position_at(self, time_s):
        elapsed = time_s - self.start_time
        travel = self.travel_time
        if elapsed >= travel:
            return self.end
        frac = elapsed / travel if travel > 0 else 1.0
        return (
            self.start[0] + frac * (self.end[0] - self.start[0]),
            self.start[1] + frac * (self.end[1] - self.start[1]),
        )


class RandomWaypoint(MobilityModel):
    """Random waypoint mobility.

    Each node repeatedly picks a uniform destination in the field,
    travels there at a speed uniform in ``[min_speed, max_speed]``, then
    pauses for ``pause_time`` seconds.  A zero minimum speed draw is
    clamped to a small positive floor to avoid the well-known
    "stuck node" degeneracy of the model.

    Parameters mirror Table 1: field 3000 m x 3000 m, speeds 0-20 m/s.
    """

    SPEED_FLOOR = 0.01  # m/s; avoids division by ~zero travel speeds

    def __init__(
        self,
        initial_positions,
        width=3000.0,
        height=3000.0,
        min_speed=0.0,
        max_speed=20.0,
        pause_time=0.0,
        rng=None,
    ):
        check_positive(width, "width")
        check_positive(height, "height")
        check_non_negative(min_speed, "min_speed")
        check_non_negative(pause_time, "pause_time")
        if max_speed < min_speed:
            raise ValueError(
                f"max_speed ({max_speed}) must be >= min_speed ({min_speed})"
            )
        if rng is None:
            raise ValueError("RandomWaypoint requires an explicit RngStream")
        self.width = width
        self.height = height
        self.min_speed = min_speed
        self.max_speed = max_speed
        self.pause_time = pause_time
        self._rng = rng
        self._legs = {
            i: [self._first_leg(tuple(p))] for i, p in enumerate(initial_positions)
        }

    def _first_leg(self, start):
        return self._next_leg(0.0, start)

    def _next_leg(self, start_time, start):
        destination = self._rng.random_point(self.width, self.height)
        speed = max(self._rng.uniform(self.min_speed, self.max_speed), self.SPEED_FLOOR)
        return _Leg(
            start_time=start_time,
            start=start,
            end=destination,
            speed=speed,
            pause=self.pause_time,
        )

    def positions_at(self, time_s):
        check_non_negative(time_s, "time_s")
        out = {}
        for node_id, legs in self._legs.items():
            leg = legs[-1]
            while leg.end_time <= time_s:
                leg = self._next_leg(leg.end_time, leg.end)
                legs.append(leg)
            # Keep only the current leg; history is not needed again
            # because the engine queries times monotonically.
            if len(legs) > 1:
                del legs[:-1]
            out[node_id] = leg.position_at(time_s)
        return out

    @property
    def is_static(self):
        return False
