"""Static node placements: grid and uniform random.

The paper's first experiment set uses a 7-row x 8-column grid with 240 m
between one-hop neighbors (56 nodes); the second uses 112 nodes placed
uniformly at random in a 3000 m x 3000 m field (doubled count "to ensure
that the network has a high probability of being strongly connected").
"""

from __future__ import annotations

import math

from repro.util.validation import check_positive

#: The paper's random-field reference density: 112 nodes in 3000 m².
REFERENCE_NODES = 112
REFERENCE_SIDE = 3000.0


def grid_positions(rows=7, cols=8, spacing=240.0, origin=(0.0, 0.0)):
    """Positions for a ``rows x cols`` grid with the given spacing.

    Nodes are numbered row-major: node ``r * cols + c`` sits at
    ``origin + (c * spacing, r * spacing)``.  Defaults reproduce the
    paper's 7x8 / 240 m grid.
    """
    check_positive(rows, "rows")
    check_positive(cols, "cols")
    check_positive(spacing, "spacing")
    ox, oy = origin
    return [
        (ox + c * spacing, oy + r * spacing)
        for r in range(rows)
        for c in range(cols)
    ]


def random_positions(count, width=3000.0, height=3000.0, rng=None):
    """``count`` positions uniform in a ``width x height`` field.

    ``rng`` is a :class:`repro.util.RngStream`; required for
    reproducibility (raises if omitted, to prevent accidentally
    unseeded experiments).
    """
    check_positive(count, "count")
    check_positive(width, "width")
    check_positive(height, "height")
    if rng is None:
        raise ValueError("random_positions requires an explicit RngStream")
    return [rng.random_point(width, height) for _ in range(count)]


def constant_density_side(
    n_nodes, reference_nodes=REFERENCE_NODES, reference_side=REFERENCE_SIDE
):
    """Square-field side holding the paper's node density at ``n_nodes``.

    The 112-node 3000 m x 3000 m reference field has ~12 nodes within a
    550 m sensing disk; scaling the side with sqrt(n) keeps that local
    contention structure intact while the topology grows to 1k-10k
    nodes (1000 -> ~8964 m, 10000 -> ~28347 m).  Growing node count
    *without* growing the field would instead saturate every channel
    and measure a different (fully-coupled) regime.
    """
    check_positive(n_nodes, "n_nodes")
    check_positive(reference_nodes, "reference_nodes")
    check_positive(reference_side, "reference_side")
    return reference_side * math.sqrt(n_nodes / reference_nodes)


def center_pair_indices(rows=7, cols=8):
    """Indices of two adjacent nodes nearest the grid center.

    The paper places the monitored sender S and the monitor R "in the
    center of the grid so that the computations take into consideration
    the interference effects from their two-hop neighbors".  Returns
    ``(sender_index, monitor_index)`` for horizontally adjacent central
    nodes.
    """
    row = rows // 2
    col = cols // 2 - 1 if cols >= 2 else 0
    sender = row * cols + col
    monitor = sender + 1 if cols >= 2 else sender
    return sender, monitor
