"""Tests for the experiment harness (scaled to run quickly)."""

import math

import pytest

from repro.experiments.config import TABLE1, Table1Config
from repro.experiments.fig3 import (
    grid_poisson_factory,
    render_points,
    run_probability_sweep,
)
from repro.experiments.fig5 import grid_factory, render_curve, run_detection_curve
from repro.experiments.fig6 import run_misdiagnosis_curve
from repro.experiments.reporting import format_series, format_table
from repro.experiments.runner import (
    collect_detection_samples,
    fidelity_scale,
    scaled,
    split_seeds,
    windowed_detection_rate,
)
from repro.experiments.scenarios import (
    GridScenario,
    RandomScenario,
    build_grid_simulation,
)


class TestTable1:
    def test_rows_match_paper_values(self):
        rows = dict(TABLE1.rows())
        assert rows["Transmission range"] == "250m"
        assert rows["Sensing/Interference range"] == "550m"
        assert rows["Queue length"] == "50"
        assert rows["Packet size"] == "512 bytes"
        assert "56" in rows["Total number of nodes"]
        assert "112" in rows["Total number of nodes"]

    def test_render_contains_all_rows(self):
        text = TABLE1.render()
        for name, _value in TABLE1.rows():
            assert name in text

    def test_custom_config(self):
        cfg = Table1Config(nodes_grid=30)
        assert "30" in dict(cfg.rows())["Total number of nodes"]


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table("T", ["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.5000" in text

    def test_format_table_validates_width(self):
        with pytest.raises(ValueError):
            format_table("T", ["a"], [[1, 2]])

    def test_format_series(self):
        text = format_series("S", "x", [1, 2], {"y1": [0.1, 0.2], "y2": [0.3, 0.4]})
        assert "y1" in text and "y2" in text
        assert "0.4000" in text


class TestRunnerHelpers:
    def test_fidelity_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert fidelity_scale() == 1.0

    def test_fidelity_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.5")
        assert fidelity_scale() == 2.5
        assert scaled(4) == 10

    def test_fidelity_scale_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "lots")
        with pytest.raises(ValueError):
            fidelity_scale()

    def test_scaled_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.1")
        assert scaled(3) >= 1

    def test_fidelity_cache_tracks_env_changes(self, monkeypatch):
        from repro.experiments.runner import reset_fidelity_cache

        monkeypatch.setenv("REPRO_SCALE", "2.0")
        assert fidelity_scale() == 2.0
        # The cache keys on the raw env string, so a changed env is
        # picked up without an explicit reset ...
        monkeypatch.setenv("REPRO_SCALE", "3.0")
        assert fidelity_scale() == 3.0
        # ... and the explicit reset is available for test isolation.
        reset_fidelity_cache()
        assert fidelity_scale() == 3.0

    def test_split_seeds_distinct(self):
        seeds = split_seeds(5, 10)
        assert len(set(seeds)) == 10


class TestScenarios:
    def test_grid_scenario_builds(self):
        sim, sender, monitor = GridScenario(load=0.5, seed=2).build()
        assert sender in sim.macs and monitor in sim.macs
        assert len(sim.macs) == 56
        assert len(sim.flows) == 30
        sources = {f.source for f in sim.flows}
        assert sender in sources
        assert monitor not in sources

    def test_sender_flow_targets_monitor(self):
        sim, sender, monitor = GridScenario(seed=2).build()
        sender_flow = next(f for f in sim.flows if f.source == sender)
        assert sender_flow.destination == monitor

    def test_random_scenario_builds(self):
        scenario = RandomScenario(seed=4)
        sim, sender, monitor = scenario.build()
        assert len(sim.macs) == 112
        assert scenario.separation > 0

    def test_mobile_scenario_builds(self):
        sim, _sender, _monitor = RandomScenario(seed=4, mobile=True).build()
        assert not sim.mobility.is_static

    def test_build_grid_simulation_wrapper(self):
        sim, sender, monitor = build_grid_simulation(load=0.4, seed=1)
        assert sender != monitor


class TestDetectionPipeline:
    @pytest.fixture(scope="class")
    def honest_samples(self):
        scenario = GridScenario(load=0.6, seed=31, rows=5, cols=6, n_pairs=14)
        return collect_detection_samples(
            scenario, pm=0, target_samples=100, max_duration_s=60.0
        )

    def test_collect_reaches_target(self, honest_samples):
        assert len(honest_samples.observations) >= 100

    def test_windowed_rate_honest_low(self, honest_samples):
        rate, windows = windowed_detection_rate(honest_samples, 20)
        assert windows >= 3
        assert rate <= 0.35  # small-sample noise allowance

    def test_windowed_rate_requires_enough_samples(self, honest_samples):
        rate, windows = windowed_detection_rate(honest_samples, 10_000)
        assert math.isnan(rate)
        assert windows == 0

    def test_cheater_detected(self):
        scenario = GridScenario(load=0.6, seed=33, rows=5, cols=6, n_pairs=14)
        detector = collect_detection_samples(
            scenario, pm=70, target_samples=60, max_duration_s=30.0
        )
        rate, windows = windowed_detection_rate(detector, 20)
        assert windows >= 1
        assert rate > 0.6


class TestFigureRunners:
    def test_fig3_sweep_small(self):
        points = run_probability_sweep(
            grid_poisson_factory,
            loads=(0.02, 0.2),
            runs=1,
            observe_slots=6_000,
        )
        assert len(points) == 2
        assert points[0].rho < points[1].rho
        text = render_points("t", points)
        assert "rho" in text

    def test_fig5_curve_small(self):
        points = run_detection_curve(
            grid_factory,
            0.6,
            pm_values=(80,),
            sample_sizes=(10,),
            windows=2,
            max_duration_s=30.0,
        )
        assert len(points) == 1
        assert points[0].detection_probability > 0.5
        assert "PM" in render_curve("t", points, sample_sizes=(10,))

    def test_fig6_curve_small(self):
        points = run_misdiagnosis_curve(
            grid_factory,
            0.6,
            sample_sizes=(10,),
            windows=3,
            max_duration_s=30.0,
        )
        assert len(points) == 1
        assert points[0].misdiagnosis_probability <= 0.35
