"""Tests for the runtime invariant checker (repro.checks.invariants).

Each engine contract is exercised twice: a clean stream (or a real
simulation run) must pass, and a deliberately corrupted stream must trip
exactly the invariant under test.  The corrupted streams are delivered
through the same listener hooks the engine uses, via small stand-ins
for the engine/medium/MAC objects.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

import pytest

from repro.checks import (
    disable_runtime_checks,
    enable_runtime_checks,
    runtime_checks_enabled,
)
from repro.checks.invariants import (
    InvariantChecker,
    InvariantError,
    InvariantViolation,
)
from repro.sim.engine import EventKind
from repro.sim.network import Flow, Simulation, SimulationConfig

# -- stand-ins for engine internals ------------------------------------------


@dataclass
class FakeBackoff:
    generation: int = 0
    counting: bool = False
    remaining: Optional[int] = None
    initial: Optional[int] = None
    completion_slot: Optional[int] = None


class FakeState:
    def __init__(self, value: str = "idle") -> None:
        self.value = value


class FakeMac:
    def __init__(self, **backoff_kwargs: Any) -> None:
        self.backoff = FakeBackoff(**backoff_kwargs)
        self.state = FakeState()


@dataclass
class FakeTransmission:
    sender: int
    receiver: int = 99
    start_slot: int = 0
    end_slot: int = 1
    kind: str = "handshake"


class FakeMedium:
    def __init__(self, active: Optional[List[FakeTransmission]] = None) -> None:
        self.active = list(active or [])
        self.sensed: Set[Tuple[int, int]] = set()

    def active_items(self):
        return list(enumerate(self.active))

    def active_transmissions(self):
        return list(self.active)

    def senses(self, a: int, b: int) -> bool:
        return (a, b) in self.sensed


@dataclass
class FakeEngine:
    now: int = 0
    macs: Dict[int, FakeMac] = field(default_factory=dict)
    medium: FakeMedium = field(default_factory=FakeMedium)


def collecting_checker() -> InvariantChecker:
    return InvariantChecker(strict=False)


def kinds(checker: InvariantChecker) -> List[str]:
    return [violation.kind for violation in checker.violations]


# -- event stream invariants -------------------------------------------------


def test_clean_event_stream_passes():
    checker = collecting_checker()
    engine = FakeEngine(now=0)
    checker.on_event(3, EventKind.TRANSMISSION_PHASE, 0, engine)
    checker.on_event(3, EventKind.ARRIVAL, 1, engine)
    checker.on_event(5, EventKind.TRANSMISSION_PHASE, 0, engine)
    assert checker.ok
    assert checker.events_checked == 3


def test_non_integral_timestamp_trips():
    checker = collecting_checker()
    checker.on_event(2.5, EventKind.ARRIVAL, 1, FakeEngine(now=0))
    assert "integer-slot-clock" in kinds(checker)


def test_event_behind_engine_time_trips():
    checker = collecting_checker()
    checker.on_event(3, EventKind.ARRIVAL, 1, FakeEngine(now=10))
    assert "event-time-monotonicity" in kinds(checker)


def test_event_slot_regression_trips():
    checker = collecting_checker()
    engine = FakeEngine(now=0)
    checker.on_event(5, EventKind.ARRIVAL, 1, engine)
    checker.on_event(4, EventKind.ARRIVAL, 2, engine)
    assert "event-time-monotonicity" in kinds(checker)


def test_within_slot_kind_order_trips():
    checker = collecting_checker()
    engine = FakeEngine(now=0)
    checker.on_event(5, EventKind.COUNTDOWN_COMPLETE, (7, 0), engine)
    checker.on_event(5, EventKind.ARRIVAL, 1, engine)
    assert "within-slot-ordering" in kinds(checker)


def test_kind_order_resets_across_slots():
    checker = collecting_checker()
    engine = FakeEngine(now=0, macs={7: FakeMac(generation=0, counting=True)})
    checker.on_event(5, EventKind.COUNTDOWN_COMPLETE, (7, 0), engine)
    checker.on_event(6, EventKind.TRANSMISSION_PHASE, 0, engine)
    assert checker.ok


def test_countdown_for_unknown_node_trips():
    checker = collecting_checker()
    checker.on_event(5, EventKind.COUNTDOWN_COMPLETE, (404, 0), FakeEngine())
    assert "unknown-node" in kinds(checker)


# -- stale completion discard ------------------------------------------------


def _engine_with_node(node_id: int, **backoff_kwargs: Any) -> FakeEngine:
    return FakeEngine(now=0, macs={node_id: FakeMac(**backoff_kwargs)})


def test_fresh_completion_transmission_passes():
    checker = collecting_checker()
    engine = _engine_with_node(7, generation=3, counting=True)
    checker.on_event(5, EventKind.COUNTDOWN_COMPLETE, (7, 3), engine)
    tx = FakeTransmission(sender=7, start_slot=5, end_slot=9)
    checker.on_transmission_start(5, tx, FakeMedium([tx]))
    assert checker.ok


def test_stale_generation_transmission_trips():
    checker = collecting_checker()
    # Generation counter moved on (3 -> 4): the completion is stale and
    # a transmission acting on it violates the discard contract.
    engine = _engine_with_node(7, generation=4, counting=True)
    checker.on_event(5, EventKind.COUNTDOWN_COMPLETE, (7, 3), engine)
    tx = FakeTransmission(sender=7, start_slot=5, end_slot=9)
    checker.on_transmission_start(5, tx, FakeMedium([tx]))
    assert "stale-completion-discard" in kinds(checker)


def test_frozen_countdown_transmission_trips():
    checker = collecting_checker()
    engine = _engine_with_node(7, generation=3, counting=False)
    checker.on_event(5, EventKind.COUNTDOWN_COMPLETE, (7, 3), engine)
    tx = FakeTransmission(sender=7, start_slot=5, end_slot=9)
    checker.on_transmission_start(5, tx, FakeMedium([tx]))
    assert "stale-completion-discard" in kinds(checker)


def test_transmission_without_any_completion_trips():
    checker = collecting_checker()
    checker.on_event(5, EventKind.ARRIVAL, 7, _engine_with_node(7))
    tx = FakeTransmission(sender=7, start_slot=5, end_slot=9)
    checker.on_transmission_start(5, tx, FakeMedium([tx]))
    assert "stale-completion-discard" in kinds(checker)


# -- carrier sense and timestamps --------------------------------------------


def _fresh_sender(checker: InvariantChecker, node_id: int, slot: int) -> None:
    engine = _engine_with_node(node_id, generation=0, counting=True)
    checker.on_event(slot, EventKind.COUNTDOWN_COMPLETE, (node_id, 0), engine)


def test_transmit_into_sensed_busy_air_trips():
    checker = collecting_checker()
    _fresh_sender(checker, 7, 5)
    earlier = FakeTransmission(sender=3, start_slot=2, end_slot=20)
    mine = FakeTransmission(sender=7, start_slot=5, end_slot=9)
    medium = FakeMedium([earlier, mine])
    medium.sensed.add((3, 7))  # node 7 can hear node 3's transmission
    checker.on_transmission_start(5, mine, medium)
    assert "carrier-sense" in kinds(checker)


def test_same_slot_collision_is_legitimate():
    checker = collecting_checker()
    _fresh_sender(checker, 7, 5)
    _fresh_sender(checker, 3, 5)
    other = FakeTransmission(sender=3, start_slot=5, end_slot=9)
    mine = FakeTransmission(sender=7, start_slot=5, end_slot=9)
    medium = FakeMedium([other, mine])
    medium.sensed.add((3, 7))
    checker.on_transmission_start(5, mine, medium)
    checker.on_transmission_start(5, other, medium)
    assert checker.ok


def test_hidden_terminal_start_is_legitimate():
    checker = collecting_checker()
    _fresh_sender(checker, 7, 5)
    earlier = FakeTransmission(sender=3, start_slot=2, end_slot=20)
    mine = FakeTransmission(sender=7, start_slot=5, end_slot=9)
    medium = FakeMedium([earlier, mine])  # nothing sensed: hidden terminal
    checker.on_transmission_start(5, mine, medium)
    assert checker.ok


def test_start_slot_mismatch_trips():
    checker = collecting_checker()
    _fresh_sender(checker, 7, 5)
    tx = FakeTransmission(sender=7, start_slot=4, end_slot=9)
    checker.on_transmission_start(5, tx, FakeMedium([tx]))
    assert "transmission-timestamps" in kinds(checker)


def test_non_positive_duration_trips():
    checker = collecting_checker()
    _fresh_sender(checker, 7, 5)
    tx = FakeTransmission(sender=7, start_slot=5, end_slot=5)
    checker.on_transmission_start(5, tx, FakeMedium([tx]))
    assert "transmission-timestamps" in kinds(checker)


def test_end_slot_mismatch_trips():
    checker = collecting_checker()
    tx = FakeTransmission(sender=7, start_slot=5, end_slot=9)
    checker.on_transmission_end(10, tx, True, FakeMedium())
    assert "transmission-timestamps" in kinds(checker)


# -- per-slot state invariants -----------------------------------------------


def test_negative_backoff_counter_trips():
    checker = collecting_checker()
    engine = _engine_with_node(7, remaining=-2, initial=15)
    checker.on_slot_end(5, engine)
    assert "non-negative-backoff" in kinds(checker)


def test_backoff_counter_growth_trips():
    checker = collecting_checker()
    engine = _engine_with_node(7, remaining=20, initial=15)
    checker.on_slot_end(5, engine)
    assert "non-negative-backoff" in kinds(checker)


def test_missed_completion_trips():
    checker = collecting_checker()
    engine = _engine_with_node(
        7, counting=True, remaining=3, initial=15, completion_slot=4
    )
    checker.on_slot_end(5, engine)
    assert "missed-completion" in kinds(checker)


def test_mac_transmitting_without_medium_trips():
    checker = collecting_checker()
    engine = _engine_with_node(7)
    engine.macs[7].state.value = "transmitting"
    checker.on_slot_end(5, engine)
    assert "medium-consistency" in kinds(checker)


def test_medium_active_without_mac_trips():
    checker = collecting_checker()
    engine = _engine_with_node(7)
    engine.medium = FakeMedium([FakeTransmission(sender=7)])
    checker.on_slot_end(5, engine)
    assert "medium-consistency" in kinds(checker)


def test_idle_node_passes_slot_end():
    checker = collecting_checker()
    engine = _engine_with_node(
        7, counting=True, remaining=3, initial=15, completion_slot=9
    )
    checker.on_slot_end(5, engine)
    assert checker.ok
    assert checker.slots_checked == 1


# -- strict mode, summary, plumbing ------------------------------------------


def test_strict_mode_raises_with_violation_attached():
    checker = InvariantChecker(strict=True)
    with pytest.raises(InvariantError) as excinfo:
        checker.on_event(3, EventKind.ARRIVAL, 1, FakeEngine(now=10))
    violation = excinfo.value.violation
    assert isinstance(violation, InvariantViolation)
    assert violation.kind == "event-time-monotonicity"
    assert "slot 3" in violation.render()


def test_summary_reports_counts():
    checker = collecting_checker()
    checker.on_event(3, EventKind.ARRIVAL, 1, FakeEngine(now=0))
    checker.on_slot_end(3, FakeEngine(now=3))
    assert "ok" in checker.summary()
    checker.on_event(1, EventKind.ARRIVAL, 1, FakeEngine(now=5))
    assert "violation" in checker.summary()


def test_runtime_switch_toggles():
    assert not runtime_checks_enabled()
    enable_runtime_checks()
    try:
        assert runtime_checks_enabled()
    finally:
        disable_runtime_checks()
    assert not runtime_checks_enabled()


def test_env_var_enables_checks(monkeypatch):
    monkeypatch.setenv("REPRO_CHECK", "1")
    assert runtime_checks_enabled()
    monkeypatch.setenv("REPRO_CHECK", "0")
    assert not runtime_checks_enabled()


# -- integration: a real simulation under the checker ------------------------


def _small_simulation() -> Simulation:
    positions = [(0.0, 0.0), (150.0, 0.0), (300.0, 0.0), (450.0, 0.0)]
    flows = [
        Flow(source=0, destination=1, kind="poisson", load=0.4),
        Flow(source=2, destination=3, kind="poisson", load=0.4),
    ]
    return Simulation(
        positions, flows=flows, config=SimulationConfig(seed=11)
    )


def test_engine_autoinstalls_checker_when_enabled():
    enable_runtime_checks()
    try:
        sim = _small_simulation()
    finally:
        disable_runtime_checks()
    checker = sim.engine.invariant_checker
    assert isinstance(checker, InvariantChecker)
    assert checker in sim.engine.listeners
    sim.run(0.25)
    assert checker.ok
    assert checker.events_checked > 0
    assert checker.slots_checked > 0


def test_engine_skips_checker_by_default():
    assert os.environ.get("REPRO_CHECK", "") in ("", "0")
    sim = _small_simulation()
    assert sim.engine.invariant_checker is None


def test_attach_registers_listener():
    sim = _small_simulation()
    checker = InvariantChecker(strict=True).attach(sim.engine)
    assert checker in sim.engine.listeners
    sim.run(0.25)  # strict mode: any violation would raise
    assert checker.ok


def test_real_run_trips_on_corrupted_backoff():
    sim = _small_simulation()
    checker = InvariantChecker(strict=False).attach(sim.engine)
    sim.run(0.1)
    # Corrupt a node's back-off counter behind the engine's back; the
    # next slot-end sweep must catch it.
    mac = sim.engine.macs[0]
    mac.backoff.remaining = -1
    checker.on_slot_end(sim.engine.now, sim.engine)
    assert "non-negative-backoff" in kinds(checker)
