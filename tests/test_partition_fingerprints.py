"""Index and partition invariance: one observable output, many engines.

The spatial-hash medium index (`index="grid"` vs the all-pairs
`"brute"` reference) and the tile-partitioned reconcile loop
(`tile_partition=True` at any worker count) are pure execution
strategies: the paper's numbers — every metric counter, audit record,
observation, and verdict — must be byte-identical across all of them.
This suite runs the mobile random scenario (mobility epochs exercise
the incremental grid update and the per-epoch tile prewarm) under each
strategy and compares full sha256 fingerprints, pinning the
determinism argument of DESIGN.md §16:

- grid index == brute index,
- partitioned == unpartitioned,
- partitioned at jobs 1 == 2 == 4 (fork-pool prewarm active).
"""

import json

import pytest

from repro.experiments.scenarios import RandomScenario
from repro.util.pool import set_default_jobs
from tests.test_golden_fingerprints import (
    CONFIG,
    _audit_jsonl,
    _detector_text,
    _fresh_process_state,
    _run_single,
    _sha,
)


def _capture(medium_index, tile_partition, jobs=1):
    """Fingerprint one mobile detection run under the given strategy."""
    set_default_jobs(jobs)
    try:
        _fresh_process_state()
        detectors, audit, registry, _extra = _run_single(
            CONFIG,
            lambda: RandomScenario(
                mobile=True,
                seed=23,
                medium_index=medium_index,
                tile_partition=tile_partition,
            ),
            70,
            120,
            40.0,
        )
    finally:
        set_default_jobs(1)
    return {
        "observations": sum(len(d.observations) for d in detectors),
        "verdicts": sum(len(d.verdicts) for d in detectors),
        "audit_records": len(audit.records),
        "metrics_sha256": _sha(json.dumps(registry.snapshot(), sort_keys=True)),
        "audit_sha256": _sha(_audit_jsonl(audit)),
        "detector_sha256": _sha(_detector_text(detectors)),
    }


@pytest.fixture(scope="module")
def brute_fingerprint():
    return _capture("brute", tile_partition=False)


def test_grid_index_matches_brute_force(brute_fingerprint):
    assert _capture("grid", tile_partition=False) == brute_fingerprint


def test_partitioned_loop_matches_serial(brute_fingerprint):
    assert _capture("grid", tile_partition=True) == brute_fingerprint


@pytest.mark.parametrize("jobs", [2, 4])
def test_partitioned_loop_invariant_across_jobs(jobs, brute_fingerprint):
    """Fork-pool prewarm at any worker count changes nothing observable."""
    fingerprint = _capture("grid", tile_partition=True, jobs=jobs)
    assert fingerprint == brute_fingerprint
