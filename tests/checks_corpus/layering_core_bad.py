# path: src/repro/core/corpus_core_bad.py
# expect: RPR702
"""Known-bad: detector code groping through the medium's private state."""


def snoop_carrier(medium) -> int:
    return len(medium._transmissions)        # RPR702: private medium attr


class Detector:
    def __init__(self, medium) -> None:
        self.medium = medium

    def busy(self) -> bool:
        return bool(self.medium._active_count)  # RPR702: via self.medium
