# path: src/repro/core/corpus_core_good.py
# expect: none
"""Known-good: detector code using the medium's public surface only."""


def carrier_busy(medium) -> bool:
    return medium.is_busy()                  # public API: fine


class Detector:
    def __init__(self, medium) -> None:
        self.medium = medium
        self._history = []                   # own private attr: fine

    def observe(self) -> None:
        self._history.append(self.medium.active_transmissions())
