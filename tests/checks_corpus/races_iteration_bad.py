# path: src/repro/core/corpus_iteration_bad.py
# expect: RPR602
"""Known-bad: unsorted set iteration inside verdict-path code."""

from typing import Set


def verdict_over_neighbors(neighbors: Set[int]) -> list:
    verdicts = []
    for node in neighbors:                   # RPR602: Set param, unsorted
        verdicts.append(node)
    suspects = {n for n in verdicts if n > 0}
    return [s * 2 for s in suspects]         # RPR602: set comprehension iterated


def tie_groups(samples: list) -> list:
    sizes = []
    for value in set(samples):               # RPR602: set() call iterated
        sizes.append(samples.count(value))
    return sizes
