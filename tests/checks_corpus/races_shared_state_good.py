# path: src/repro/experiments/corpus_races_good.py
# expect: none
"""Known-good: pure trials, registered caches, environ reads only."""

import os

from repro.experiments.parallel import run_trials
from repro.util.caches import register_cache_reset

_SCALE_CACHE = None


@register_cache_reset
def _reset() -> None:
    global _SCALE_CACHE
    _SCALE_CACHE = None


def scale() -> float:
    global _SCALE_CACHE
    if _SCALE_CACHE is None:
        _SCALE_CACHE = float(os.environ.get("REPRO_SCALE", "1.0"))
    return _SCALE_CACHE


def trial(task):
    local_counts = {}                        # local state: fine
    local_counts[task] = scale()
    return local_counts


def sweep(tasks):
    return run_trials(trial, tasks)
