# path: src/repro/mac/corpus_unitflow_good.py
# expect: none
"""Known-good: unit-correct code the RPR5xx pass must stay quiet on."""

from repro.util.units import (
    Microseconds,
    Seconds,
    Slots,
    microseconds_to_slots,
    slots_to_microseconds,
)


def add_like_units(a_slots: Slots, b_slots: Slots) -> Slots:
    return a_slots + b_slots                 # same unit: fine


def scalar_mixes(timeout_slots: Slots, retries: int) -> Slots:
    grown = timeout_slots * 2                # scalar multiplier keeps unit
    return grown + retries                   # unknown int treated as scalar


def explicit_conversion(difs_us: Microseconds) -> Slots:
    return microseconds_to_slots(difs_us)    # conversion through the helper


def slot_count_times_duration(n_slots: Slots, slot_time_us: Microseconds) -> Microseconds:
    return n_slots * slot_time_us            # slot count is dimensionless


def literal_seconds_conversion(span_us: Microseconds) -> Seconds:
    return span_us / 1e6                     # recognized 1e6 factor


def cancelling_division(a_us: Microseconds, b_us: Microseconds) -> float:
    ratio = a_us / b_us                      # like units cancel to scalar
    return ratio


def integer_slot_division(window_slots: Slots) -> Slots:
    return window_slots // 2                 # floor division keeps ints


def round_trip(window_slots: Slots, slot_time_us: Microseconds) -> Microseconds:
    return slots_to_microseconds(window_slots, slot_time_us)
