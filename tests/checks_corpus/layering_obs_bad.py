# path: src/repro/obs/corpus_obs_bad.py
# expect: RPR703
"""Known-bad: observation-plane code mutating simulation state."""


class NudgingProbe:
    def attach(self, engine) -> None:
        engine.now = 0                       # RPR703: obs writes engine state

    def throttle(self, mac) -> None:
        mac.cw_min += 1                      # RPR703: obs writes mac state
