# path: src/repro/mac/corpus_layering_bad.py
# expect: RPR701
"""Known-bad: MAC-layer module importing upward into experiments."""

from repro.experiments.scenarios import build_grid_simulation  # RPR701


def shortcut(width_m, height_m):
    return build_grid_simulation(width_m, height_m)
