# path: src/repro/core/corpus_iteration_good.py
# expect: none
"""Known-good: sorted set iteration and order-safe containers."""

from typing import Dict, Set


def verdict_over_neighbors(neighbors: Set[int]) -> list:
    verdicts = []
    for node in sorted(neighbors):           # sorted: deterministic
        verdicts.append(node)
    return verdicts


def tie_groups(samples: list) -> list:
    sizes = []
    for value in sorted(set(samples)):       # sorted set: fine
        sizes.append(samples.count(value))
    return sizes


def dict_iteration(counts: Dict[int, int]) -> int:
    total = 0
    for key in counts:                       # dicts preserve insertion order
        total += counts[key]
    return total


def list_iteration(samples: list) -> float:
    acc = 0.0
    for value in samples:                    # lists are ordered
        acc += value
    return acc
