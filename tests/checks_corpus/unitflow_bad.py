# path: src/repro/mac/corpus_unitflow_bad.py
# expect: RPR501,RPR502,RPR503,RPR504
"""Known-bad: every RPR5xx unit-flow rule fires in this file."""

from repro.util.units import Microseconds, Seconds, Slots


def mixed_arithmetic(timeout_slots: Slots, difs_us: Microseconds) -> None:
    total = timeout_slots + difs_us          # RPR501: slots + microseconds
    if timeout_slots > difs_us:              # RPR501: slots vs microseconds
        pass


def wrong_assignment(difs_us: Microseconds) -> None:
    backoff_slots: Slots = difs_us           # RPR504: us bound to Slots name


def float_slots(window_slots: Slots) -> Slots:
    half_slots = window_slots / 2            # RPR503: true division -> float
    return half_slots


def to_seconds(us: Microseconds) -> Seconds:
    return us / 1e6


def caller(duration_s: Seconds) -> None:
    to_seconds(duration_s)                   # RPR502: seconds into a us param


def wrong_return(difs_us: Microseconds) -> Slots:
    return difs_us                           # RPR504: returns us, declared Slots
