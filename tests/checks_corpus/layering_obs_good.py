# path: src/repro/obs/corpus_obs_good.py
# expect: none
"""Known-good: observation-plane code that only reads simulation state."""


class PassiveProbe:
    def __init__(self) -> None:
        self.samples = []                    # own state: writable

    def attach(self, engine) -> None:
        self.engine_start = engine.now       # reading engine state: fine

    def sample(self, engine, mac) -> None:
        self.samples.append((engine.now, mac.cw_min))
