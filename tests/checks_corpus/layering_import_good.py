# path: src/repro/experiments/corpus_layering_good.py
# expect: none
"""Known-good: downward imports, TYPE_CHECKING edges, lazy obs imports."""

from typing import TYPE_CHECKING

from repro.mac.backoff import BackoffPolicy     # downward: experiments -> mac
from repro.util.units import Slots              # downward: experiments -> util

if TYPE_CHECKING:
    from repro.analysis.plots import SweepPlot  # upward but type-only: exempt


def probe(policy: BackoffPolicy, horizon_slots: Slots) -> "SweepPlot":
    from repro.obs.runtime import current_observatory  # lazy cross-cutting: exempt

    obs = current_observatory()
    return obs.plot(policy, horizon_slots)
