# path: src/repro/experiments/corpus_races_bad.py
# expect: RPR601,RPR603
"""Known-bad: worker-reachable shared state + environ mutation."""

import os

from repro.experiments.parallel import run_trials

_RESULTS = {}
_hits = 0


def trial(task):
    global _hits
    _hits += 1                               # RPR601: rebinding global
    _RESULTS[task] = _hits                   # RPR601: item assignment
    os.environ["REPRO_SCALE"] = "0.5"        # RPR603: environ write
    return _hits


def sweep(tasks):
    return run_trials(trial, tasks)
