"""Smoke tests: every shipped example must run to completion.

Each example asserts its own headline claim internally (e.g. "the
cheater was caught"), so a clean exit is a meaningful check, not just
an import test.  The slowest examples are marked so `-m "not slow"`
keeps the inner loop fast.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = ["quickstart.py", "multihop_aodv.py"]
SLOW_EXAMPLES = [
    "grid_detection.py",
    "mobile_network.py",
    "misbehavior_strategies.py",
    "reputation_quarantine.py",
]


def _run(name, timeout=300):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, (
        f"{name} failed:\nstdout:\n{result.stdout}\nstderr:\n{result.stderr}"
    )
    return result.stdout


def test_examples_directory_complete():
    shipped = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert shipped == set(FAST_EXAMPLES) | set(SLOW_EXAMPLES)


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_example(name):
    out = _run(name)
    assert out.strip()


@pytest.mark.slow
@pytest.mark.parametrize("name", SLOW_EXAMPLES)
def test_slow_example(name):
    out = _run(name)
    assert out.strip()
