"""Tests for the bandwidth-starvation measurement module."""

import pytest

from repro.experiments.fairness import (
    GoodputTracker,
    jain_fairness_index,
    measure_starvation,
)
from repro.experiments.scenarios import GridScenario
from repro.phy.medium import Transmission


class TestJainIndex:
    def test_perfect_fairness(self):
        assert jain_fairness_index([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_total_unfairness(self):
        assert jain_fairness_index([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_intermediate(self):
        idx = jain_fairness_index([4, 2, 2])
        assert 1 / 3 < idx < 1.0

    def test_scale_invariant(self):
        assert jain_fairness_index([1, 2, 3]) == pytest.approx(
            jain_fairness_index([10, 20, 30])
        )

    def test_all_zero_is_fair(self):
        assert jain_fairness_index([0, 0, 0]) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            jain_fairness_index([])


class TestGoodputTracker:
    def _tx(self, sender, success=True, start=0, end=100):
        return Transmission(
            sender=sender, receiver=99, start_slot=start, end_slot=end,
            kind="exchange",
        )

    def test_counts_successes_only(self):
        tracker = GoodputTracker()
        tracker.on_transmission_end(100, self._tx(1), True, None)
        tracker.on_transmission_end(200, self._tx(1, start=100, end=200), False, None)
        assert tracker.delivered_packets == {1: 1}

    def test_goodput_bps(self):
        tracker = GoodputTracker(payload_bytes=512)
        # One 512-byte packet over 50_000 slots (1 s).
        tracker.on_transmission_end(
            0, Transmission(sender=1, receiver=2, start_slot=0, end_slot=50_000),
            True, None,
        )
        assert tracker.goodput_bps(1) == pytest.approx(512 * 8)

    def test_goodput_zero_without_traffic(self):
        assert GoodputTracker().goodput_bps(1) == 0.0

    def test_share_of(self):
        tracker = GoodputTracker()
        for sender, count in ((1, 3), (2, 1)):
            for i in range(count):
                tracker.on_transmission_end(
                    i, self._tx(sender, start=i, end=i + 1), True, None
                )
        assert tracker.share_of(1, [1, 2]) == pytest.approx(0.75)
        assert tracker.share_of(3, [1, 2]) == 0.0

    def test_share_of_empty_population(self):
        assert GoodputTracker().share_of(1, [1, 2]) == 0.0


class TestMeasureStarvation:
    def test_cheater_grabs_share(self):
        factory = lambda seed: GridScenario(load=0.8, seed=seed)
        honest = measure_starvation(factory, 0, seed=5, duration_s=4.0)
        cheat = measure_starvation(factory, 100, seed=5, duration_s=4.0)
        assert cheat.cheater_share > honest.cheater_share
        assert cheat.fairness_index < honest.fairness_index
        assert cheat.cheater_packets > honest.cheater_packets
        assert cheat.neighbor_packets_mean < honest.neighbor_packets_mean

    def test_fair_share_sane(self):
        factory = lambda seed: GridScenario(load=0.8, seed=seed)
        point = measure_starvation(factory, 0, seed=6, duration_s=2.0)
        assert 0.0 < point.fair_share <= 1.0
