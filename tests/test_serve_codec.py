"""Property-based tests (hypothesis) on the serve wire codec.

The streaming service's byte-identity contract rests on the JSONL codec
being an exact bijection on its domain: every encodable record decodes
back to the same value, slot fields survive as python ints (never
floats), and the decoder rejects anything type-shifted (bools posing as
ints, floats posing as slots) instead of coercing it.  These properties
hold under hypothesis-generated inputs, not just the happy paths the
equivalence suite replays.
"""

from __future__ import annotations

import json

from hypothesis import given, settings, strategies as st

from repro.core.observation import (
    ObservedTransmission,
    observed_from_json,
    observed_to_json,
    rts_from_json,
    rts_to_json,
)
from repro.mac.frames import MAX_ATTEMPT_FIELD, RtsFrame
from repro.serve.records import (
    EndEvent,
    PositionsEvent,
    ShutdownEvent,
    StartEvent,
    end_line,
    parse_line,
    positions_line,
    shutdown_line,
    start_line,
)

# -- strategies ------------------------------------------------------------

node_ids = st.integers(min_value=0, max_value=2**40)
slots = st.integers(min_value=0, max_value=2**48)
tx_ids = st.integers(min_value=0, max_value=2**32)

rts_frames = st.builds(
    RtsFrame,
    sender=node_ids,
    receiver=node_ids,
    seq_off=st.integers(min_value=0, max_value=2**31),
    attempt=st.integers(min_value=1, max_value=MAX_ATTEMPT_FIELD),
    digest=st.binary(min_size=16, max_size=16),
)

observed_transmissions = st.builds(
    ObservedTransmission,
    start_slot=slots,
    end_slot=slots,
    rts=st.one_of(st.none(), rts_frames),
    success=st.booleans(),
    receiver=node_ids,
    impairment=st.one_of(
        st.none(), st.text(alphabet=st.characters(codec="ascii"), max_size=12)
    ),
)

id_sets = st.frozensets(node_ids, max_size=6)

finite_coords = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)

position_maps = st.dictionaries(
    node_ids, st.tuples(finite_coords, finite_coords), max_size=6
)


def _wire_trip(data):
    """One hop across the wire: serialize and parse back, like a socket."""
    return json.loads(json.dumps(data))


# -- codec bijection -------------------------------------------------------


class TestCodecRoundTrip:
    @given(frame=rts_frames)
    def test_rts_round_trip_is_exact(self, frame):
        back = rts_from_json(_wire_trip(rts_to_json(frame)))
        assert back == frame
        assert back.digest == frame.digest

    @given(observed=observed_transmissions)
    def test_observed_round_trip_is_exact(self, observed):
        back = observed_from_json(_wire_trip(observed_to_json(observed)))
        assert back == observed

    @given(observed=observed_transmissions)
    def test_slots_stay_exact_ints(self, observed):
        """Slot fields must come back as python ints, never floats —
        a float slot would poison every downstream Slots computation."""
        back = observed_from_json(_wire_trip(observed_to_json(observed)))
        assert type(back.start_slot) is int
        assert type(back.end_slot) is int
        assert type(back.receiver) is int
        if back.rts is not None:
            assert type(back.rts.seq_off) is int
            assert type(back.rts.attempt) is int

    @given(observed=observed_transmissions)
    def test_serialization_is_canonical(self, observed):
        """Encoding is deterministic: two encodes of equal values agree
        byte for byte (sorted keys, no whitespace)."""
        first = json.dumps(observed_to_json(observed), sort_keys=True)
        second = json.dumps(observed_to_json(observed), sort_keys=True)
        assert first == second


# -- line-level round trips ------------------------------------------------


class TestLineRoundTrip:
    @given(slot=slots, tx=tx_ids, sender=node_ids, sensed=id_sets, decoded=id_sets)
    def test_start_line(self, slot, tx, sender, sensed, decoded):
        event = parse_line(start_line(slot, tx, sender, sensed, decoded))
        assert isinstance(event, StartEvent)
        assert event == StartEvent(
            slot=slot, tx=tx, sender=sender, sensed=sensed, decoded=decoded
        )
        assert type(event.slot) is int

    @settings(deadline=None)
    @given(
        slot=slots,
        tx=tx_ids,
        sender=node_ids,
        sensed=id_sets,
        observed=observed_transmissions,
    )
    def test_end_line(self, slot, tx, sender, sensed, observed):
        event = parse_line(end_line(slot, tx, sender, sensed, observed))
        assert isinstance(event, EndEvent)
        assert event == EndEvent(
            slot=slot, tx=tx, sender=sender, sensed=sensed, observed=observed
        )

    @given(slot=slots, positions=position_maps)
    def test_positions_line(self, slot, positions):
        event = parse_line(positions_line(slot, positions))
        assert isinstance(event, PositionsEvent)
        assert event.slot == slot
        assert event.positions == positions

    @given(slot=slots)
    def test_shutdown_line(self, slot):
        event = parse_line(shutdown_line(slot))
        assert event == ShutdownEvent(slot=slot)

    def test_blank_lines_parse_to_none(self):
        assert parse_line("") is None
        assert parse_line("   \t ") is None


# -- type-shift rejection --------------------------------------------------


class TestTypeShiftRejection:
    @given(slot=slots)
    def test_float_slot_rejected(self, slot):
        try:
            observed_from_json(
                {
                    "start_slot": float(slot),
                    "end_slot": slot,
                    "rts": None,
                    "success": True,
                    "receiver": 1,
                    "impairment": None,
                }
            )
        except ValueError:
            return
        raise AssertionError("float start_slot was accepted")

    @given(field=st.sampled_from(["start_slot", "end_slot", "receiver"]))
    def test_bool_int_field_rejected(self, field):
        data = {
            "start_slot": 1,
            "end_slot": 2,
            "rts": None,
            "success": True,
            "receiver": 3,
            "impairment": None,
        }
        data[field] = True
        try:
            observed_from_json(data)
        except ValueError:
            return
        raise AssertionError(f"bool {field} was accepted")

    def test_int_success_rejected(self):
        data = {
            "start_slot": 1,
            "end_slot": 2,
            "rts": None,
            "success": 1,
            "receiver": 3,
            "impairment": None,
        }
        try:
            observed_from_json(data)
        except ValueError:
            return
        raise AssertionError("integer success was accepted")

    @given(frame=rts_frames)
    def test_rts_bool_fields_rejected(self, frame):
        data = rts_to_json(frame)
        data["attempt"] = True
        try:
            rts_from_json(data)
        except ValueError:
            return
        raise AssertionError("bool attempt was accepted")
