"""Tests for verdict aggregation into reputation scores."""

import pytest

from repro.core.records import Diagnosis, Verdict
from repro.core.reputation import ReputationConfig, ReputationTracker


def _malicious(slot=0, deterministic=False):
    return Verdict(
        diagnosis=Diagnosis.MALICIOUS, slot=slot, deterministic=deterministic
    )


def _clean(slot=0):
    return Verdict(diagnosis=Diagnosis.WELL_BEHAVED, slot=slot)


class TestScores:
    def test_unknown_node_trusted(self):
        tracker = ReputationTracker()
        assert tracker.score(42) == 1.0
        assert not tracker.is_quarantined(42)

    def test_malicious_verdict_reduces_score(self):
        tracker = ReputationTracker()
        score = tracker.ingest(1, _malicious())
        assert score == pytest.approx(0.5)

    def test_deterministic_penalty_heavier(self):
        tracker = ReputationTracker()
        stat = tracker.ingest(1, _malicious())
        det = tracker.ingest(2, _malicious(deterministic=True))
        assert det < stat

    def test_clean_verdicts_recover(self):
        tracker = ReputationTracker()
        tracker.ingest(1, _malicious())
        before = tracker.score(1)
        tracker.ingest(1, _clean())
        assert tracker.score(1) > before

    def test_score_bounded(self):
        tracker = ReputationTracker()
        for _ in range(50):
            tracker.ingest(1, _clean())
        assert tracker.score(1) <= 1.0
        for _ in range(50):
            tracker.ingest(1, _malicious(deterministic=True))
        assert tracker.score(1) >= 0.0

    def test_stats(self):
        tracker = ReputationTracker()
        tracker.ingest(1, _malicious())
        tracker.ingest(1, _clean())
        tracker.ingest(1, _clean())
        assert tracker.stats(1) == (1, 2)
        assert tracker.stats(9) == (0, 0)


class TestQuarantine:
    def test_repeat_offender_quarantined(self):
        tracker = ReputationTracker()
        for _ in range(3):
            tracker.ingest(1, _malicious())
        assert tracker.is_quarantined(1)
        assert tracker.quarantined_nodes() == [1]

    def test_hysteresis_rehabilitation(self):
        tracker = ReputationTracker()
        for _ in range(3):
            tracker.ingest(1, _malicious())
        assert tracker.is_quarantined(1)
        # A single clean window is not enough to rehabilitate.
        tracker.ingest(1, _clean())
        assert tracker.is_quarantined(1)
        for _ in range(60):
            tracker.ingest(1, _clean())
        assert not tracker.is_quarantined(1)

    def test_ingest_all(self):
        tracker = ReputationTracker()
        verdicts = [_malicious(), _malicious(), _clean()]
        tracker.ingest_all(1, verdicts)
        assert tracker.stats(1) == (2, 1)


class TestConfigValidation:
    def test_hysteresis_enforced(self):
        with pytest.raises(ValueError):
            ReputationConfig(
                quarantine_threshold=0.5, rehabilitate_threshold=0.4
            )

    def test_penalty_bounds(self):
        with pytest.raises(ValueError):
            ReputationConfig(statistical_penalty=1.5)


class TestEndToEnd:
    def test_cheater_ends_quarantined_honest_does_not(self):
        from repro.core.detector import BackoffMisbehaviorDetector, DetectorConfig
        from repro.mac.misbehavior import PercentageMisbehavior
        from repro.sim.network import Flow, Simulation, SimulationConfig
        from repro.topology.placement import center_pair_indices, grid_positions

        positions = grid_positions(rows=5, cols=6, spacing=240)
        sender, monitor = center_pair_indices(5, 6)
        flows = [
            Flow(source=i, load=0.6)
            for i in range(len(positions))
            if i != monitor
        ]

        def run(policies):
            sim = Simulation(
                positions,
                flows=flows,
                policies=policies,
                config=SimulationConfig(seed=7),
            )
            det = BackoffMisbehaviorDetector(
                monitor, sender,
                config=DetectorConfig(sample_size=25, known_n=5, known_k=5),
            )
            sim.add_listener(det)
            sim.run(12.0)
            tracker = ReputationTracker()
            tracker.ingest_all(sender, det.verdicts)
            return tracker

        cheater = run({sender: PercentageMisbehavior(70)})
        honest = run({})
        assert cheater.is_quarantined(sender)
        assert not honest.is_quarantined(sender)
        assert honest.score(sender) > 0.9
