"""Unit tests for repro.phy.medium."""

import pytest

from repro.phy.channel import Channel
from repro.phy.medium import Medium, Transmission


@pytest.fixture
def medium():
    """Three nodes in a line: 0 -- 240m -- 1 -- 240m -- 2.

    0 and 2 are 480 m apart: inside sensing range (550) of each other but
    outside decode range (250).
    """
    m = Medium(Channel())
    m.update_positions({0: (0, 0), 1: (240, 0), 2: (480, 0)})
    return m


class TestReachability:
    def test_neighbors_decode_range(self, medium):
        assert medium.neighbors(0) == {1}
        assert medium.neighbors(1) == {0, 2}

    def test_sensed_sources(self, medium):
        assert medium.sensed_sources(0) == {1, 2}

    def test_sensors_of_symmetric_model(self, medium):
        assert medium.sensors_of(0) == {1, 2}
        assert medium.sensors_of(1) == {0, 2}

    def test_can_decode(self, medium):
        assert medium.can_decode(0, 1)
        assert not medium.can_decode(0, 2)

    def test_senses(self, medium):
        assert medium.senses(0, 2)

    def test_positions_read_only(self, medium):
        positions = medium.positions
        with pytest.raises(TypeError):
            positions[0] = (999, 999)
        assert medium.positions[0] == (0, 0)


class TestTransmissions:
    def test_start_and_end(self, medium):
        tx = Transmission(sender=0, receiver=1, start_slot=0, end_slot=10)
        tx_id = medium.start_transmission(tx)
        assert medium.is_transmitting(0)
        assert medium.active_item(tx_id) is tx
        assert medium.end_transmission(tx_id) is tx
        assert not medium.is_transmitting(0)

    def test_zero_duration_rejected(self, medium):
        with pytest.raises(ValueError):
            medium.start_transmission(
                Transmission(sender=0, receiver=1, start_slot=5, end_slot=5)
            )

    def test_senses_busy(self, medium):
        medium.start_transmission(
            Transmission(sender=0, receiver=1, start_slot=0, end_slot=10)
        )
        assert medium.senses_busy(1)
        assert medium.senses_busy(2)  # within 550 m of node 0

    def test_own_transmission_not_busy(self, medium):
        medium.start_transmission(
            Transmission(sender=0, receiver=1, start_slot=0, end_slot=10)
        )
        assert not medium.senses_busy(0)

    def test_busy_until(self, medium):
        medium.start_transmission(
            Transmission(sender=0, receiver=1, start_slot=0, end_slot=10)
        )
        medium.start_transmission(
            Transmission(sender=2, receiver=1, start_slot=0, end_slot=25)
        )
        assert medium.busy_until(1) == 25
        assert medium.busy_until(0) == 25  # node 0 senses node 2

    def test_busy_until_none_when_idle(self, medium):
        assert medium.busy_until(0) is None

    def test_interferers_at(self, medium):
        medium.start_transmission(
            Transmission(sender=0, receiver=1, start_slot=0, end_slot=10)
        )
        medium.start_transmission(
            Transmission(sender=2, receiver=1, start_slot=2, end_slot=12)
        )
        assert medium.interferers_at(1, exclude_sender=0) == [2]

    def test_active_items(self, medium):
        tx = Transmission(sender=0, receiver=1, start_slot=0, end_slot=10)
        tx_id = medium.start_transmission(tx)
        assert list(medium.active_items()) == [(tx_id, tx)]
        assert list(medium.active_transmissions()) == [tx]

    def test_active_handshakes(self, medium):
        hs = Transmission(
            sender=0, receiver=1, start_slot=0, end_slot=10, kind="handshake"
        )
        data = Transmission(sender=2, receiver=1, start_slot=0, end_slot=10)
        hs_id = medium.start_transmission(hs)
        medium.start_transmission(data)
        assert list(medium.active_handshakes()) == [(hs_id, hs)]
        medium.extend_transmission(hs_id, 40, kind="exchange")
        assert list(medium.active_handshakes()) == []

    def test_extend_transmission(self, medium):
        tx = Transmission(sender=0, receiver=1, start_slot=0, end_slot=10)
        tx_id = medium.start_transmission(tx)
        medium.extend_transmission(tx_id, 30)
        assert tx.end_slot == 30
        assert medium.busy_until(1) == 30
        with pytest.raises(ValueError):
            medium.extend_transmission(tx_id, 20)  # never shrink


class TestOutOfRange:
    def test_far_node_not_busy(self):
        m = Medium(Channel())
        m.update_positions({0: (0, 0), 1: (240, 0), 9: (2000, 0)})
        m.start_transmission(
            Transmission(sender=0, receiver=1, start_slot=0, end_slot=10)
        )
        assert not m.senses_busy(9)

    def test_update_positions_rebuilds(self):
        m = Medium(Channel())
        m.update_positions({0: (0, 0), 1: (2000, 0)})
        assert m.neighbors(0) == frozenset()
        m.update_positions({0: (0, 0), 1: (100, 0)})
        assert m.neighbors(0) == {1}
