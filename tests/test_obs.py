"""Tests for the observability subsystem (repro.obs).

Registry arithmetic and histogram bucketing, manifest round-trips,
audit-log JSONL schema, the metrics listener on a real simulation, and
the process-wide runtime switch the engine consults.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.obs import (
    AUDIT_RULES,
    AuditRecord,
    Counter,
    DecisionAuditLog,
    Gauge,
    Histogram,
    MetricsListener,
    MetricsRegistry,
    RunManifest,
    disable_metrics,
    enable_metrics,
    metrics_enabled,
    reset_metrics,
    shared_registry,
    to_jsonable,
)
from repro.obs.audit import AUDIT_FIELDS


@pytest.fixture(autouse=True)
def _clean_runtime():
    """Every test starts and ends with metrics off and a fresh registry."""
    disable_metrics()
    reset_metrics()
    yield
    disable_metrics()
    reset_metrics()


# -- registry -----------------------------------------------------------------


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge("x")
        g.set(3)
        g.set(7.5)
        assert g.value == 7.5


class TestHistogram:
    def test_bucketing_inclusive_upper_edges(self):
        h = Histogram("x", bounds=(1.0, 5.0, 10.0))
        for v in (0.5, 1.0, 3.0, 10.0, 11.0):
            h.observe(v)
        snap = h.snapshot()
        # 0.5 and 1.0 land in <=1; 3.0 in <=5; 10.0 in <=10; 11.0 overflows.
        assert snap["bounds"] == [1.0, 5.0, 10.0]
        assert snap["counts"] == [2, 1, 1, 1]
        assert snap["count"] == 5
        assert snap["min"] == 0.5
        assert snap["max"] == 11.0
        assert snap["total"] == pytest.approx(25.5)

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("x", bounds=(5.0, 1.0))


class TestMetricsRegistry:
    def test_counter_reuse_and_snapshot_sorted(self):
        reg = MetricsRegistry()
        reg.inc("b")
        reg.inc("a", 2)
        reg.inc("b")
        snap = reg.snapshot()
        assert snap["counters"] == {"a": 2, "b": 2}
        assert list(snap["counters"]) == ["a", "b"]

    def test_gauge_and_histogram_conveniences(self):
        reg = MetricsRegistry()
        reg.set_gauge("g", 4)
        reg.histogram("h", bounds=(1.0, 3.0)).observe(2.0)
        snap = reg.snapshot()
        assert snap["gauges"] == {"g": 4}
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["histograms"]["h"]["bounds"] == [1.0, 3.0]

    def test_histogram_bounds_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h", bounds=(1.0, 2.0))
        with pytest.raises(ValueError):
            reg.histogram("h", bounds=(1.0, 3.0))

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.reset()
        assert len(reg) == 0
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_render_mentions_each_instrument(self):
        reg = MetricsRegistry()
        reg.inc("hits", 3)
        reg.set_gauge("level", 1.5)
        reg.observe("sizes", 2.0)
        text = reg.render()
        assert "hits = 3" in text
        assert "level = 1.5" in text
        assert "sizes" in text


# -- manifests ----------------------------------------------------------------


class TestToJsonable:
    def test_nan_and_inf_become_none(self):
        assert to_jsonable(float("nan")) is None
        assert to_jsonable(float("inf")) is None
        assert to_jsonable(1.5) == 1.5

    def test_tuples_sets_and_dict_keys(self):
        out = to_jsonable({0.6: (1, 2), "s": {3, 1}})
        assert out == {"0.6": [1, 2], "s": [1, 3]}


class TestRunManifest:
    def test_round_trip_write_load_equal(self, tmp_path):
        manifest = RunManifest(
            name="demo",
            seed=42,
            config={"pm": 60, "load": 0.6},
            repro_scale=1.0,
            duration_s=1.25,
            metrics={"counters": {"engine.slots": 10}},
            results={"points": [1, 2, 3]},
        )
        path = manifest.write(tmp_path / "run.json")
        assert RunManifest.load(path) == manifest

    def test_missing_keys_rejected(self):
        with pytest.raises(ValueError, match="missing required keys"):
            RunManifest.from_dict({"schema": "repro.obs/manifest/v1"})

    def test_wrong_schema_rejected(self, tmp_path):
        path = RunManifest(name="x").write(tmp_path / "m.json")
        data = json.loads(path.read_text())
        data["schema"] = "other/v9"
        with pytest.raises(ValueError, match="unsupported manifest schema"):
            RunManifest.from_dict(data)

    def test_version_filled_from_package(self):
        from repro import __version__

        assert RunManifest(name="x").version == __version__

    def test_nan_results_survive_json(self, tmp_path):
        manifest = RunManifest(name="x", results={"rate": float("nan")})
        path = manifest.write(tmp_path / "m.json")
        assert json.loads(path.read_text())["results"]["rate"] is None


# -- audit log ----------------------------------------------------------------


def _record(rule="rank_sum", **kw):
    base = dict(
        slot=100,
        monitor=1,
        tagged=2,
        rule=rule,
        diagnosis="malicious",
        deterministic=rule != "rank_sum",
        detail="d",
    )
    base.update(kw)
    return AuditRecord(**base)


class TestAuditLog:
    def test_rule_vocabulary_fixed(self):
        assert AUDIT_RULES == (
            "seq_offset",
            "attempt_number",
            "blatant_countdown",
            "rank_sum",
            "quarantine",
        )

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError):
            _record(rule="hunch")

    def test_jsonl_schema_and_round_trip(self, tmp_path):
        log = DecisionAuditLog()
        log.record(_record())
        log.record(_record(rule="blatant_countdown"))
        path = log.write_jsonl(tmp_path / "audit.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            assert set(json.loads(line)) == set(AUDIT_FIELDS)
        back = DecisionAuditLog.read_jsonl(path)
        assert back.records == log.records

    def test_counts_and_layer_split(self):
        log = DecisionAuditLog()
        log.record(_record())
        log.record(_record())
        log.record(_record(rule="seq_offset"))
        assert log.counts_by_rule() == {"rank_sum": 2, "seq_offset": 1}
        assert log.statistical_count == 2
        assert log.deterministic_count == 1

    def test_from_dict_rejects_unknown_keys(self):
        data = _record().to_dict()
        data["extra"] = 1
        with pytest.raises(ValueError):
            AuditRecord.from_dict(data)


# -- metrics listener on a real simulation ------------------------------------


def _tiny_sim(seed=7):
    from repro.sim.network import Flow, Simulation, SimulationConfig

    positions = [(0.0, 0.0), (200.0, 0.0), (400.0, 0.0), (600.0, 0.0)]
    flows = [Flow(source=0, destination=1, load=0.5),
             Flow(source=2, destination=3, load=0.5)]
    return Simulation(positions, flows=flows, config=SimulationConfig(seed=seed))


class TestMetricsListener:
    def test_collects_engine_and_backoff_counts(self):
        reg = MetricsRegistry()
        sim = _tiny_sim()
        sim.add_listener(MetricsListener(reg))
        sim.run(0.5)
        counters = reg.snapshot()["counters"]
        assert counters["engine.slots"] > 0
        assert counters["engine.events"] > 0
        assert counters["tx.starts"] > 0

    def test_harvest_is_idempotent_and_delta_based(self):
        reg = MetricsRegistry()
        sim = _tiny_sim()
        listener = MetricsListener(reg)
        sim.add_listener(listener)
        sim.run(0.3)
        listener.harvest(sim.engine)
        draws = reg.snapshot()["counters"]["backoff.draws"]
        listener.harvest(sim.engine)
        assert reg.snapshot()["counters"]["backoff.draws"] == draws
        assert draws > 0

    def test_same_seed_snapshots_byte_identical(self):
        snaps = []
        for _ in range(2):
            reg = MetricsRegistry()
            sim = _tiny_sim(seed=11)
            listener = MetricsListener(reg)
            sim.add_listener(listener)
            sim.run(0.4)
            listener.harvest(sim.engine)
            snaps.append(json.dumps(reg.snapshot(), sort_keys=True))
        assert snaps[0] == snaps[1]


# -- runtime switch -----------------------------------------------------------


class TestRuntimeSwitch:
    def test_engine_attaches_listener_when_enabled(self):
        enable_metrics()
        sim = _tiny_sim()
        assert sim.engine.metrics_listener is not None
        sim.run(0.2)
        counters = shared_registry().snapshot()["counters"]
        assert counters["engine.slots"] > 0

    def test_engine_pays_nothing_when_disabled(self):
        sim = _tiny_sim()
        assert sim.engine.metrics_listener is None
        assert metrics_enabled() is False

    def test_env_var_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS", "1")
        assert metrics_enabled() is True

    def test_reset_returns_fresh_shared_registry(self):
        shared_registry().inc("x")
        fresh = reset_metrics()
        assert fresh is shared_registry()
        assert len(fresh) == 0


# -- detector wiring ----------------------------------------------------------


class TestDetectorAudit:
    def test_deterministic_and_statistical_rules_distinguished(self):
        """A cheating sender yields audit records from both layers, and
        every record carries a valid rule name."""
        from repro.core.detector import DetectorConfig
        from repro.experiments.runner import collect_detection_samples
        from repro.experiments.scenarios import GridScenario

        audit = DecisionAuditLog()
        detector = collect_detection_samples(
            GridScenario(load=0.6, seed=5),
            25,
            detector_config=DetectorConfig(
                sample_size=25, known_n=5, known_k=5
            ),
            target_samples=120,
            max_duration_s=8.0,
            audit=audit,
        )
        # Every verdict (deterministic violations publish one too) is audited.
        assert len(audit) == len(detector.verdicts)
        assert audit.statistical_count > 0
        assert audit.deterministic_count > 0
        for record in audit:
            assert record.rule in AUDIT_RULES
            assert record.deterministic == (record.rule != "rank_sum")
        stat = [r for r in audit if not r.deterministic]
        assert all(r.p_value is not None for r in stat)
        assert all(r.threshold is not None for r in stat)

    def test_honest_sender_produces_benign_audit(self):
        from repro.core.detector import DetectorConfig
        from repro.experiments.runner import collect_detection_samples
        from repro.experiments.scenarios import GridScenario

        audit = DecisionAuditLog()
        collect_detection_samples(
            GridScenario(load=0.6, seed=9),
            0,
            detector_config=DetectorConfig(
                sample_size=25, known_n=5, known_k=5
            ),
            target_samples=60,
            max_duration_s=8.0,
            audit=audit,
        )
        assert audit.deterministic_count == 0
        benign = [r for r in audit if r.diagnosis != "malicious"]
        assert len(benign) >= len(audit.records) * 0.5


# -- backoff statistics -------------------------------------------------------


class TestBackoffStats:
    def test_draw_freeze_resume_counting(self):
        from repro.mac.backoff import BackoffScheduler

        b = BackoffScheduler()
        b.start(10)
        assert b.draws == 1
        b.resume(100)
        b.freeze(104)
        assert b.freezes == 1
        b.resume(120)  # 16 slots spent frozen
        assert b.slots_frozen == 16
        b.finish()
        assert not math.isnan(b.slots_frozen)


# -- snapshot merging ---------------------------------------------------------


class TestMergeSnapshot:
    def _registry_with_histogram(self, bounds=(1.0, 5.0)):
        registry = MetricsRegistry()
        h = registry.histogram("lat", bounds=bounds)
        for v in (0.5, 3.0, 9.0):
            h.observe(v)
        return registry

    def test_merge_adds_counters_and_histograms(self):
        a = self._registry_with_histogram()
        a.inc("events", 3)
        b = self._registry_with_histogram()
        b.inc("events", 4)
        a.merge_snapshot(b.snapshot())
        assert a.counter("events").value == 7
        merged = a.histogram("lat", bounds=(1.0, 5.0))
        assert merged.count == 6
        assert merged.counts == [2, 2, 2]
        assert merged.min == 0.5 and merged.max == 9.0

    def test_mismatched_bucket_bounds_rejected(self):
        a = self._registry_with_histogram(bounds=(1.0, 5.0))
        b = self._registry_with_histogram(bounds=(2.0, 6.0))
        with pytest.raises(ValueError, match="already registered with bounds"):
            a.merge_snapshot(b.snapshot())

    def test_empty_snapshot_is_a_noop(self):
        a = self._registry_with_histogram()
        a.inc("events", 3)
        before = a.snapshot()
        a.merge_snapshot({})
        a.merge_snapshot(MetricsRegistry().snapshot())
        assert a.snapshot() == before

    def test_merging_empty_histogram_preserves_min_max(self):
        a = self._registry_with_histogram()
        empty = MetricsRegistry()
        empty.histogram("lat", bounds=(1.0, 5.0))
        a.merge_snapshot(empty.snapshot())
        h = a.histogram("lat", bounds=(1.0, 5.0))
        assert h.min == 0.5 and h.max == 9.0 and h.count == 3

    def test_merge_into_empty_adopts_extremes(self):
        empty = MetricsRegistry()
        empty.histogram("lat", bounds=(1.0, 5.0))
        empty.merge_snapshot(self._registry_with_histogram().snapshot())
        h = empty.histogram("lat", bounds=(1.0, 5.0))
        assert h.min == 0.5 and h.max == 9.0 and h.count == 3


# -- manifest forward compatibility ------------------------------------------


class TestManifestForwardCompat:
    def test_unknown_fields_survive_round_trip(self, tmp_path):
        path = RunManifest(name="x", results={"ok": 1}).write(tmp_path / "m.json")
        data = json.loads(path.read_text())
        data["future_field"] = {"novel": True}
        (tmp_path / "m.json").write_text(json.dumps(data))
        loaded = RunManifest.load(tmp_path / "m.json")
        assert loaded.extras == {"future_field": {"novel": True}}
        rewritten = json.loads(loaded.write(tmp_path / "m2.json").read_text())
        assert rewritten["future_field"] == {"novel": True}

    def test_schema_error_names_offending_key(self, tmp_path):
        path = RunManifest(name="x").write(tmp_path / "m.json")
        data = json.loads(path.read_text())
        data["schema"] = "other/v9"
        with pytest.raises(ValueError, match="manifest key 'schema'"):
            RunManifest.from_dict(data)

    def test_no_extras_keeps_output_byte_identical(self, tmp_path):
        manifest = RunManifest(name="x", seed=1, results={"ok": 1})
        first = manifest.write(tmp_path / "a.json").read_text()
        second = RunManifest.load(tmp_path / "a.json").write(
            tmp_path / "b.json"
        ).read_text()
        assert first == second


# -- audit ordering determinism -----------------------------------------------


class TestCountsByRuleOrdering:
    def test_sorted_regardless_of_insertion_order(self):
        forward = DecisionAuditLog()
        for rule in ("seq_offset", "rank_sum", "blatant_countdown"):
            forward.record(_record(rule=rule))
        backward = DecisionAuditLog()
        for rule in ("blatant_countdown", "rank_sum", "seq_offset"):
            backward.record(_record(rule=rule))
        assert forward.counts_by_rule() == backward.counts_by_rule()
        assert (
            list(forward.counts_by_rule())
            == list(backward.counts_by_rule())
            == sorted(forward.counts_by_rule())
        )


# -- prometheus exposition ----------------------------------------------------


class TestPrometheusRender:
    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""

    def test_counter_becomes_total_with_type_line(self):
        registry = MetricsRegistry()
        registry.inc("engine.slots", 42)
        text = registry.render_prometheus()
        assert "# TYPE engine_slots_total counter" in text
        assert "engine_slots_total 42" in text

    def test_illegal_characters_sanitized(self):
        registry = MetricsRegistry()
        registry.inc("tx.data-frames/ok", 1)
        registry.set_gauge("9lives", 3.0)
        text = registry.render_prometheus()
        assert "tx_data_frames_ok_total 1" in text
        assert "_9lives 3" in text

    def test_histogram_buckets_cumulative_with_inf(self):
        registry = MetricsRegistry()
        h = registry.histogram("latency.us", bounds=(1.0, 5.0))
        for v in (0.5, 0.7, 3.0, 100.0):
            h.observe(v)
        text = registry.render_prometheus()
        assert '# TYPE latency_us histogram' in text
        assert 'latency_us_bucket{le="1"} 2' in text
        assert 'latency_us_bucket{le="5"} 3' in text
        assert 'latency_us_bucket{le="+Inf"} 4' in text
        assert "latency_us_sum 104.2" in text
        assert "latency_us_count 4" in text

    def test_output_sorted_and_byte_stable(self):
        def build():
            registry = MetricsRegistry()
            registry.inc("z.last", 1)
            registry.inc("a.first", 2)
            registry.set_gauge("mid", 0.5)
            return registry.render_prometheus()

        text = build()
        assert text == build()
        assert text.index("a_first_total") < text.index("z_last_total")
        assert text.endswith("\n")
