"""Unit tests for MAC timing constants."""

import pytest

from repro.mac.constants import DEFAULT_TIMING, MacTiming


class TestDefaultTiming:
    def test_slot_is_20us(self):
        assert DEFAULT_TIMING.slot_time_us == 20.0

    def test_difs_three_slots(self):
        assert DEFAULT_TIMING.difs_slots == 3

    def test_sifs_one_slot(self):
        assert DEFAULT_TIMING.sifs_slots == 1

    def test_modified_rts_is_38_bytes(self):
        # Stock 20-byte RTS + 2 bytes SeqOff#/Attempt# + 16-byte MD5.
        assert DEFAULT_TIMING.rts_bytes == 38

    def test_rts_air_time(self):
        # 38 bytes at 1 Mb/s + 192 us preamble = 496 us -> 25 slots.
        assert DEFAULT_TIMING.rts_slots == 25

    def test_cts_air_time(self):
        # 14 bytes at 1 Mb/s + 192 us = 304 us -> 16 slots.
        assert DEFAULT_TIMING.cts_slots == 16

    def test_data_air_time(self):
        # (512+28) bytes at 2 Mb/s + 192 us = 2352 us -> 118 slots.
        assert DEFAULT_TIMING.data_slots == 118

    def test_exchange_longer_than_handshake(self):
        assert DEFAULT_TIMING.exchange_slots > DEFAULT_TIMING.handshake_slots

    def test_handshake_composition(self):
        t = DEFAULT_TIMING
        assert t.handshake_slots == t.rts_slots + t.sifs_slots + t.cts_slots

    def test_exchange_composition(self):
        t = DEFAULT_TIMING
        assert t.exchange_slots == (
            t.handshake_slots
            + t.sifs_slots
            + t.data_slots
            + t.sifs_slots
            + t.ack_slots
        )

    def test_mean_service_includes_backoff(self):
        t = DEFAULT_TIMING
        assert t.mean_service_slots > t.exchange_slots

    def test_cw_bounds(self):
        assert DEFAULT_TIMING.cw_min == 31
        assert DEFAULT_TIMING.cw_max == 1023

    def test_retry_limit(self):
        assert DEFAULT_TIMING.retry_limit == 7


class TestCustomTiming:
    def test_payload_changes_data_slots(self):
        small = MacTiming(payload_bytes=64)
        assert small.data_slots < DEFAULT_TIMING.data_slots

    def test_invalid_cw_rejected(self):
        with pytest.raises(ValueError):
            MacTiming(cw_min=64, cw_max=32)

    def test_invalid_slot_time_rejected(self):
        with pytest.raises(ValueError):
            MacTiming(slot_time_us=0)

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_TIMING.cw_min = 15
