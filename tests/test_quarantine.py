"""Detector graceful degradation on undecodable observations.

An :class:`~repro.core.observation.ObservedTransmission` with no decoded
RTS (physics-side loss, or an injected impairment) must never feed the
deterministic verifiers or the rank-sum window.  Two regimes:

* **faults disabled** (the historical baseline): undecodable
  observations are skipped quietly — counted in ``quarantine_counts``,
  but no audit records and no metrics are emitted, keeping same-seed
  audit/metrics streams byte-identical to pre-fault-injection versions
  (pinned by ``tests/test_golden_fingerprints.py``);
* **faults enabled** (or ``DetectorConfig(quarantine_audit=True)``):
  every quarantined observation emits a ``rule="quarantine"`` audit
  record whose ``detail`` is the impairment reason code, plus
  ``detector.quarantined.<reason>`` metric counters.
"""

from __future__ import annotations

from repro.core.detector import DetectorConfig
from repro.experiments.runner import collect_detection_samples
from repro.experiments.scenarios import GridScenario
from repro.faults import (
    IMPAIRMENT_DECODE_FAILURE,
    IMPAIRMENT_REASONS,
    IMPAIRMENT_UNDECODABLE,
    set_fault_spec,
)
from repro.obs.audit import AUDIT_RULES, DecisionAuditLog

CONFIG = DetectorConfig(sample_size=25, known_n=5, known_k=5)


def _run(spec=None, config=CONFIG, pm=0, seconds=20.0, target=80):
    audit = DecisionAuditLog()
    set_fault_spec(spec)
    try:
        detector = collect_detection_samples(
            GridScenario(load=0.6, seed=11),
            pm=pm,
            detector_config=config,
            target_samples=target,
            max_duration_s=seconds,
            audit=audit,
        )
    finally:
        set_fault_spec(None)
    return detector, audit


def _quarantine_records(audit):
    return [r for r in audit.records if r.rule == "quarantine"]


def test_quarantine_rule_is_catalogued():
    assert "quarantine" in AUDIT_RULES


# -- baseline: faults disabled = the historical silent skip -------------------


def test_clean_run_counts_but_does_not_audit():
    """Physics-side losses are tracked (``undecodable``) but emit no
    audit records: the pre-fault-injection audit stream is preserved."""
    detector, audit = _run(spec=None)
    assert not detector._quarantine_audit
    assert _quarantine_records(audit) == []
    # The grid at load 0.6 does lose some frames to collisions/ranging,
    # so the silent path is genuinely exercised, not vacuous.
    assert detector.quarantine_counts.get(IMPAIRMENT_UNDECODABLE, 0) > 0
    assert set(detector.quarantine_counts) <= {IMPAIRMENT_UNDECODABLE}


def test_clean_run_emits_no_quarantine_metrics():
    from repro.obs.runtime import disable_metrics, enable_metrics, reset_metrics

    registry = reset_metrics()
    enable_metrics()
    try:
        _run(spec=None)
    finally:
        disable_metrics()
    counters = registry.snapshot()["counters"]
    assert not any(name.startswith("detector.quarantined") for name in counters)


def test_quarantined_observations_never_become_samples():
    detector, _audit = _run(spec="decode=0.5,seed=7")
    undecodable = [o for o in detector.observer.observed if o.rts is None]
    assert len(undecodable) == sum(detector.quarantine_counts.values())
    # Every accepted rank-sum sample came from a decoded announcement.
    assert detector.observation_count == len(detector.observations)


# -- faulted runs: quarantine + audit -----------------------------------------


def test_faulted_run_audits_every_quarantine():
    detector, audit = _run(spec="decode=0.4,seed=7")
    assert detector._quarantine_audit
    records = _quarantine_records(audit)
    assert len(records) == sum(detector.quarantine_counts.values())
    assert detector.quarantine_counts.get(IMPAIRMENT_DECODE_FAILURE, 0) > 0
    for record in records:
        assert record.detail in IMPAIRMENT_REASONS
        assert record.deterministic is False
        assert record.monitor == detector.monitor_id
        assert record.tagged == detector.tagged_id


def test_faulted_run_metrics_match_counts():
    from repro.obs.runtime import disable_metrics, enable_metrics, reset_metrics

    registry = reset_metrics()
    enable_metrics()
    try:
        detector, _audit = _run(spec="decode=0.4,seed=7")
    finally:
        disable_metrics()
    counters = registry.snapshot()["counters"]
    total = sum(detector.quarantine_counts.values())
    assert counters.get("detector.quarantined") == total
    for reason, count in detector.quarantine_counts.items():
        assert counters.get(f"detector.quarantined.{reason}") == count


def test_injected_and_physics_losses_get_distinct_reasons():
    detector, audit = _run(spec="decode=0.4,seed=7")
    reasons = {r.detail for r in _quarantine_records(audit)}
    assert IMPAIRMENT_DECODE_FAILURE in reasons
    assert IMPAIRMENT_UNDECODABLE in reasons


def test_detector_still_detects_through_impairment():
    """Graceful degradation, not blindness: a PM=60 cheat is still
    caught while 40% of announcements quarantine."""
    detector, _audit = _run(spec="decode=0.4,seed=7", pm=60, seconds=30.0)
    assert detector.quarantine_counts.get(IMPAIRMENT_DECODE_FAILURE, 0) > 0
    assert detector.observations  # samples still accumulate
    malicious = [v for v in detector.verdicts if v.diagnosis.value == "malicious"]
    assert malicious or detector.violations


# -- explicit overrides -------------------------------------------------------


def test_quarantine_audit_forced_on_without_faults():
    config = DetectorConfig(
        sample_size=25, known_n=5, known_k=5, quarantine_audit=True
    )
    detector, audit = _run(spec=None, config=config)
    records = _quarantine_records(audit)
    assert len(records) == sum(detector.quarantine_counts.values()) > 0
    assert {r.detail for r in records} == {IMPAIRMENT_UNDECODABLE}


def test_quarantine_audit_forced_off_with_faults():
    config = DetectorConfig(
        sample_size=25, known_n=5, known_k=5, quarantine_audit=False
    )
    detector, audit = _run(spec="decode=0.4,seed=7", config=config)
    assert _quarantine_records(audit) == []
    # Counts are still tracked even when emission is suppressed.
    assert detector.quarantine_counts.get(IMPAIRMENT_DECODE_FAILURE, 0) > 0
