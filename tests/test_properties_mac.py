"""Stateful property tests: the DCF MAC entity under arbitrary outcome
sequences, and engine-level invariants under random small scenarios."""

from hypothesis import given, settings, strategies as st

from repro.mac.dcf import DcfMac, MacState
from repro.traffic.queue import Packet


def _drive(mac, outcomes):
    """Run the MAC through a success/failure outcome sequence, returning
    the announced (offset, attempt) trail."""
    trail = []
    for success in outcomes:
        if not mac.has_traffic:
            mac.enqueue(Packet(source=mac.node_id, destination=2))
        if mac.needs_backoff_draw():
            mac.draw_backoff()
        rts = mac.build_rts()
        trail.append((rts.seq_off, rts.attempt))
        mac.begin_transmission()
        mac.complete_transmission(success)
    return trail


class TestMacStateProperties:
    @given(st.lists(st.booleans(), min_size=1, max_size=200))
    @settings(max_examples=60)
    def test_offsets_strictly_increase(self, outcomes):
        mac = DcfMac(1)
        trail = _drive(mac, outcomes)
        offsets = [o for o, _a in trail]
        assert offsets == sorted(set(offsets))
        assert offsets == list(range(len(offsets)))

    @given(st.lists(st.booleans(), min_size=1, max_size=200))
    @settings(max_examples=60)
    def test_attempts_bounded_by_retry_limit(self, outcomes):
        mac = DcfMac(1)
        trail = _drive(mac, outcomes)
        assert all(1 <= a <= mac.timing.retry_limit for _o, a in trail)

    @given(st.lists(st.booleans(), min_size=1, max_size=200))
    @settings(max_examples=60)
    def test_attempt_resets_after_success_or_drop(self, outcomes):
        mac = DcfMac(1)
        trail = _drive(mac, outcomes)
        for (_, attempt_prev), (_, attempt_next), success in zip(
            trail, trail[1:], outcomes
        ):
            if success:
                assert attempt_next == 1
            elif attempt_prev == mac.timing.retry_limit:
                assert attempt_next == 1  # packet dropped, fresh packet
            else:
                assert attempt_next == attempt_prev + 1

    @given(st.lists(st.booleans(), min_size=1, max_size=200))
    @settings(max_examples=60)
    def test_stats_accounting_consistent(self, outcomes):
        mac = DcfMac(1)
        _drive(mac, outcomes)
        stats = mac.stats
        assert stats.attempts == len(outcomes)
        assert stats.successes == sum(outcomes)
        assert stats.failures == len(outcomes) - sum(outcomes)
        assert stats.drops <= stats.failures // mac.timing.retry_limit + 1
        assert mac.state in (MacState.IDLE, MacState.CONTENDING)

    @given(st.lists(st.booleans(), min_size=1, max_size=120))
    @settings(max_examples=40)
    def test_honest_draws_always_match_prs(self, outcomes):
        mac = DcfMac(1)
        for success in outcomes:
            if not mac.has_traffic:
                mac.enqueue(Packet(source=1, destination=2))
            if mac.needs_backoff_draw():
                mac.draw_backoff()
                draw = mac.current_draw
                assert draw.actual == draw.dictated
                assert draw.dictated == mac.prng.dictated_backoff(
                    draw.offset, draw.attempt
                )
            mac.begin_transmission()
            mac.complete_transmission(success)


class TestEngineFuzz:
    @given(
        seed=st.integers(0, 10_000),
        n_nodes=st.integers(2, 8),
        n_flows=st.integers(1, 4),
        load=st.floats(min_value=0.05, max_value=2.0),
    )
    @settings(max_examples=15, deadline=None)
    def test_random_scenarios_preserve_invariants(self, seed, n_nodes,
                                                  n_flows, load):
        """Any small random scenario must satisfy the global MAC
        invariants: no partial transmission overlap within a sensing
        domain, bounded queues, consistent counters."""
        from repro.sim.listeners import SimulationListener
        from repro.sim.network import Flow, Simulation, SimulationConfig
        from repro.topology.placement import random_positions
        from repro.util.rng import RngStream

        positions = random_positions(
            n_nodes, width=800, height=800, rng=RngStream(seed, "fuzz-pos")
        )

        class Invariants(SimulationListener):
            def __init__(self):
                self.active = {}
                self.violations = []
                self.starts = 0
                self.ends = 0

            def on_transmission_start(self, slot, tx, medium):
                self.starts += 1
                for other in self.active.values():
                    if (
                        medium.senses(tx.sender, other.sender)
                        and other.start_slot != tx.start_slot
                    ):
                        self.violations.append((slot, tx.sender, other.sender))
                self.active[id(tx)] = tx

            def on_transmission_end(self, slot, tx, success, medium):
                self.ends += 1
                self.active.pop(id(tx), None)

        flows = [
            Flow(source=i % n_nodes, load=load)
            for i in range(n_flows)
            if i % n_nodes == i or i >= n_nodes  # distinct sources only
        ]
        # Deduplicate sources.
        seen = set()
        unique_flows = []
        for f in flows:
            if f.source not in seen:
                seen.add(f.source)
                unique_flows.append(f)

        sim = Simulation(
            positions,
            flows=unique_flows,
            config=SimulationConfig(seed=seed),
        )
        checker = Invariants()
        sim.add_listener(checker)
        sim.run(1.0)

        assert checker.violations == [], checker.violations
        # Transmissions still on the air when the horizon hits are fine;
        # everything else must have completed.
        assert checker.starts - checker.ends == len(checker.active)
        assert len(checker.active) <= n_nodes
        for mac in sim.macs.values():
            assert len(mac.queue) <= mac.queue.capacity
            # One attempt may still be in flight at the horizon.
            pending = mac.stats.attempts - (
                mac.stats.successes + mac.stats.failures
            )
            assert pending in (0, 1)
