"""Unit tests for the verifiable back-off PRNG."""

import pytest

from repro.mac.prng import (
    VerifiableBackoffPrng,
    contention_window_for_attempt,
    mac_address_seed,
    splitmix64,
)


class TestSplitmix:
    def test_deterministic(self):
        assert splitmix64(12345) == splitmix64(12345)

    def test_64_bit_output(self):
        for state in (0, 1, 2**63, 2**64 - 1):
            assert 0 <= splitmix64(state) < 2**64

    def test_avalanche(self):
        # Nearby states produce very different outputs.
        a = splitmix64(1)
        b = splitmix64(2)
        assert bin(a ^ b).count("1") > 16


class TestMacAddressSeed:
    def test_int_address(self):
        assert mac_address_seed(42) == mac_address_seed(42)

    def test_string_address(self):
        assert mac_address_seed("00:11:22:33:44:55") == mac_address_seed(
            "001122334455"
        )

    def test_bytes_address(self):
        assert mac_address_seed(b"\x00\x11\x22") == mac_address_seed(0x001122)

    def test_distinct_addresses_distinct_seeds(self):
        assert mac_address_seed(1) != mac_address_seed(2)

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            mac_address_seed(1.5)


class TestContentionWindow:
    def test_first_attempt_is_cw_min(self):
        assert contention_window_for_attempt(1, 31, 1023) == 31

    def test_doubling(self):
        assert contention_window_for_attempt(2, 31, 1023) == 63
        assert contention_window_for_attempt(3, 31, 1023) == 127

    def test_capped_at_cw_max(self):
        assert contention_window_for_attempt(7, 31, 1023) == 1023
        assert contention_window_for_attempt(20, 31, 1023) == 1023

    def test_rejects_zero_attempt(self):
        with pytest.raises(ValueError):
            contention_window_for_attempt(0, 31, 1023)


class TestVerifiableBackoffPrng:
    def test_monitor_reproduces_sender_sequence(self):
        """The core property of the scheme: anyone with the MAC address
        computes the identical dictated sequence."""
        sender = VerifiableBackoffPrng(7)
        monitor = VerifiableBackoffPrng(7)
        for offset in range(100):
            for attempt in (1, 2, 3):
                assert sender.dictated_backoff(offset, attempt) == (
                    monitor.dictated_backoff(offset, attempt)
                )

    def test_distinct_nodes_distinct_sequences(self):
        a = VerifiableBackoffPrng(1).dictated_sequence(0, 50)
        b = VerifiableBackoffPrng(2).dictated_sequence(0, 50)
        assert a != b

    def test_backoff_within_window(self):
        prng = VerifiableBackoffPrng(5)
        for offset in range(200):
            assert 0 <= prng.dictated_backoff(offset, 1) <= 31
            assert 0 <= prng.dictated_backoff(offset, 3) <= 127

    def test_backoff_roughly_uniform(self):
        prng = VerifiableBackoffPrng(9)
        values = prng.dictated_sequence(0, 4000)
        mean = sum(values) / len(values)
        assert mean == pytest.approx(15.5, rel=0.1)
        assert set(values) == set(range(32))

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            VerifiableBackoffPrng(1).raw_draw(-1)

    def test_dictated_sequence_matches_point_queries(self):
        prng = VerifiableBackoffPrng(3)
        seq = prng.dictated_sequence(10, 5, attempt=2)
        assert seq == [prng.dictated_backoff(10 + i, 2) for i in range(5)]

    def test_invalid_cw_rejected(self):
        with pytest.raises(ValueError):
            VerifiableBackoffPrng(1, cw_min=0)
        with pytest.raises(ValueError):
            VerifiableBackoffPrng(1, cw_min=31, cw_max=15)
