"""Unit tests for the system-state estimator (paper eqs. 1-5)."""

import pytest

from repro.core.density import NodeDensityEstimator
from repro.core.sysstate import SystemStateEstimator
from repro.geometry.regions import RegionModel


@pytest.fixture
def estimator():
    return SystemStateEstimator(RegionModel())


class TestProbabilities:
    def test_eq5_complement(self, estimator):
        probs = estimator.probabilities(0.5, 5, 5)
        assert probs.p_idle_given_idle == pytest.approx(
            1.0 - probs.p_busy_given_idle
        )

    def test_eq3_formula(self, estimator):
        rho, n, k = 0.3, 5, 5
        regions = estimator.region_model.regions
        expected = regions.left_exclusive_fraction * (1 - (1 - rho) ** (n + k))
        assert estimator.probabilities(rho, n, k).p_busy_given_idle == (
            pytest.approx(expected)
        )

    def test_eq4_formula(self, estimator):
        rho, n, k = 0.3, 5, 5
        regions = estimator.region_model.regions
        busy_term = 1 - (1 - rho) ** (n + k)
        empty_term = (1 - rho) ** (n + k)
        expected = regions.right_exclusive_fraction * (
            regions.left_hidden_fraction * busy_term + empty_term
        )
        assert estimator.probabilities(rho, n, k).p_idle_given_busy == (
            pytest.approx(expected)
        )

    def test_p_busy_given_idle_increases_with_rho(self, estimator):
        values = [
            estimator.probabilities(rho, 5, 5).p_busy_given_idle
            for rho in (0.1, 0.3, 0.5, 0.7, 0.9)
        ]
        assert values == sorted(values)

    def test_p_idle_given_busy_decreases_with_rho(self, estimator):
        values = [
            estimator.probabilities(rho, 5, 5).p_idle_given_busy
            for rho in (0.1, 0.3, 0.5, 0.7, 0.9)
        ]
        assert values == sorted(values, reverse=True)

    def test_zero_traffic_limits(self, estimator):
        probs = estimator.probabilities(0.0, 5, 5)
        # Nobody transmits: S is never busy while R idle...
        assert probs.p_busy_given_idle == 0.0
        assert probs.p_idle_given_idle == 1.0

    def test_saturated_limits(self, estimator):
        probs = estimator.probabilities(1.0, 5, 5)
        regions = estimator.region_model.regions
        assert probs.p_busy_given_idle == pytest.approx(
            regions.left_exclusive_fraction
        )
        assert probs.p_idle_given_busy == pytest.approx(
            regions.right_exclusive_fraction * regions.left_hidden_fraction
        )

    def test_all_probabilities_valid(self, estimator):
        for rho in (0.0, 0.25, 0.5, 0.75, 1.0):
            for nk in ((1, 1), (5, 5), (20, 20), (0, 0)):
                probs = estimator.probabilities(rho, *nk)
                for p in (
                    probs.p_busy_given_idle,
                    probs.p_idle_given_busy,
                    probs.p_idle_given_idle,
                ):
                    assert 0.0 <= p <= 1.0

    def test_paper_insensitivity_to_n_k(self, estimator):
        """The paper found n and k 'do not play a significant role' at
        moderate+ intensity — the exponent saturates."""
        at_5 = estimator.probabilities(0.6, 5, 5)
        at_10 = estimator.probabilities(0.6, 10, 10)
        assert at_5.p_busy_given_idle == pytest.approx(
            at_10.p_busy_given_idle, abs=0.01
        )

    def test_invalid_inputs_rejected(self, estimator):
        with pytest.raises(ValueError):
            estimator.probabilities(1.5, 5, 5)
        with pytest.raises(ValueError):
            estimator.probabilities(0.5, -1, 5)


class TestSlotEstimates:
    def test_eq1_eq2_sum(self, estimator):
        i_est, b_est = estimator.estimate_sender_slots(100, 200, 0.5, 5, 5)
        assert i_est + b_est == pytest.approx(300)

    def test_all_idle_low_traffic(self, estimator):
        i_est, _ = estimator.estimate_sender_slots(100, 0, 0.0, 5, 5)
        assert i_est == pytest.approx(100)

    def test_busy_slots_contribute_via_p_ib(self, estimator):
        probs = estimator.probabilities(0.5, 5, 5)
        i_est, _ = estimator.estimate_sender_slots(0, 100, 0.5, 5, 5)
        assert i_est == pytest.approx(100 * probs.p_idle_given_busy)

    def test_clamped_to_interval(self, estimator):
        i_est, b_est = estimator.estimate_sender_slots(10, 10, 0.9, 5, 5)
        assert 0 <= i_est <= 20
        assert 0 <= b_est <= 20

    def test_negative_counts_rejected(self, estimator):
        with pytest.raises(ValueError):
            estimator.estimate_sender_slots(-1, 10, 0.5, 5, 5)


class TestDensityEstimator:
    def test_density_from_terminals(self):
        import math

        est = NodeDensityEstimator(transmission_range=250.0)
        density = est.density_from_terminals(10)
        assert density == pytest.approx(10 / (math.pi * 250**2))

    def test_region_counts_scale(self):
        est = NodeDensityEstimator()
        low = est.region_counts(5)
        high = est.region_counts(10)
        for label in low:
            assert high[label] == pytest.approx(2 * low[label])

    def test_zero_terminals(self):
        est = NodeDensityEstimator()
        assert all(v == 0.0 for v in est.region_counts(0).values())

    def test_contention_exponent(self):
        est = NodeDensityEstimator()
        counts = est.region_counts(8)
        assert est.contention_exponent(8) == pytest.approx(
            counts["A1"] + counts["A2"]
        )

    def test_negative_terminals_rejected(self):
        with pytest.raises(ValueError):
            NodeDensityEstimator().density_from_terminals(-1)
