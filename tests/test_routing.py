"""Unit tests for the routing substrate (neighbors, AODV, relay)."""

import pytest

from repro.mac.dcf import DcfMac
from repro.phy.channel import Channel
from repro.phy.medium import Medium, Transmission
from repro.routing.aodv import AodvRouter
from repro.routing.neighbors import NeighborTable, build_neighbor_tables
from repro.routing.relay import MultiHopService
from repro.traffic.queue import Packet


class _Graph:
    """Minimal link provider for router tests."""

    def __init__(self, edges):
        self._adj = {}
        for a, b in edges:
            self._adj.setdefault(a, set()).add(b)
            self._adj.setdefault(b, set()).add(a)

    def neighbors(self, node):
        return self._adj.get(node, set())


class TestNeighborTable:
    def test_refresh_and_query(self):
        t = NeighborTable(0)
        t.refresh([1, 2], slot=10)
        assert t.neighbors() == {1, 2}
        assert 1 in t

    def test_self_excluded(self):
        t = NeighborTable(0)
        t.refresh([0, 1], slot=0)
        assert t.neighbors() == {1}

    def test_expiry(self):
        t = NeighborTable(0, expiry_slots=100)
        t.refresh([1], slot=0)
        t.refresh([2], slot=150)
        assert t.neighbors(slot=180) == {2}

    def test_forget(self):
        t = NeighborTable(0)
        t.refresh([1, 2])
        t.forget(1)
        assert t.neighbors() == {2}

    def test_build_from_medium(self):
        m = Medium(Channel())
        m.update_positions({0: (0, 0), 1: (200, 0), 2: (5000, 0)})
        tables = build_neighbor_tables(m)
        assert tables[0].neighbors() == {1}
        assert tables[2].neighbors() == frozenset()


class TestAodvRouter:
    def test_direct_route(self):
        router = AodvRouter(_Graph([(0, 1)]))
        entry = router.route(0, 1)
        assert entry.next_hop == 1
        assert entry.hop_count == 1

    def test_multi_hop_route(self):
        router = AodvRouter(_Graph([(0, 1), (1, 2), (2, 3)]))
        entry = router.route(0, 3)
        assert entry.next_hop == 1
        assert entry.hop_count == 3

    def test_shortest_path_chosen(self):
        router = AodvRouter(
            _Graph([(0, 1), (1, 3), (0, 2), (2, 4), (4, 3)])
        )
        assert router.route(0, 3).hop_count == 2

    def test_intermediate_routes_installed(self):
        router = AodvRouter(_Graph([(0, 1), (1, 2)]))
        router.route(0, 2)
        # The RREP pass installs the forward route at node 1 too.
        assert router.tables[1][2].next_hop == 2
        # And reverse routes toward the source.
        assert router.tables[2][0].next_hop == 1

    def test_unreachable_returns_none(self):
        router = AodvRouter(_Graph([(0, 1), (2, 3)]))
        assert router.route(0, 3) is None
        assert router.failed_discoveries == 1

    def test_route_to_self_rejected(self):
        router = AodvRouter(_Graph([(0, 1)]))
        with pytest.raises(ValueError):
            router.route(0, 0)

    def test_control_overhead_counted(self):
        router = AodvRouter(_Graph([(0, 1), (1, 2)]))
        router.route(0, 2)
        assert router.control_messages > 0
        assert router.rreq_floods == 1

    def test_cached_route_no_new_flood(self):
        router = AodvRouter(_Graph([(0, 1)]))
        router.route(0, 1)
        router.route(0, 1)
        assert router.rreq_floods == 1

    def test_invalidate_all(self):
        router = AodvRouter(_Graph([(0, 1)]))
        router.route(0, 1)
        router.invalidate_all()
        router.route(0, 1)
        assert router.rreq_floods == 2

    def test_invalidate_link(self):
        router = AodvRouter(_Graph([(0, 1), (1, 2)]))
        router.route(0, 2)
        router.invalidate_link(0, 1)
        assert 2 not in router.tables.get(0, {})

    def test_sequence_numbers_increase(self):
        router = AodvRouter(_Graph([(0, 1)]))
        first = router.route(0, 1).dest_seq
        router.invalidate_all()
        second = router.route(0, 1).dest_seq
        assert second > first


class TestMultiHopService:
    def _setup(self):
        medium = Medium(Channel())
        medium.update_positions({0: (0, 0), 1: (240, 0), 2: (480, 0)})
        macs = {i: DcfMac(i) for i in range(3)}
        service = MultiHopService(macs, link_provider=medium)
        return medium, macs, service

    def test_first_hop(self):
        _medium, _macs, service = self._setup()
        assert service.first_hop(0, 2) == 1

    def test_forwarding_enqueues_at_relay(self):
        medium, macs, service = self._setup()
        packet = Packet(source=0, destination=1, final_destination=2)
        tx = Transmission(
            sender=0, receiver=1, start_slot=0, end_slot=10,
            kind="exchange", packet=packet,
        )
        service.on_transmission_end(10, tx, True, medium)
        assert macs[1].has_traffic
        relayed = macs[1].head_packet
        assert relayed.destination == 2
        assert relayed.final_destination == 2
        assert service.forwarded == 1

    def test_final_delivery_counted(self):
        medium, macs, service = self._setup()
        packet = Packet(source=1, destination=2, final_destination=2)
        tx = Transmission(
            sender=1, receiver=2, start_slot=0, end_slot=10,
            kind="exchange", packet=packet,
        )
        service.on_transmission_end(10, tx, True, medium)
        assert service.delivered_end_to_end == 1
        assert not macs[2].has_traffic

    def test_failed_tx_not_forwarded(self):
        medium, macs, service = self._setup()
        packet = Packet(source=0, destination=1, final_destination=2)
        tx = Transmission(
            sender=0, receiver=1, start_slot=0, end_slot=10, packet=packet
        )
        service.on_transmission_end(10, tx, False, medium)
        assert not macs[1].has_traffic

    def test_single_hop_packets_ignored(self):
        medium, macs, service = self._setup()
        packet = Packet(source=0, destination=1)  # no final_destination
        tx = Transmission(
            sender=0, receiver=1, start_slot=0, end_slot=10,
            kind="exchange", packet=packet,
        )
        service.on_transmission_end(10, tx, True, medium)
        assert not macs[1].has_traffic
        assert service.delivered_end_to_end == 0

    def test_epoch_invalidates_routes(self):
        medium, _macs, service = self._setup()
        service.router.route(0, 2)
        service.on_positions_updated(0, medium.positions, medium)
        assert service.router.tables == {}

    def test_requires_router_or_links(self):
        with pytest.raises(ValueError):
            MultiHopService({})
