"""Unit tests for repro.util.validation."""

import math

import pytest

from repro.util.validation import (
    check_finite,
    check_in_range,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(1.5, "x") == 1.5

    @pytest.mark.parametrize("value", [0, -1, -0.001])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ValueError, match="x"):
            check_positive(value, "x")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative(-0.1, "x")


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert check_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01])
    def test_rejects_outside(self, value):
        with pytest.raises(ValueError):
            check_probability(value, "p")


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range(1, 1, 5, "x") == 1
        assert check_in_range(5, 1, 5, "x") == 5

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_in_range(6, 1, 5, "x")


class TestCheckFinite:
    def test_accepts_finite(self):
        assert check_finite(3.0, "x") == 3.0

    @pytest.mark.parametrize("value", [math.inf, -math.inf, math.nan])
    def test_rejects_non_finite(self, value):
        with pytest.raises(ValueError):
            check_finite(value, "x")
