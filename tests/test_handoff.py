"""Tests for monitor hand-off under mobility."""

import pytest

from repro.core.detector import DetectorConfig
from repro.core.handoff import MonitorHandoff
from repro.mac.misbehavior import PercentageMisbehavior
from repro.phy.channel import Channel
from repro.phy.medium import Medium
from repro.util.rng import RngStream


def _medium(positions):
    m = Medium(Channel())
    m.update_positions(positions)
    return m


def _handoff(tagged=0, monitor=1, seed=1):
    return MonitorHandoff(
        tagged,
        monitor,
        config=DetectorConfig(sample_size=10, known_n=5, known_k=5),
        rng=RngStream(seed, "handoff"),
    )


class TestHandoffMechanics:
    def test_keeps_monitor_while_in_range(self):
        h = _handoff()
        positions = {0: (0, 0), 1: (200, 0), 2: (400, 0)}
        medium = _medium(positions)
        h.on_positions_updated(0, positions, medium)
        assert h.monitor_id == 1
        assert h.handoffs == 0

    def test_hands_off_when_out_of_range(self):
        h = _handoff()
        positions = {0: (0, 0), 1: (5000, 0), 2: (200, 0)}
        medium = _medium(positions)
        h.on_positions_updated(0, positions, medium)
        assert h.monitor_id == 2
        assert h.handoffs == 1
        assert len(h.retired_detectors) == 1

    def test_no_candidates_keeps_old_monitor(self):
        h = _handoff()
        positions = {0: (0, 0), 1: (5000, 0), 2: (5000, 5000)}
        medium = _medium(positions)
        h.on_positions_updated(0, positions, medium)
        assert h.monitor_id == 1
        assert h.handoffs == 0

    def test_aggregated_views_concatenate(self):
        h = _handoff()
        positions = {0: (0, 0), 1: (5000, 0), 2: (200, 0)}
        medium = _medium(positions)
        h.on_positions_updated(0, positions, medium)
        assert h.observations == []
        assert h.verdicts == []
        assert h.violations == []
        assert h.observation_count == 0
        assert not h.flagged_malicious

    def test_requires_rng(self):
        with pytest.raises(ValueError):
            MonitorHandoff(0, 1, rng=None)


class TestHandoffEndToEnd:
    def test_mobile_cheater_detected_across_handoffs(self):
        """A mobile network where the initial monitor eventually drifts
        away: the hand-off keeps detection going."""
        from repro.experiments.runner import collect_detection_samples
        from repro.experiments.scenarios import RandomScenario

        scenario = RandomScenario(load=0.6, mobile=True, seed=23)
        detector = collect_detection_samples(
            scenario, pm=70, target_samples=200, max_duration_s=120.0
        )
        assert isinstance(detector, MonitorHandoff)
        assert detector.observation_count >= 100
        assert detector.flagged_malicious
