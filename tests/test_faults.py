"""Tests for repro.faults: specs, schedules, runtime wiring, determinism.

The fault layer's contract has three legs:

1. **pure draws** — every impairment decision is a pure function of
   (spec seed, monitor, sender, start slot): query order, worker count
   and observer backend cannot change outcomes;
2. **honest codec** — corruption/truncation run the real wire codec
   (encode, damage, decode), so what quarantines is exactly what a real
   monitor could not parse;
3. **one switch** — ``set_fault_spec`` / ``REPRO_FAULTS`` / ``--faults``
   all meet in :func:`repro.faults.runtime.active_schedule`, which every
   new observer consults.
"""

from __future__ import annotations

import pytest

from repro.faults import (
    IMPAIRMENT_BURST_LOSS,
    IMPAIRMENT_DECODE_FAILURE,
    IMPAIRMENT_REASONS,
    IMPAIRMENT_RTS_CORRUPT,
    IMPAIRMENT_RTS_TRUNCATED,
    FaultSchedule,
    FaultSpec,
    active_schedule,
    faults_enabled,
    installed_spec,
    parse_fault_spec,
    reset_fault_runtime,
    set_fault_spec,
)
from repro.mac.frames import RtsFrame

FRAME = RtsFrame(sender=4, receiver=9, seq_off=17, attempt=2, digest=b"q" * 16)


# -- spec parsing -------------------------------------------------------------


@pytest.mark.parametrize("text", ["", "off", "0", "none", "  off  "])
def test_disabled_spellings_parse_to_none(text):
    assert parse_fault_spec(text) is None


def test_parse_full_spec():
    spec = parse_fault_spec("decode=0.3,corrupt=0.1,truncate=0.05,burst=0.2:3000,seed=7")
    assert spec == FaultSpec(
        decode=0.3, corrupt=0.1, truncate=0.05,
        burst_fraction=0.2, burst_slots=3000, seed=7,
    )


def test_burst_defaults_to_2000_slots():
    spec = parse_fault_spec("burst=0.25")
    assert spec.burst_fraction == 0.25
    assert spec.burst_slots == 2000


def test_all_zero_spec_is_none():
    assert parse_fault_spec("decode=0.0,corrupt=0") is None


def test_describe_round_trips():
    for text in (
        "decode=0.3,seed=5",
        "corrupt=0.1,truncate=0.05,seed=0",
        "decode=0.2,burst=0.1:500,seed=3",
    ):
        spec = parse_fault_spec(text)
        assert parse_fault_spec(spec.describe()) == spec


@pytest.mark.parametrize(
    "text",
    [
        "decode=1.5",          # probability out of range
        "decode",              # missing value
        "warp=0.1",            # unknown key
        "decode=abc",          # unparsable float
        "burst=0.2:0",         # burst without positive length
    ],
)
def test_bad_specs_raise_value_error(text):
    with pytest.raises(ValueError):
        parse_fault_spec(text)


def test_spec_validation_direct():
    with pytest.raises(ValueError):
        FaultSpec(decode=-0.1)
    with pytest.raises(ValueError):
        FaultSpec(burst_fraction=0.2, burst_slots=0)


# -- schedule purity ----------------------------------------------------------


def test_draws_are_order_independent():
    spec = FaultSpec(decode=0.3, corrupt=0.1, truncate=0.05, seed=11)
    forward = FaultSchedule(spec)
    backward = FaultSchedule(spec)
    queries = [(m, s, slot) for m in (1, 2) for s in (3, 4) for slot in range(0, 4000, 37)]
    got_forward = [forward.link_impairment(*q) for q in queries]
    got_backward = [backward.link_impairment(*q) for q in reversed(queries)]
    assert got_forward == list(reversed(got_backward))


def test_two_schedules_same_spec_agree():
    spec = parse_fault_spec("decode=0.4,burst=0.1:200,seed=23")
    a, b = FaultSchedule(spec), FaultSchedule(spec)
    for slot in range(0, 5000, 13):
        assert a.link_impairment(0, 5, slot) == b.link_impairment(0, 5, slot)


def test_links_draw_independently():
    schedule = FaultSchedule(FaultSpec(decode=0.5, seed=1))
    link_a = [schedule.link_impairment(1, 5, s) for s in range(500)]
    link_b = [schedule.link_impairment(2, 5, s) for s in range(500)]
    assert link_a != link_b  # distinct per-link seeds


def test_decode_rate_approximates_spec():
    schedule = FaultSchedule(FaultSpec(decode=0.3, seed=2))
    hits = sum(
        schedule.link_impairment(0, 1, slot) == IMPAIRMENT_DECODE_FAILURE
        for slot in range(4000)
    )
    assert 0.25 < hits / 4000 < 0.35


def test_burst_windows_are_contiguous_and_sized():
    spec = FaultSpec(burst_fraction=0.2, burst_slots=50, seed=9)
    schedule = FaultSchedule(spec)
    flags = [
        schedule.link_impairment(0, 1, slot) == IMPAIRMENT_BURST_LOSS
        for slot in range(20_000)
    ]
    fraction = sum(flags) / len(flags)
    assert 0.1 < fraction < 0.3
    # Runs of in-burst slots come in blocks of exactly burst_slots
    # (modulo the sweep boundaries).
    runs, current = [], 0
    for flag in flags:
        if flag:
            current += 1
        elif current:
            runs.append(current)
            current = 0
    assert runs and all(r == 50 for r in runs[1:-1] or runs)


def test_clean_spec_never_impairs():
    schedule = FaultSchedule(FaultSpec(seed=5))
    assert not schedule.spec.any_active
    assert all(
        schedule.link_impairment(0, 1, slot) is None for slot in range(1000)
    )


# -- deliver_rts --------------------------------------------------------------


def test_deliver_rts_invariant():
    """(rts is None) iff a reason is returned; reasons are catalogued."""
    spec = parse_fault_spec("decode=0.2,corrupt=0.2,truncate=0.2,burst=0.1:40,seed=3")
    schedule = FaultSchedule(spec)
    reasons = set()
    for slot in range(3000):
        rts, reason = schedule.deliver_rts(0, 4, slot, FRAME)
        assert (rts is None) == (reason is not None)
        if reason is None:
            assert rts == FRAME
        else:
            assert reason in IMPAIRMENT_REASONS
            reasons.add(reason)
    assert IMPAIRMENT_DECODE_FAILURE in reasons
    assert IMPAIRMENT_RTS_CORRUPT in reasons
    assert IMPAIRMENT_RTS_TRUNCATED in reasons
    assert IMPAIRMENT_BURST_LOSS in reasons


def test_deliver_rts_passes_none_frame_through_faults():
    """A physics-undecodable observation (frame None) stays None; the
    schedule may still attribute a reason when the link draws faulty."""
    schedule = FaultSchedule(FaultSpec(decode=1.0, seed=3))
    rts, reason = schedule.deliver_rts(0, 4, 100, None)
    assert rts is None and reason == IMPAIRMENT_DECODE_FAILURE


def test_damage_wire_truncates_strictly():
    from repro.mac.frames import encode_rts

    schedule = FaultSchedule(FaultSpec(truncate=1.0, seed=8))
    wire = encode_rts(FRAME)
    for slot in range(50):
        damaged = schedule.damage_wire(0, 1, slot, wire, IMPAIRMENT_RTS_TRUNCATED)
        assert len(damaged) < len(wire)
        assert damaged == wire[: len(damaged)]


def test_damage_wire_corrupts_in_place():
    from repro.mac.frames import encode_rts

    schedule = FaultSchedule(FaultSpec(corrupt=1.0, seed=8))
    wire = encode_rts(FRAME)
    for slot in range(50):
        damaged = schedule.damage_wire(0, 1, slot, wire, IMPAIRMENT_RTS_CORRUPT)
        assert len(damaged) == len(wire)
        assert damaged != wire


# -- runtime switch -----------------------------------------------------------


def test_set_fault_spec_parses_strings():
    spec = set_fault_spec("decode=0.3,seed=4")
    assert installed_spec() == spec == FaultSpec(decode=0.3, seed=4)
    assert faults_enabled()


def test_set_fault_spec_off_clears():
    set_fault_spec("decode=0.3,seed=4")
    assert set_fault_spec("off") is None
    assert installed_spec() is None
    assert not faults_enabled()


def test_active_schedule_is_memoized():
    set_fault_spec("decode=0.3,seed=4")
    assert active_schedule() is active_schedule()


def test_env_var_activates_faults(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "decode=0.25,seed=6")
    reset_fault_runtime()
    schedule = active_schedule()
    assert schedule is not None
    assert schedule.spec == FaultSpec(decode=0.25, seed=6)


def test_installed_spec_wins_over_env(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "decode=0.25,seed=6")
    set_fault_spec("decode=0.75,seed=1")
    assert active_schedule().spec.decode == 0.75


def test_reset_fault_runtime_registered():
    from repro.util.caches import registered_resets

    assert reset_fault_runtime in registered_resets()


def test_new_observers_pick_up_the_active_schedule():
    from repro.core.observation import ChannelObserver
    from repro.core.observatory import SharedChannelObservatory

    assert ChannelObserver(monitor_id=1, tagged_id=2).faults is None
    set_fault_spec("decode=0.5,seed=2")
    observer = ChannelObserver(monitor_id=1, tagged_id=2)
    assert observer.faults is active_schedule()
    observatory = SharedChannelObservatory()
    assert observatory.faults is active_schedule()
    subscription = observatory.attach(1, 2)
    assert subscription.observer.faults is active_schedule()


# -- end-to-end determinism ---------------------------------------------------


def _run_detector(use_observatory, spec="decode=0.35,seed=13"):
    from repro.experiments.runner import collect_detection_samples
    from repro.experiments.scenarios import GridScenario
    from repro.util.caches import reset_all_caches

    reset_all_caches()
    set_fault_spec(spec)
    try:
        return collect_detection_samples(
            GridScenario(load=0.6, seed=11),
            pm=40,
            target_samples=80,
            max_duration_s=30.0,
            use_observatory=use_observatory,
        )
    finally:
        set_fault_spec(None)


def test_legacy_and_observatory_agree_under_faults():
    """The equivalence contract survives fault injection: both observer
    backends quarantine the same observations for the same reasons and
    reach identical verdicts."""
    legacy = _run_detector(use_observatory=False)
    shared = _run_detector(use_observatory=True)
    legacy_obs = [repr(o) for o in legacy.observer.observed]
    shared_obs = [repr(o) for o in shared.observer.observed]
    assert legacy_obs == shared_obs
    assert legacy.quarantine_counts == shared.quarantine_counts
    assert [repr(v) for v in legacy.verdicts] == [repr(v) for v in shared.verdicts]
    assert [repr(v) for v in legacy.violations] == [
        repr(v) for v in shared.violations
    ]
    # Faults actually fired in this run (the contract is not vacuous).
    assert legacy.quarantine_counts.get(IMPAIRMENT_DECODE_FAILURE, 0) > 0


def test_faulted_runs_are_reproducible():
    first = _run_detector(use_observatory=True)
    second = _run_detector(use_observatory=True)
    assert [repr(o) for o in first.observer.observed] == [
        repr(o) for o in second.observer.observed
    ]
    assert first.quarantine_counts == second.quarantine_counts


def test_fault_sweep_deterministic_across_jobs():
    from repro.experiments.faults_sweep import run_fault_sweep

    kwargs = dict(
        decode_probs=(0.0, 0.3),
        pm=60,
        runs=1,
        target_samples=40,
        sample_size=10,
        max_duration_s=20.0,
    )
    baseline = [repr(p) for p in run_fault_sweep(jobs=1, **kwargs)]
    for jobs in (2, 4):
        assert [repr(p) for p in run_fault_sweep(jobs=jobs, **kwargs)] == baseline


def test_fault_trial_restores_previous_spec():
    from repro.experiments.faults_sweep import fault_trial

    set_fault_spec("decode=0.1,seed=99")
    fault_trial((0.6, 0, 7, "decode=0.5,seed=1", 10, 5.0, 10, 0.05))
    assert installed_spec() == FaultSpec(decode=0.1, seed=99)


# -- CLI wiring ---------------------------------------------------------------


def test_cli_faults_flag_installs_and_clears(capsys):
    from repro.cli import main

    rc = main(
        ["demo", "--seconds", "1.0", "--seed", "3",
         "--faults", "decode=0.4,seed=5"]
    )
    assert rc == 0
    assert installed_spec() is None  # cleared on the way out
    capsys.readouterr()


def test_cli_faults_off_is_accepted(capsys):
    from repro.cli import main

    assert main(["demo", "--seconds", "1.0", "--faults", "off"]) == 0
    capsys.readouterr()
