"""Malformed-input fuzzing of the serve session.

The service contract is total: a :class:`ServeSession` fed arbitrary
bytes never raises past :meth:`handle_line` — every bad line (or
well-formed line that violates stream semantics) is counted under
exactly one reason code from the closed ``REJECT_REASONS`` vocabulary,
and the session keeps accepting valid traffic afterwards.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.detector import DetectorConfig
from repro.serve.capture import synthetic_links, synthetic_stream
from repro.serve.records import (
    REASON_DUPLICATE_TX,
    REASON_JSON,
    REASON_KIND,
    REASON_NOT_OBJECT,
    REASON_ORPHAN_END,
    REASON_OUT_OF_ORDER,
    REASON_SCHEMA,
    REASON_UNKNOWN_KEY,
    REJECT_REASONS,
    RecordRejected,
    parse_line,
)
from repro.serve.server import ServeConfig, ServeSession

CONFIG = DetectorConfig(sample_size=25, known_n=5, known_k=5, warmup_slots=0)


def _session() -> ServeSession:
    return ServeSession(ServeConfig(detector=CONFIG))


def _rejected(session: ServeSession, reason: str) -> int:
    counters = session.stream_metrics.snapshot()["counters"]
    return counters.get(f"serve.rejected.{reason}", 0)


def _one_exchange(tx: int, slot: int, seq_off: int) -> list:
    start = json.dumps(
        {
            "kind": "start",
            "slot": slot,
            "tx": tx,
            "sender": 77,
            "sensed": [7],
            "decoded": [7],
        }
    )
    end = json.dumps(
        {
            "kind": "end",
            "slot": slot + 20,
            "tx": tx,
            "sender": 77,
            "sensed": [7],
            "observed": {
                "start_slot": slot,
                "end_slot": slot + 20,
                "rts": {
                    "sender": 77,
                    "receiver": 7,
                    "seq_off": seq_off,
                    "attempt": 1,
                    "digest": ("%032x" % seq_off),
                },
                "success": True,
                "receiver": 7,
                "impairment": None,
            },
        }
    )
    return [start, end]


def _valid_exchange(start_slot: int = 10**6) -> list:
    """Two consecutive exchanges on one fresh link, late on the slot
    axis (the first transmission only anchors; the second — at an exact
    ``difs + dictated`` gap — yields the first back-off observation)."""
    return list(
        synthetic_stream(
            1,
            2,
            monitor_base=7,
            tagged_base=77,
            start_slot=start_slot,
            emit_shutdown=False,
        )
    )


#: One malformed line per reason code that parse_line itself assigns.
PARSE_REJECTS = {
    "garbage": ("}{ not json", REASON_JSON),
    "truncated": ('{"kind": "start", "slot"', REASON_JSON),
    "array": ("[1,2,3]", REASON_NOT_OBJECT),
    "scalar": ('"start"', REASON_NOT_OBJECT),
    "unknown_kind": ('{"kind":"frob","slot":1}', REASON_KIND),
    "missing_kind": ('{"slot":1}', REASON_KIND),
    "top_unknown_key": ('{"kind":"shutdown","slot":1,"x":2}', REASON_UNKNOWN_KEY),
    "observed_unknown_key": (
        json.dumps(
            {
                "kind": "end",
                "slot": 5,
                "tx": 1,
                "sender": 2,
                "sensed": [3],
                "observed": {
                    "start_slot": 1,
                    "end_slot": 2,
                    "rts": None,
                    "success": True,
                    "receiver": 3,
                    "impairment": None,
                    "smuggled": 1,
                },
            }
        ),
        REASON_UNKNOWN_KEY,
    ),
    "rts_unknown_key": (
        json.dumps(
            {
                "kind": "end",
                "slot": 5,
                "tx": 1,
                "sender": 2,
                "sensed": [3],
                "observed": {
                    "start_slot": 1,
                    "end_slot": 2,
                    "rts": {
                        "sender": 2,
                        "receiver": 3,
                        "seq_off": 0,
                        "attempt": 1,
                        "digest": "00" * 16,
                        "smuggled": 1,
                    },
                    "success": True,
                    "receiver": 3,
                    "impairment": None,
                },
            }
        ),
        REASON_UNKNOWN_KEY,
    ),
    "float_slot": ('{"kind":"shutdown","slot":1.5}', REASON_SCHEMA),
    "bool_slot": ('{"kind":"shutdown","slot":true}', REASON_SCHEMA),
    "string_sensed": (
        '{"kind":"start","slot":1,"tx":0,"sender":2,"sensed":"x","decoded":[]}',
        REASON_SCHEMA,
    ),
    "bad_digest": (
        json.dumps(
            {
                "kind": "end",
                "slot": 5,
                "tx": 1,
                "sender": 2,
                "sensed": [3],
                "observed": {
                    "start_slot": 1,
                    "end_slot": 2,
                    "rts": {
                        "sender": 2,
                        "receiver": 3,
                        "seq_off": 0,
                        "attempt": 1,
                        "digest": "zz",
                    },
                    "success": True,
                    "receiver": 3,
                    "impairment": None,
                },
            }
        ),
        REASON_SCHEMA,
    ),
    "bad_positions": ('{"kind":"positions","slot":1,"positions":[1]}', REASON_SCHEMA),
}


class TestParseRejects:
    @pytest.mark.parametrize("case", sorted(PARSE_REJECTS))
    def test_reason_code(self, case):
        line, reason = PARSE_REJECTS[case]
        with pytest.raises(RecordRejected) as exc:
            parse_line(line)
        assert exc.value.reason == reason
        assert reason in REJECT_REASONS

    @pytest.mark.parametrize("case", sorted(PARSE_REJECTS))
    def test_session_counts_and_survives(self, case):
        line, reason = PARSE_REJECTS[case]
        session = _session()
        assert session.handle_line(line) is None
        assert _rejected(session, reason) == 1
        # ... and valid traffic still lands afterwards.
        for ok in _valid_exchange():
            session.handle_line(ok)
        result = session.finish()
        assert result.summary()["rejected"] == {reason: 1}
        assert sum(len(link.observations) for link in result.links) == 1

    def test_unknown_reason_code_is_a_bug(self):
        with pytest.raises(ValueError):
            RecordRejected("made_up_reason", "detail")


class TestStreamSemanticRejects:
    def test_out_of_order(self):
        session = _session()
        for line in _one_exchange(1, 1000, 0):
            session.handle_line(line)
        stale = json.dumps({"kind": "shutdown", "slot": 3})
        session.handle_line(stale)
        assert _rejected(session, REASON_OUT_OF_ORDER) == 1
        assert not session.shutdown  # the stale shutdown did not stick

    def test_orphan_end(self):
        session = _session()
        _start, end = _one_exchange(5, 1000, 0)
        session.handle_line(end)
        assert _rejected(session, REASON_ORPHAN_END) == 1

    def test_duplicate_tx(self):
        session = _session()
        lines = _valid_exchange()
        session.handle_line(lines[0])
        session.handle_line(lines[0])  # same tx started twice
        assert _rejected(session, REASON_DUPLICATE_TX) == 1
        # the original in-flight transmission still completes, and the
        # next exchange anchors on it to produce an observation
        for line in lines[1:]:
            session.handle_line(line)
        result = session.finish()
        assert sum(len(link.observations) for link in result.links) == 1

    def test_rejects_never_advance_the_event_clock(self):
        session = _session()
        for line, _reason in PARSE_REJECTS.values():
            session.handle_line(line)
        assert session.clock.index == 0


class TestFuzzTotality:
    @settings(max_examples=200, deadline=None)
    @given(line=st.text(max_size=200))
    def test_arbitrary_text_never_raises(self, line):
        session = _session()
        session.handle_line(line)
        counters = session.stream_metrics.snapshot()["counters"]
        for name in counters:
            if name.startswith("serve.rejected."):
                assert name.split("serve.rejected.", 1)[1] in REJECT_REASONS

    @settings(max_examples=50, deadline=None)
    @given(
        payload=st.dictionaries(
            st.text(max_size=8),
            st.one_of(st.integers(), st.text(max_size=8), st.booleans()),
            max_size=5,
        )
    )
    def test_arbitrary_objects_never_raise(self, payload):
        session = _session()
        session.handle_line(json.dumps(payload))

    def test_interleaved_garbage_leaves_verdicts_intact(self):
        """A stream with garbage spliced between every valid line must
        produce the same detection output as the clean stream."""
        lines = list(synthetic_stream(2, 40))
        links = synthetic_links(2)
        clean = ServeSession(ServeConfig(detector=CONFIG), links=links)
        clean_result = clean.run(lines)

        dirty_lines = []
        for line in lines:
            dirty_lines.append("not json at all")
            dirty_lines.append(line)
        dirty = ServeSession(ServeConfig(detector=CONFIG), links=links)
        dirty_result = dirty.run(dirty_lines)

        assert dirty_result.fingerprint() == clean_result.fingerprint()
        assert dirty_result.summary()["rejected"] == {REASON_JSON: len(lines)}
