"""Unit tests for the deterministic verifiers."""

import pytest

from repro.core.deterministic import (
    AttemptNumberVerifier,
    SequenceOffsetVerifier,
    UnambiguousCountdownVerifier,
)
from repro.mac.digest import data_digest
from repro.mac.frames import RtsFrame, SEQ_OFF_MODULUS


def _rts(seq_off, attempt=1, payload=b"p1"):
    return RtsFrame(
        sender=1,
        receiver=2,
        seq_off=seq_off,
        attempt=attempt,
        digest=data_digest(payload),
    )


class TestSequenceOffsetVerifier:
    def test_normal_progression_clean(self):
        v = SequenceOffsetVerifier()
        for i in range(10):
            assert v.observe(_rts(i), slot=i * 100) is None

    def test_repeat_flagged(self):
        v = SequenceOffsetVerifier()
        v.observe(_rts(5), 0)
        violation = v.observe(_rts(5), 100)
        assert violation is not None
        assert violation.kind == "seq_offset"

    def test_regression_flagged(self):
        v = SequenceOffsetVerifier()
        v.observe(_rts(5), 0)
        assert v.observe(_rts(3), 100) is not None

    def test_small_gap_allowed(self):
        v = SequenceOffsetVerifier(max_gap=10)
        v.observe(_rts(5), 0)
        assert v.observe(_rts(9), 100) is None  # monitor missed frames

    def test_huge_jump_flagged(self):
        v = SequenceOffsetVerifier(max_gap=64)
        v.observe(_rts(5), 0)
        assert v.observe(_rts(500), 100) is not None

    def test_wraparound_allowed(self):
        v = SequenceOffsetVerifier()
        v.observe(_rts(SEQ_OFF_MODULUS - 1), 0)
        assert v.observe(_rts(SEQ_OFF_MODULUS), 100) is None  # field wraps to 0

    def test_reset(self):
        v = SequenceOffsetVerifier()
        v.observe(_rts(5), 0)
        v.reset()
        assert v.observe(_rts(5), 100) is None  # fresh history

    def test_invalid_max_gap_rejected(self):
        with pytest.raises(ValueError):
            SequenceOffsetVerifier(max_gap=0)
        with pytest.raises(ValueError):
            SequenceOffsetVerifier(max_gap=SEQ_OFF_MODULUS)


class TestAttemptNumberVerifier:
    def test_fresh_packets_at_attempt_one_clean(self):
        v = AttemptNumberVerifier()
        assert v.observe(_rts(0, 1, b"a"), 0) is None
        assert v.observe(_rts(1, 1, b"b"), 100) is None

    def test_legitimate_retransmission_clean(self):
        v = AttemptNumberVerifier()
        v.observe(_rts(0, 1, b"a"), 0)
        assert v.observe(_rts(1, 2, b"a"), 100) is None
        assert v.observe(_rts(2, 3, b"a"), 200) is None

    def test_same_digest_same_attempt_flagged(self):
        """The paper's attack: retransmit without incrementing Attempt#
        (resetting CW to CWmin).  The repeated MD exposes it."""
        v = AttemptNumberVerifier()
        v.observe(_rts(0, 1, b"a"), 0)
        violation = v.observe(_rts(1, 1, b"a"), 100)
        assert violation is not None
        assert violation.kind == "attempt_number"

    def test_same_digest_decreasing_attempt_flagged(self):
        v = AttemptNumberVerifier()
        v.observe(_rts(0, 3, b"a"), 0)
        assert v.observe(_rts(1, 2, b"a"), 100) is not None

    def test_fresh_digest_high_attempt_flagged_when_gap_free(self):
        v = AttemptNumberVerifier()
        v.observe(_rts(0, 1, b"a"), 0)
        assert v.observe(_rts(1, 2, b"b"), 100, gap_free=True) is not None

    def test_fresh_digest_high_attempt_tolerated_after_gap(self):
        """A missed attempt-1 frame must not produce a false alarm."""
        v = AttemptNumberVerifier()
        v.observe(_rts(0, 1, b"a"), 0)
        assert v.observe(_rts(2, 2, b"b"), 100, gap_free=False) is None

    def test_first_frame_never_flagged(self):
        v = AttemptNumberVerifier()
        assert v.observe(_rts(0, 3, b"a"), 0) is None

    def test_same_digest_flagged_even_with_gap(self):
        v = AttemptNumberVerifier()
        v.observe(_rts(0, 2, b"a"), 0)
        assert v.observe(_rts(5, 2, b"a"), 100, gap_free=False) is not None

    def test_reset(self):
        v = AttemptNumberVerifier()
        v.observe(_rts(0, 1, b"a"), 0)
        v.reset()
        assert v.observe(_rts(1, 1, b"a"), 100) is None


class TestUnambiguousCountdownVerifier:
    def test_sufficient_budget_clean(self):
        v = UnambiguousCountdownVerifier(tolerance_slots=4)
        assert v.observe(dictated=20, observed_idle_slots=20, slot=0) is None
        assert v.observe(dictated=20, observed_idle_slots=17, slot=0) is None

    def test_short_budget_flagged(self):
        v = UnambiguousCountdownVerifier(tolerance_slots=4)
        violation = v.observe(dictated=20, observed_idle_slots=10, slot=50)
        assert violation is not None
        assert violation.kind == "blatant_countdown"
        assert violation.slot == 50

    def test_boundary(self):
        v = UnambiguousCountdownVerifier(tolerance_slots=4)
        assert v.observe(20, 16, 0) is None       # exactly at tolerance
        assert v.observe(20, 15, 0) is not None   # one below

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            UnambiguousCountdownVerifier(tolerance_slots=-1)
