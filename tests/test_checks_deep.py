"""Tests for the whole-program deep analysis (``repro.checks --deep``).

Covers:

* the fixture corpus under ``tests/checks_corpus/`` — every known-bad
  file triggers exactly its declared rule codes and every known-good
  file stays clean (the false-positive guard);
* the real ``src/`` tree is clean modulo the checked-in baseline;
* SARIF generation and validation;
* ``--explain`` coverage for every rule code;
* baseline load/apply semantics;
* CLI exit codes.
"""

import json
from pathlib import Path

import pytest

from repro.checks import ALL_RULES, DEEP_RULES
from repro.checks.__main__ import main
from repro.checks.baseline import (
    BaselineError,
    apply_baseline,
    baseline_key,
    load_baseline,
    render_baseline,
)
from repro.checks.deep import run_deep_on_index
from repro.checks.explain import EXPLANATIONS, explain
from repro.checks.index import ProjectIndex
from repro.checks.lint import Finding
from repro.checks.sarif import to_sarif, validate_sarif

ROOT = Path(__file__).resolve().parents[1]
CORPUS = ROOT / "tests" / "checks_corpus"


def _parse_directives(text, fixture):
    """Extract the ``# path:`` and ``# expect:`` header directives."""
    path = None
    expect = None
    for line in text.splitlines()[:5]:
        if line.startswith("# path:"):
            path = line.split(":", 1)[1].strip()
        elif line.startswith("# expect:"):
            expect = line.split(":", 1)[1].strip()
    if path is None or expect is None:
        pytest.fail(f"{fixture.name}: missing '# path:' or '# expect:' directive")
    codes = set() if expect == "none" else {c.strip() for c in expect.split(",")}
    return path, codes


def _corpus_fixtures():
    fixtures = sorted(p for p in CORPUS.glob("*.py"))
    assert fixtures, "corpus directory is empty"
    return fixtures


@pytest.mark.parametrize("fixture", _corpus_fixtures(), ids=lambda p: p.stem)
def test_corpus_fixture(fixture):
    text = fixture.read_text()
    synthetic_path, expected = _parse_directives(text, fixture)
    index = ProjectIndex.build_from_sources([(synthetic_path, text)])
    findings = run_deep_on_index(index)
    found = {f.code for f in findings}
    rendered = "\n".join(f.render() for f in findings) or "<no findings>"
    assert found == expected, (
        f"{fixture.name}: expected codes {sorted(expected)}, "
        f"got {sorted(found)}:\n{rendered}"
    )


def test_corpus_covers_every_deep_rule():
    """Each deep rule code appears in at least one known-bad fixture."""
    covered = set()
    for fixture in _corpus_fixtures():
        _, codes = _parse_directives(fixture.read_text(), fixture)
        covered |= codes
    missing = {rule.code for rule in DEEP_RULES} - covered
    assert not missing, f"deep rules with no bad fixture: {sorted(missing)}"


def test_src_clean_modulo_baseline(monkeypatch, capsys):
    """The deep pass over the real tree yields only baselined findings."""
    monkeypatch.chdir(ROOT)
    rc = main(["--deep", "src"])
    out = capsys.readouterr()
    assert rc == 0, f"deep lint found new issues:\n{out.out}\n{out.err}"


# -- SARIF -----------------------------------------------------------------


def _sample_findings():
    return [
        Finding("src/repro/mac/backoff.py", 10, 4, "RPR501", "mixed units"),
        Finding("src/repro/core/detector.py", 3, 0, "RPR602", "unsorted set"),
    ]


def test_sarif_roundtrip_is_valid(tmp_path):
    doc = to_sarif(_sample_findings(), ALL_RULES)
    assert validate_sarif(doc) == []
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro.checks"
    rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
    assert "RPR501" in rule_ids and "RPR602" in rule_ids
    results = run["results"]
    assert len(results) == 2
    loc = results[0]["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"] == "src/repro/mac/backoff.py"
    assert loc["region"]["startLine"] == 10
    # JSON-serializable end to end.
    (tmp_path / "out.sarif").write_text(json.dumps(doc))


def test_validate_sarif_rejects_broken_docs():
    doc = to_sarif(_sample_findings(), ALL_RULES)
    no_version = json.loads(json.dumps(doc))
    del no_version["version"]
    assert validate_sarif(no_version)

    unknown_rule = json.loads(json.dumps(doc))
    unknown_rule["runs"][0]["results"][0]["ruleId"] = "RPR999"
    assert validate_sarif(unknown_rule)

    bad_line = json.loads(json.dumps(doc))
    bad_line["runs"][0]["results"][0]["locations"][0]["physicalLocation"][
        "region"
    ]["startLine"] = 0
    assert validate_sarif(bad_line)


def test_cli_writes_valid_sarif(tmp_path, monkeypatch):
    monkeypatch.chdir(ROOT)
    out = tmp_path / "checks.sarif"
    rc = main(["--deep", "src", "--sarif", str(out)])
    assert rc == 0
    doc = json.loads(out.read_text())
    assert validate_sarif(doc) == []


# -- explain ---------------------------------------------------------------


def test_every_rule_has_an_explanation():
    rule_codes = {rule.code for rule in ALL_RULES}
    assert set(EXPLANATIONS) == rule_codes


def test_explain_lookup():
    assert "RPR501" in explain("rpr501")
    assert explain("RPR999") is None


# -- baseline --------------------------------------------------------------


def test_baseline_key_is_line_independent():
    a = Finding("src/x.py", 10, 0, "RPR501", "mixed units")
    b = Finding("src/x.py", 99, 7, "RPR501", "mixed units")
    assert baseline_key(a) == baseline_key(b)


def test_load_baseline_missing_file_is_empty(tmp_path):
    assert load_baseline(str(tmp_path / "absent.json")) == {}


def test_load_baseline_rejects_empty_justification(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(
        json.dumps(
            {
                "version": 1,
                "entries": [{"key": "RPR501:src/x.py:m", "justification": ""}],
            }
        )
    )
    with pytest.raises(BaselineError):
        load_baseline(str(path))


def test_apply_baseline_splits_and_reports_stale():
    findings = _sample_findings()
    baseline = {
        baseline_key(findings[0]): "known and accepted",
        "RPR701:src/gone.py:stale entry": "module was deleted",
    }
    new, suppressed, stale = apply_baseline(findings, baseline)
    assert [f.code for f in new] == ["RPR602"]
    assert [f.code for f in suppressed] == ["RPR501"]
    assert stale == ["RPR701:src/gone.py:stale entry"]


def test_render_baseline_needs_justification(tmp_path):
    body = render_baseline(_sample_findings())
    doc = json.loads(body)
    assert doc["version"] == 1
    assert len(doc["entries"]) == 2
    # Rendered entries carry TODO justifications and must be filled in
    # before the file loads cleanly.
    path = tmp_path / "baseline.json"
    path.write_text(body)
    with pytest.raises(BaselineError):
        load_baseline(str(path))


def test_checked_in_baseline_loads_and_is_justified():
    # The profiler's RPR703 suppressions were retired by the
    # Simulation.instrument_phases seam; the tree is clean with no
    # baseline entries.  Any future entry must carry a justification.
    baseline = load_baseline(str(ROOT / "checks_baseline.json"))
    assert baseline == {}, "src should need no suppressions"
    for key, justification in baseline.items():
        assert justification.strip()
        assert not justification.startswith("TODO")


# -- CLI exit codes --------------------------------------------------------


def test_cli_explain_known_code(capsys):
    assert main(["--explain", "RPR501"]) == 0
    assert "RPR501" in capsys.readouterr().out


def test_cli_explain_unknown_code(capsys):
    assert main(["--explain", "RPR999"]) == 2


def test_cli_list_rules_tags_deep(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "RPR501" in out and "[--deep]" in out


def test_cli_missing_path_fails():
    assert main(["definitely/not/a/path"]) == 2


def test_cli_unknown_select_fails():
    assert main(["--select", "RPR999", "src"]) == 2
