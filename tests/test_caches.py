"""The cache-reset registry and the shared-state footgun it fixes.

Module-level caches (region model memo, REPRO_SCALE parse, fault
runtime, packet uid counter) used to leak between tests.  Now every
such cache registers a reset hook with :mod:`repro.util.caches`, the
root conftest rewinds them all before each test, and lint rule RPR401
keeps the registry exhaustive.
"""

from __future__ import annotations

from repro.util.caches import (
    register_cache_reset,
    registered_resets,
    reset_all_caches,
)


def test_register_returns_the_hook_and_deduplicates():
    calls = []

    def hook():
        calls.append(1)

    before = len(registered_resets())
    try:
        assert register_cache_reset(hook) is hook
        assert register_cache_reset(hook) is hook  # idempotent
        assert len(registered_resets()) == before + 1
        reset_all_caches()
        assert calls == [1]
    finally:
        # Keep the process-wide registry clean for other tests.
        import repro.util.caches as caches

        caches._RESET_HOOKS.remove(hook)


def test_known_caches_are_registered():
    # Import the defining modules so their decorators have run.
    from repro.core.detector import reset_region_cache
    from repro.experiments.runner import reset_fidelity_cache
    from repro.faults.runtime import reset_fault_runtime
    from repro.traffic.queue import reset_packet_ids

    registered = registered_resets()
    for hook in (
        reset_region_cache,
        reset_fidelity_cache,
        reset_fault_runtime,
        reset_packet_ids,
    ):
        assert hook in registered


def test_reset_rewinds_the_fidelity_cache(monkeypatch):
    from repro.experiments.runner import fidelity_scale

    monkeypatch.setenv("REPRO_SCALE", "2.5")
    assert fidelity_scale() == 2.5
    monkeypatch.setenv("REPRO_SCALE", "3.5")
    reset_all_caches()
    assert fidelity_scale() == 3.5


def test_reset_rewinds_the_fault_runtime():
    from repro.faults.runtime import installed_spec, set_fault_spec

    set_fault_spec("decode=0.5,seed=1")
    reset_all_caches()
    assert installed_spec() is None


def test_reset_rewinds_packet_uids():
    from repro.traffic.queue import Packet

    first = Packet(source=1, destination=2).uid
    Packet(source=1, destination=2)
    reset_all_caches()
    assert Packet(source=1, destination=2).uid == first


def test_conftest_fixture_isolates_packet_uids():
    """The autouse fixture ran before this test, so the process-global
    uid counter starts from a rewound position regardless of how many
    packets earlier tests created."""
    from repro.traffic.queue import Packet

    assert Packet(source=0, destination=1).uid == 0
