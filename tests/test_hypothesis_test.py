"""Unit tests for the back-off hypothesis test wrapper."""

import pytest

from repro.core.hypothesis import BackoffHypothesisTest, TestDecision
from repro.util.rng import RngStream


class TestWindowing:
    def test_pending_until_window_full(self):
        test = BackoffHypothesisTest(sample_size=5)
        for i in range(4):
            test.add_sample(10, 10)
            decision, result = test.evaluate()
            assert decision is TestDecision.NOT_ENOUGH_SAMPLES
            assert result is None
        test.add_sample(10, 10)
        decision, _result = test.evaluate()
        assert decision is not TestDecision.NOT_ENOUGH_SAMPLES

    def test_window_slides(self):
        test = BackoffHypothesisTest(sample_size=3)
        for v in (1, 2, 3, 4):
            test.add_sample(v, v)
        assert test.n_samples == 3
        assert list(test._x) == [2.0, 3.0, 4.0]

    def test_reset(self):
        test = BackoffHypothesisTest(sample_size=2)
        test.add_sample(1, 1)
        test.reset()
        assert test.n_samples == 0


class TestDecisions:
    def test_honest_samples_retain_h0(self):
        rng = RngStream(1, "honest")
        test = BackoffHypothesisTest(sample_size=50, alpha=0.01)
        for _ in range(50):
            v = rng.integers(0, 32)
            test.add_sample(v, v + rng.normal(0, 1))
        decision, result = test.evaluate()
        assert decision is TestDecision.RETAIN_H0
        assert result.p_value >= 0.01

    def test_cheating_samples_reject_h0(self):
        rng = RngStream(2, "cheat")
        test = BackoffHypothesisTest(sample_size=50, alpha=0.01)
        for _ in range(50):
            v = rng.integers(0, 32)
            test.add_sample(v, 0.3 * v)
        decision, result = test.evaluate()
        assert decision is TestDecision.REJECT_H0
        assert result.p_value < 0.01

    def test_one_sided_ignores_slow_senders(self):
        """A node backing off *longer* than dictated is not malicious
        under the default alternative."""
        rng = RngStream(3, "slow")
        test = BackoffHypothesisTest(sample_size=50, alpha=0.01)
        for _ in range(50):
            v = rng.integers(0, 32)
            test.add_sample(v, 3.0 * v + 5)
        decision, _result = test.evaluate()
        assert decision is TestDecision.RETAIN_H0

    def test_two_sided_catches_slow_senders(self):
        rng = RngStream(3, "slow")
        test = BackoffHypothesisTest(
            sample_size=50, alpha=0.01, alternative="two-sided"
        )
        for _ in range(50):
            v = rng.integers(0, 32)
            test.add_sample(v, 3.0 * v + 5)
        decision, _result = test.evaluate()
        assert decision is TestDecision.REJECT_H0


class TestValidation:
    def test_paper_sample_sizes_accepted(self):
        for size in (10, 25, 50, 100):
            assert BackoffHypothesisTest(sample_size=size).sample_size == size

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            BackoffHypothesisTest(alpha=1.5)

    def test_invalid_sample_size_rejected(self):
        with pytest.raises(ValueError):
            BackoffHypothesisTest(sample_size=0)
