"""Unit tests for the misbehavior (back-off policy) strategies."""

import pytest

from repro.mac.misbehavior import (
    AlienDistributionBackoff,
    FixedBackoff,
    HonestBackoff,
    NoExponentialBackoff,
    PercentageMisbehavior,
)
from repro.mac.prng import VerifiableBackoffPrng
from repro.util.rng import RngStream


@pytest.fixture
def prng():
    return VerifiableBackoffPrng(11)


class TestHonest:
    def test_matches_dictated(self, prng):
        policy = HonestBackoff()
        for offset in range(50):
            assert policy.actual_backoff(prng, offset, 1) == (
                prng.dictated_backoff(offset, 1)
            )

    def test_is_honest_flag(self):
        assert HonestBackoff().is_honest


class TestPercentageMisbehavior:
    def test_pm_zero_is_honest(self, prng):
        policy = PercentageMisbehavior(0)
        assert policy.is_honest
        for offset in range(20):
            assert policy.actual_backoff(prng, offset, 1) == (
                prng.dictated_backoff(offset, 1)
            )

    def test_pm_hundred_is_zero_backoff(self, prng):
        policy = PercentageMisbehavior(100)
        assert all(policy.actual_backoff(prng, o, 1) == 0 for o in range(20))

    def test_pm_fifty_halves(self, prng):
        policy = PercentageMisbehavior(50)
        for offset in range(50):
            dictated = prng.dictated_backoff(offset, 1)
            assert policy.actual_backoff(prng, offset, 1) == round(dictated / 2)

    def test_not_honest_flag(self):
        assert not PercentageMisbehavior(10).is_honest

    def test_pm_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            PercentageMisbehavior(101)
        with pytest.raises(ValueError):
            PercentageMisbehavior(-1)

    def test_describe_mentions_pm(self):
        assert "65" in PercentageMisbehavior(65).describe()


class TestFixedBackoff:
    def test_constant(self, prng):
        policy = FixedBackoff(3)
        assert {policy.actual_backoff(prng, o, a) for o in range(30) for a in (1, 2)} == {3}

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            FixedBackoff(-1)


class TestNoExponentialBackoff:
    def test_first_attempt_honest(self, prng):
        policy = NoExponentialBackoff()
        for offset in range(30):
            assert policy.actual_backoff(prng, offset, 1) == (
                prng.dictated_backoff(offset, 1)
            )

    def test_retries_stay_in_cw_min(self, prng):
        policy = NoExponentialBackoff()
        for offset in range(100):
            assert policy.actual_backoff(prng, offset, 5) <= 31


class TestAlienDistribution:
    def test_bounded_by_cw(self, prng):
        policy = AlienDistributionBackoff(RngStream(1, "alien"), cw=7)
        values = [policy.actual_backoff(prng, o, 1) for o in range(200)]
        assert all(0 <= v <= 7 for v in values)

    def test_ignores_prs(self, prng):
        policy = AlienDistributionBackoff(RngStream(1, "alien"), cw=7)
        dictated = prng.dictated_sequence(0, 100)
        actual = [policy.actual_backoff(prng, o, 1) for o in range(100)]
        assert dictated != actual

    def test_requires_rng(self):
        with pytest.raises(ValueError):
            AlienDistributionBackoff(None)
