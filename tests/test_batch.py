"""Equivalence tests for the batched statistical core (repro.core.batch).

The contract under test is *bit-identity*: every value the batched
backend produces — rank-sum statistics and p-values, busy-slot counts,
ARMA and occupancy estimator states — must equal the scalar reference
exactly (``==`` on floats, not approx), because the golden-fingerprint
suite hashes reprs of everything downstream.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import stats as scipy_stats

from repro.core.arma import ArmaTrafficEstimator
from repro.core.batch import IntervalLedger, LazyArmaFeed, rank_sum_many
from repro.core.observation import ChannelViewBase
from repro.core.ranksum import ALTERNATIVES, rank_sum_test

# Samples that provoke every rank-sum regime: coarse integers force
# heavy ties (normal path), continuous floats stay tie-free (exact path
# for small windows), and tiny windows hit the degenerate-variance and
# all-identical corners.
tied_values = st.integers(min_value=0, max_value=6).map(float)
continuous_values = st.floats(
    min_value=-32.0, max_value=32.0, allow_nan=False, allow_infinity=False
)
sample_values = st.one_of(tied_values, continuous_values)
sample = st.lists(sample_values, min_size=1, max_size=30)


class TestRankSumManyEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(
        windows=st.lists(st.tuples(sample, sample), min_size=1, max_size=8),
        alternative=st.sampled_from(ALTERNATIVES),
    )
    def test_bit_identical_to_scalar(self, windows, alternative):
        xs = [w[0] for w in windows]
        ys = [w[1] for w in windows]
        batched = rank_sum_many(xs, ys, alternative)
        for x, y, ours in zip(xs, ys, batched):
            scalar = rank_sum_test(x, y, alternative)
            assert ours == scalar  # dataclass equality: every field, exact

    @settings(max_examples=30, deadline=None)
    @given(x=sample, y=sample, alternative=st.sampled_from(ALTERNATIVES))
    def test_fields_are_plain_python_types(self, x, y, alternative):
        # np.float64 leaking into RankSumResult would poison downstream
        # verdict reprs (numpy 2.x reprs as "np.float64(...)"), which the
        # fingerprint suites hash.
        result = rank_sum_many([x], [y], alternative)[0]
        assert type(result.statistic) is float
        assert type(result.u_statistic) is float
        assert type(result.p_value) is float
        assert type(result.n_x) is int and type(result.n_y) is int

    def test_all_identical_samples(self):
        for alternative in ALTERNATIVES:
            batched = rank_sum_many([[3.0] * 8], [[3.0] * 5], alternative)[0]
            assert batched == rank_sum_test([3.0] * 8, [3.0] * 5, alternative)
            assert batched.p_value == 1.0
            assert batched.method == "normal"

    def test_mixed_methods_in_one_batch(self):
        xs = [[1.0, 2.5, 4.0], [1.0, 1.0, 2.0], list(range(30))]
        ys = [[0.5, 3.0], [1.0, 3.0], [v + 0.25 for v in range(30)]]
        results = rank_sum_many(xs, ys, "less")
        assert [r.method for r in results] == ["exact", "normal", "normal"]
        for x, y, ours in zip(xs, ys, results):
            assert ours == rank_sum_test(x, y, "less")

    @pytest.mark.parametrize("alternative", ALTERNATIVES)
    def test_cross_checked_against_scipy(self, alternative):
        rng = np.random.default_rng(13)
        xs, ys = [], []
        for _ in range(12):
            xs.append(rng.normal(0, 1, size=int(rng.integers(8, 40))).tolist())
            ys.append(rng.normal(0.3, 1, size=int(rng.integers(8, 40))).tolist())
        for x, y, ours in zip(xs, ys, rank_sum_many(xs, ys, alternative)):
            method = "exact" if ours.method == "exact" else "asymptotic"
            theirs = scipy_stats.mannwhitneyu(
                y, x, alternative=alternative, method=method
            )
            rel = 1e-9 if method == "exact" else 1e-3
            assert ours.p_value == pytest.approx(theirs.pvalue, rel=rel, abs=1e-6)
            assert ours.u_statistic == pytest.approx(theirs.statistic)

    def test_empty_batch_and_validation(self):
        assert rank_sum_many([], [], "less") == []
        with pytest.raises(ValueError):
            rank_sum_many([[1.0]], [[1.0]], "sideways")
        with pytest.raises(ValueError):
            rank_sum_many([[1.0], []], [[1.0], [2.0]], "less")
        with pytest.raises(ValueError):
            rank_sum_many([[1.0]], [[1.0], [2.0]], "less")


intervals = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=400),
        st.integers(min_value=1, max_value=30),
    ).map(lambda p: (p[0], p[0] + p[1])),
    min_size=0,
    max_size=40,
)
windows = st.lists(
    st.tuples(
        st.integers(min_value=-10, max_value=450),
        st.integers(min_value=-5, max_value=60),
    ).map(lambda p: (p[0], p[0] + p[1])),
    min_size=1,
    max_size=10,
)


class TestIntervalLedgerEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(spans=intervals, queries=windows, flush_every=st.integers(1, 7))
    def test_matches_scalar_interval_algebra(self, spans, queries, flush_every):
        ledger = IntervalLedger()
        reference = ChannelViewBase()
        for i, (lo, hi) in enumerate(spans):
            ledger.add(lo, hi)
            reference._add_busy_interval(lo, hi)
            if i % flush_every == 0:
                # Interleave queries with inserts so the incremental
                # tail-merge (not just one big final flush) is exercised.
                q_lo, q_hi = queries[i % len(queries)]
                assert ledger.overlap(q_lo, q_hi) == reference.busy_slots_in(
                    q_lo, q_hi
                )
        assert len(ledger) == len(reference._busy_starts)
        for q_lo, q_hi in queries:
            assert ledger.overlap(q_lo, q_hi) == reference.busy_slots_in(
                q_lo, q_hi
            )
            assert ledger.intervals_in(q_lo, q_hi) == (
                reference.busy_intervals_in(q_lo, q_hi)
            )
        lows = np.asarray([q[0] for q in queries], dtype=np.int64)
        highs = np.asarray([q[1] for q in queries], dtype=np.int64)
        expected = [reference.busy_slots_in(q[0], q[1]) for q in queries]
        assert ledger.overlap_many(lows, highs).tolist() == expected

    def test_touching_intervals_coalesce(self):
        ledger = IntervalLedger()
        ledger.add(0, 5)
        ledger.add(5, 9)    # touching: one canonical interval, like scalar
        ledger.add(20, 25)
        assert len(ledger) == 2
        assert ledger.intervals_in(0, 100) == [(0, 9), (20, 25)]
        assert ledger.overlap(3, 22) == 8

    def test_empty_inserts_dropped(self):
        ledger = IntervalLedger()
        ledger.add(7, 7)
        ledger.add(9, 4)
        assert len(ledger) == 0
        assert ledger.overlap(0, 100) == 0
        assert ledger.overlap_many(
            np.array([0], dtype=np.int64), np.array([100], dtype=np.int64)
        ).tolist() == [0]


class _FakeChannel:
    """Minimal _BatchChannel: an end-slot log over an IntervalLedger."""

    def __init__(self):
        self._end_slot_log = []
        self._busy = IntervalLedger()


class TestLazyArmaFeed:
    @settings(max_examples=40, deadline=None)
    @given(
        events=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=40),   # gap to next start
                st.integers(min_value=1, max_value=30),   # duration
            ),
            min_size=1,
            max_size=60,
        ),
        sync_every=st.integers(min_value=1, max_value=20),
    )
    def test_replay_matches_eager_fold(self, events, sync_every):
        """Deferred sync must reproduce the eager per-event fold exactly."""
        exchange_slots = 30  # >= max duration, as the engine guarantees
        eager_view = ChannelViewBase()
        eager_arma = ArmaTrafficEstimator(alpha=0.9, sample_interval_slots=25)
        channel = _FakeChannel()
        lazy_arma = ArmaTrafficEstimator(alpha=0.9, sample_interval_slots=25)
        feed = LazyArmaFeed(lazy_arma, exchange_slots, channel)

        slot = 0
        cursor = birth = None
        for i, (gap, duration) in enumerate(events):
            start = slot + gap
            end = start + duration
            slot = end
            if birth is None:
                birth = cursor = start
                feed.start(start)
            # Eager path: ingest interval, advance to end - exchange.
            eager_view._add_busy_interval(start, end)
            target = end - exchange_slots
            if target > cursor:
                idle, busy = eager_view.idle_busy_counts(cursor, target)
                eager_arma.ingest(busy, idle + busy)
                cursor = target
            # Batched path: log only; fold later.
            channel._busy.add(start, end)
            channel._end_slot_log.append(end)
            if i % sync_every == 0:
                feed.sync()
        feed.sync()
        assert lazy_arma.estimate == eager_arma.estimate
        assert lazy_arma.warmed_up == eager_arma.warmed_up
        assert lazy_arma.intervals_consumed == eager_arma.intervals_consumed
        assert lazy_arma._pending_busy == eager_arma._pending_busy
        assert lazy_arma._pending_total == eager_arma._pending_total
        assert feed.cursor == cursor
        assert feed.birth_slot == birth

    def test_sync_before_first_event_is_noop(self):
        channel = _FakeChannel()
        arma = ArmaTrafficEstimator()
        feed = LazyArmaFeed(arma, 30, channel)
        feed.sync()
        assert arma.estimate == 0.0
        assert feed.birth_slot is None


class TestObservatoryBackendEquivalence:
    """Full-run stream identity between the scalar and batched backends.

    The golden suite pins both backends against committed hashes; this
    test compares the two backends *directly* on one dense run —
    including provenance records, which the goldens do not hash — with
    a short warmup so rank-sum windows flow through the batched
    scheduler's defer/reserve/fill path.
    """

    def _run(self, backend):
        import dataclasses
        import itertools
        import json

        from repro.core.detector import DetectorConfig, reset_region_cache
        from repro.core.observatory import SharedChannelObservatory
        from repro.experiments.scenarios import MultiMonitorGridScenario
        from repro.mac.misbehavior import PercentageMisbehavior
        from repro.obs.audit import DecisionAuditLog
        from repro.obs.provenance import ProvenanceLog
        from repro.traffic import queue as traffic_queue

        traffic_queue._packet_ids = itertools.count()
        reset_region_cache()
        config = dataclasses.replace(
            DetectorConfig(sample_size=25, known_n=5, known_k=5),
            warmup_slots=10_000,
            stats_backend=backend,
        )
        scenario = MultiMonitorGridScenario(seed=7)
        taggeds = scenario.tagged_nodes()
        policies = {
            taggeds[0]: PercentageMisbehavior(60),
            taggeds[2]: PercentageMisbehavior(75),
        }
        sim, pairs = scenario.build(policies=policies)
        audit = DecisionAuditLog()
        provenance = ProvenanceLog()
        observatory = SharedChannelObservatory()
        sim.add_listener(observatory)
        detectors = [
            observatory.attach(
                monitor,
                tagged,
                config=config,
                separation=scenario.separation,
                audit=audit,
                provenance=provenance,
            )
            for monitor, tagged in pairs
        ]
        sim.run(2.0)
        streams = {
            "observations": [
                repr(o) for d in detectors for o in d.observations
            ],
            "verdicts": [repr(v) for d in detectors for v in d.verdicts],
            "audit": [
                json.dumps(r.to_dict(), sort_keys=True)
                for r in audit.records
            ],
            "provenance": provenance.to_jsonl(),
        }
        rules = audit.counts_by_rule()
        return streams, rules

    def test_streams_byte_identical(self):
        scalar, scalar_rules = self._run("scalar")
        batched, batched_rules = self._run("batched")
        # The run must actually exercise the deferred rank-sum path.
        assert scalar_rules.get("rank_sum", 0) > 0
        assert scalar_rules == batched_rules
        assert scalar == batched
