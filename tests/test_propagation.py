"""Unit tests for repro.phy.propagation."""

import pytest

from repro.phy.propagation import (
    FreeSpacePropagation,
    LogNormalShadowing,
    range_to_threshold_margin_db,
)
from repro.util.rng import RngStream


class TestMarginScaling:
    def test_zero_margin_is_unity(self):
        assert range_to_threshold_margin_db(0.0, 2.0) == 1.0

    def test_positive_margin_extends_range(self):
        assert range_to_threshold_margin_db(6.0, 2.0) > 1.0

    def test_negative_margin_shrinks_range(self):
        assert range_to_threshold_margin_db(-6.0, 2.0) < 1.0

    def test_known_value(self):
        # +20 dB at beta=2 doubles ... 10^(20/20) = 10x range.
        assert range_to_threshold_margin_db(20.0, 2.0) == pytest.approx(10.0)

    def test_higher_exponent_compresses(self):
        assert range_to_threshold_margin_db(10.0, 4.0) < (
            range_to_threshold_margin_db(10.0, 2.0)
        )


class TestFreeSpace:
    def test_margin_always_zero(self):
        model = FreeSpacePropagation()
        assert model.link_margin_db((1, 2)) == 0.0

    def test_effective_range_is_nominal(self):
        model = FreeSpacePropagation()
        assert model.effective_range(250.0, (0, 1)) == 250.0

    def test_refresh_is_noop(self):
        model = FreeSpacePropagation()
        model.refresh()
        assert model.effective_range(250.0, (0, 1)) == 250.0


class TestLogNormalShadowing:
    def test_zero_sigma_degenerates_to_free_space(self):
        model = LogNormalShadowing(0.0, rng=RngStream(1, "s"))
        assert model.link_margin_db((0, 1)) == 0.0

    def test_margin_stable_per_pair(self):
        model = LogNormalShadowing(6.0, rng=RngStream(1, "s"))
        first = model.link_margin_db((0, 1))
        assert model.link_margin_db((0, 1)) == first

    def test_margin_symmetric(self):
        model = LogNormalShadowing(6.0, rng=RngStream(1, "s"))
        assert model.link_margin_db((0, 1)) == model.link_margin_db((1, 0))

    def test_refresh_redraws(self):
        model = LogNormalShadowing(6.0, rng=RngStream(1, "s"))
        before = model.link_margin_db((0, 1))
        model.refresh()
        after = model.link_margin_db((0, 1))
        assert before != after  # astronomically unlikely to collide

    def test_margins_have_roughly_right_spread(self):
        model = LogNormalShadowing(8.0, rng=RngStream(2, "s"))
        margins = [model.link_margin_db((i, i + 1)) for i in range(0, 4000, 2)]
        mean = sum(margins) / len(margins)
        var = sum((m - mean) ** 2 for m in margins) / len(margins)
        assert mean == pytest.approx(0.0, abs=0.5)
        assert var**0.5 == pytest.approx(8.0, rel=0.1)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            LogNormalShadowing(-1.0, rng=RngStream(1, "s"))
